//! Micro-benchmarks of end-to-end request service on the device
//! models (simulator throughput, not simulated-device throughput).

use ossd_bench::micro::{bench, header};
use ossd_block::{BlockDevice, BlockRequest};
use ossd_hdd::{Hdd, HddConfig};
use ossd_sim::SimTime;
use ossd_ssd::{Ssd, SsdConfig};

fn medium_ssd() -> Ssd {
    let mut config = SsdConfig::tiny_page_mapped();
    config.geometry.packages = 4;
    config.geometry.blocks_per_plane = 64;
    config.gangs = 2;
    Ssd::new(config).unwrap()
}

fn bench_ssd_write_path() {
    let mut ssd = medium_ssd();
    let capacity = ssd.capacity_bytes();
    let mut i = 0u64;
    bench("ssd_submit_4k_write", || {
        let offset = ((i * 7919) % (capacity / 4096)) * 4096;
        ssd.submit(&BlockRequest::write(i, offset, 4096, SimTime::ZERO))
            .unwrap();
        i += 1;
    });
}

fn bench_ssd_read_path() {
    let mut ssd = medium_ssd();
    let capacity = ssd.capacity_bytes();
    for i in 0..capacity / 4096 {
        ssd.submit(&BlockRequest::write(i, i * 4096, 4096, SimTime::ZERO))
            .unwrap();
    }
    let mut i = 0u64;
    bench("ssd_submit_4k_read", || {
        let offset = ((i * 2_654_435_761) % (capacity / 4096)) * 4096;
        ssd.submit(&BlockRequest::read(i, offset, 4096, SimTime::ZERO))
            .unwrap();
        i += 1;
    });
}

fn bench_hdd_random_read() {
    let mut hdd = Hdd::new(HddConfig::default());
    let capacity = hdd.capacity_bytes();
    let mut i = 0u64;
    bench("hdd_submit_4k_random_read", || {
        let offset = ((i * 2_654_435_761) % (capacity / 4096)) * 4096;
        hdd.submit(&BlockRequest::read(i, offset, 4096, SimTime::ZERO))
            .unwrap();
        i += 1;
    });
}

fn main() {
    header("device_service");
    bench_ssd_write_path();
    bench_ssd_read_path();
    bench_hdd_random_read();
}
