//! Micro-benchmarks of FTL mapping operations.

use ossd_bench::micro::{bench, header};
use ossd_flash::{FlashGeometry, FlashTiming};
use ossd_ftl::{Ftl, FtlConfig, Lpn, PageFtl, StripeFtl, WriteContext};

fn geometry() -> FlashGeometry {
    FlashGeometry {
        packages: 4,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: 256,
        pages_per_block: 64,
        page_bytes: 4096,
    }
}

fn bench_page_ftl_write() {
    let mut ftl = PageFtl::new(geometry(), FlashTiming::slc(), FtlConfig::default()).unwrap();
    let logical = ftl.logical_pages();
    let mut lpn = 0u64;
    bench("page_ftl_sequential_write", || {
        ftl.write(Lpn(lpn % logical), 4096, &WriteContext::idle())
            .unwrap();
        lpn += 1;
    });
}

fn bench_page_ftl_overwrite_with_gc() {
    let config = FtlConfig::default().with_overprovisioning(0.15);
    let mut ftl = PageFtl::new(geometry(), FlashTiming::slc(), config).unwrap();
    let logical = ftl.logical_pages();
    // Reach steady state first so the measured iterations include GC.
    for lpn in 0..logical {
        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
    }
    let mut lpn = 0u64;
    bench("page_ftl_overwrite_steady_state", || {
        ftl.write(Lpn((lpn * 17) % logical), 4096, &WriteContext::idle())
            .unwrap();
        lpn += 1;
    });
}

fn bench_page_ftl_read() {
    let mut ftl = PageFtl::new(geometry(), FlashTiming::slc(), FtlConfig::default()).unwrap();
    let logical = ftl.logical_pages();
    for lpn in 0..logical {
        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
    }
    let mut i = 0u64;
    bench("page_ftl_random_read", || {
        ftl.read(Lpn((i * 2_654_435_761) % logical), 4096).unwrap();
        i += 1;
    });
}

fn bench_stripe_ftl_rmw() {
    let mut ftl = StripeFtl::new(
        geometry(),
        FlashTiming::slc(),
        FtlConfig::default(),
        64 * 1024,
    )
    .unwrap();
    let logical = ftl.logical_pages();
    for lpn in 0..logical / 2 {
        ftl.write(Lpn(lpn), 64 * 1024, &WriteContext::idle())
            .unwrap();
    }
    let mut i = 0u64;
    bench("stripe_ftl_sub_stripe_write_rmw", || {
        // Alternate stripes so the coalescing buffer always flushes.
        ftl.write(Lpn((i * 7) % (logical / 2)), 4096, &WriteContext::idle())
            .unwrap();
        i += 1;
    });
}

fn main() {
    header("ftl_ops");
    bench_page_ftl_write();
    bench_page_ftl_overwrite_with_gc();
    bench_page_ftl_read();
    bench_stripe_ftl_rmw();
}
