//! Criterion micro-benchmarks of cleaning (garbage collection) under churn,
//! comparing the default and informed-cleaning FTLs.

use criterion::{criterion_group, criterion_main, Criterion};
use ossd_flash::{FlashGeometry, FlashTiming};
use ossd_ftl::{Ftl, FtlConfig, Lpn, PageFtl, WriteContext};

fn geometry() -> FlashGeometry {
    FlashGeometry {
        packages: 2,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: 128,
        pages_per_block: 64,
        page_bytes: 4096,
    }
}

fn churned_ftl(honor_free: bool) -> (PageFtl, u64) {
    let config = FtlConfig::default()
        .with_overprovisioning(0.15)
        .with_honor_free(honor_free);
    let mut ftl = PageFtl::new(geometry(), FlashTiming::slc(), config).unwrap();
    let logical = ftl.logical_pages();
    for lpn in 0..logical {
        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
    }
    if honor_free {
        // The host frees a third of the space (deleted files).
        for lpn in 0..logical / 3 {
            ftl.free(Lpn(lpn)).unwrap();
        }
    }
    (ftl, logical)
}

fn bench_cleaning(c: &mut Criterion) {
    for honor_free in [false, true] {
        let label = if honor_free {
            "gc_overwrite_churn_informed"
        } else {
            "gc_overwrite_churn_default"
        };
        c.bench_function(label, |b| {
            let (mut ftl, logical) = churned_ftl(honor_free);
            let hot_base = logical / 3;
            let mut i = 0u64;
            b.iter(|| {
                let lpn = hot_base + ((i * 13) % (logical - hot_base));
                ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
                i += 1;
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cleaning
}
criterion_main!(benches);
