//! Micro-benchmarks of cleaning (garbage collection) under churn:
//! the default vs. informed-cleaning FTLs, the full cleaning-policy matrix
//! from `ossd-gc`, and budgeted background cleaning.

use ossd_bench::micro::{bench, header};
use ossd_flash::{FlashGeometry, FlashTiming};
use ossd_ftl::{CleaningPolicyKind, Ftl, FtlConfig, Lpn, PageFtl, WriteContext};

fn geometry() -> FlashGeometry {
    FlashGeometry {
        packages: 2,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: 128,
        pages_per_block: 64,
        page_bytes: 4096,
    }
}

fn churned_ftl(honor_free: bool) -> (PageFtl, u64) {
    let config = FtlConfig::default()
        .with_overprovisioning(0.15)
        .with_honor_free(honor_free);
    let mut ftl = PageFtl::new(geometry(), FlashTiming::slc(), config).unwrap();
    let logical = ftl.logical_pages();
    for lpn in 0..logical {
        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
    }
    if honor_free {
        // The host frees a third of the space (deleted files).
        for lpn in 0..logical / 3 {
            ftl.free(Lpn(lpn)).unwrap();
        }
    }
    (ftl, logical)
}

/// A steady-state FTL with the given cleaning policy: filled once, then
/// pre-churned so the measured iterations include cleaning work.
fn policy_ftl(policy: CleaningPolicyKind) -> (PageFtl, u64) {
    let config = FtlConfig::default()
        .with_overprovisioning(0.15)
        .with_cleaning_policy(policy);
    let mut ftl = PageFtl::new(geometry(), FlashTiming::slc(), config).unwrap();
    let logical = ftl.logical_pages();
    for lpn in 0..logical {
        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
    }
    for i in 0..logical {
        let lpn = (i * 17) % logical;
        ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
    }
    (ftl, logical)
}

fn main() {
    header("gc_cleaning");
    for honor_free in [false, true] {
        let label = if honor_free {
            "gc_overwrite_churn_informed"
        } else {
            "gc_overwrite_churn_default"
        };
        let (mut ftl, logical) = churned_ftl(honor_free);
        let hot_base = logical / 3;
        let mut i = 0u64;
        bench(label, || {
            let lpn = hot_base + ((i * 13) % (logical - hot_base));
            ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            i += 1;
        });
    }

    // The cleaning-policy matrix: steady-state overwrite cost per policy.
    for policy in CleaningPolicyKind::all() {
        let (mut ftl, logical) = policy_ftl(policy);
        let mut i = 0u64;
        bench(&format!("gc_steady_overwrite_{}", policy.name()), || {
            let lpn = (i * 17) % logical;
            ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            i += 1;
        });
    }

    // Background cleaning: cost of one budgeted reclamation step, kept fed
    // by interleaved overwrites.
    let (mut ftl, logical) = policy_ftl(CleaningPolicyKind::Greedy);
    let mut i = 0u64;
    bench("gc_background_clean_step", || {
        // A couple of overwrites keep stale pages available to reclaim.
        for _ in 0..2 {
            let lpn = (i * 17) % logical;
            ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            i += 1;
        }
        ftl.background_clean(1, 0.2).unwrap();
    });
}
