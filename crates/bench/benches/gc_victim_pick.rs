//! Victim-pick micro-benchmark: pick latency vs. blocks per element.
//!
//! The point of the incremental `VictimIndex` is that a Greedy pick no
//! longer scans every block: its cost must stay flat (O(1) amortized) as
//! the element grows from 256 to 4096 blocks, while the legacy full-scan
//! path it replaced grows linearly (shown alongside for contrast).  The
//! scan-tier policies (cost-benefit here) stay linear in the *candidate*
//! count but drop the per-pick allocation.
//!
//! Run with `cargo bench --bench gc_victim_pick`.

use ossd_bench::micro::{bench, black_box, header};
use ossd_gc::{BlockInfo, CleaningPolicy, CostBenefit, Greedy, PickContext, VictimIndex};
use ossd_sim::SimRng;

const PAGES_PER_BLOCK: u32 = 64;

/// Populates an index (and a parallel "flash state" table for the legacy
/// scan) into a steady-state-like shape: most blocks hold a seeded random
/// mix of live and stale pages.
fn populate(blocks: u32, seed: u64) -> (VictimIndex, Vec<BlockInfo>) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut index = VictimIndex::new(blocks, PAGES_PER_BLOCK);
    let mut state = Vec::with_capacity(blocks as usize);
    for block in 0..blocks {
        let programmed = PAGES_PER_BLOCK - rng.next_u64_below(4) as u32;
        let invalid = rng.next_u64_below(programmed as u64 / 2 + 1) as u32;
        let last_write = rng.next_u64_below(1 << 20);
        for _ in 0..programmed {
            index.on_program(block, last_write);
        }
        for _ in 0..invalid {
            index.on_invalidate(block);
        }
        state.push(BlockInfo {
            block,
            valid_pages: programmed - invalid,
            invalid_pages: invalid,
            total_pages: PAGES_PER_BLOCK,
            erase_count: 0,
            age: 0,
        });
    }
    (index, state)
}

fn main() {
    header("gc_victim_pick: pick latency vs blocks per element");
    for blocks in [256u32, 1024, 4096] {
        let (mut index, state) = populate(blocks, 0x5EED ^ blocks as u64);
        let ctx = PickContext::at(1 << 20);

        // The index-backed Greedy pick: must stay flat across sizes.
        bench(&format!("greedy_indexed/{blocks}"), || {
            black_box(index.pick_greedy(black_box(None), None));
        });

        // The legacy path this PR deleted: rebuild the candidate vector by
        // scanning every block, then scan it again to select.
        bench(&format!("greedy_full_scan/{blocks}"), || {
            let candidates: Vec<BlockInfo> = state
                .iter()
                .filter(|b| b.invalid_pages > 0)
                .copied()
                .collect();
            black_box(Greedy.select_victim(&candidates));
        });

        // Scan-tier policy over the index: linear in candidates but
        // allocation-free (reusable scratch, non-empty buckets only).
        bench(&format!("cost_benefit_indexed/{blocks}"), || {
            black_box(CostBenefit.select_from_index(&mut index, &ctx));
        });
    }
}
