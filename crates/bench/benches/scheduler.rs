//! Micro-benchmarks of the controller schedulers.

use ossd_bench::micro::{bench, black_box, header};
use ossd_sim::{Server, SimDuration, SimTime};
use ossd_ssd::SchedulerKind;

fn busy_elements(n: usize) -> Vec<Server> {
    let mut servers = vec![Server::new(); n];
    for (i, s) in servers.iter_mut().enumerate() {
        s.serve(SimTime::ZERO, SimDuration::from_micros(10 * i as u64));
    }
    servers
}

fn queue(len: usize, elements: usize) -> Vec<(SimTime, usize)> {
    (0..len)
        .map(|i| (SimTime::from_micros(i as u64), i % elements))
        .collect()
}

fn main() {
    header("scheduler");
    let elements = busy_elements(16);
    for &qlen in &[8usize, 64, 256] {
        let q = queue(qlen, 16);
        bench(&format!("fcfs_pick_q{qlen}"), || {
            black_box(SchedulerKind::Fcfs.pick(&q, &elements, SimTime::from_millis(1)));
        });
        bench(&format!("swtf_pick_q{qlen}"), || {
            black_box(SchedulerKind::Swtf.pick(&q, &elements, SimTime::from_millis(1)));
        });
    }
}
