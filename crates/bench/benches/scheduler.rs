//! Micro-benchmarks of the controller schedulers (per-op dispatch picks).

use ossd_bench::micro::{bench, black_box, header};
use ossd_sim::{SimDuration, SimTime};
use ossd_ssd::{DispatchView, ElementQueue, SchedulerKind};

fn busy_queues(n: usize) -> Vec<ElementQueue> {
    let mut queues = vec![ElementQueue::new(); n];
    for (i, q) in queues.iter_mut().enumerate() {
        q.accept(SimTime::ZERO, SimDuration::from_micros(10 * i as u64));
    }
    queues
}

fn ops(len: usize, elements: usize) -> Vec<DispatchView> {
    (0..len)
        .map(|i| DispatchView {
            arrival: SimTime::from_micros(i as u64),
            element: Some(i % elements),
        })
        .collect()
}

fn main() {
    header("scheduler");
    let queues = busy_queues(16);
    for &qlen in &[8usize, 64, 256] {
        let q = ops(qlen, 16);
        bench(&format!("fcfs_pick_q{qlen}"), || {
            black_box(SchedulerKind::Fcfs.pick(&q, &queues, SimTime::from_millis(1)));
        });
        bench(&format!("swtf_pick_q{qlen}"), || {
            black_box(SchedulerKind::Swtf.pick(&q, &queues, SimTime::from_millis(1)));
        });
    }
}
