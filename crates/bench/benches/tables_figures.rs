//! Criterion wrappers around the quick-scale experiment drivers, so
//! regressions in the end-to-end experiment runtime are visible.
//!
//! The full paper-scale tables and figures are produced by the binaries in
//! `src/bin/` (e.g. `cargo run --release -p ossd-bench --bin run_all`).

use criterion::{criterion_group, criterion_main, Criterion};
use ossd_core::experiments::{swtf, table2, table5, Scale};

fn bench_table2(c: &mut Criterion) {
    c.bench_function("experiment_table2_quick", |b| {
        b.iter(|| table2::run(Scale::Quick).unwrap())
    });
}

fn bench_swtf(c: &mut Criterion) {
    c.bench_function("experiment_swtf_quick", |b| {
        b.iter(|| swtf::run(Scale::Quick).unwrap())
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("experiment_table5_quick", |b| {
        b.iter(|| table5::run(Scale::Quick).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_swtf, bench_table5
}
criterion_main!(benches);
