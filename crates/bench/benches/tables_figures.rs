//! Wrappers around the quick-scale experiment drivers, so regressions in the
//! end-to-end experiment runtime are visible.
//!
//! The full paper-scale tables and figures are produced by the binaries in
//! `src/bin/` (e.g. `cargo run --release -p ossd-bench --bin run_all`).

use ossd_bench::micro::{bench, black_box, header};
use ossd_core::experiments::{swtf, table2, table5, Scale};

fn main() {
    header("tables_figures");
    bench("experiment_table2_quick", || {
        black_box(table2::run(Scale::Quick).unwrap());
    });
    bench("experiment_swtf_quick", || {
        black_box(swtf::run(Scale::Quick).unwrap());
    });
    bench("experiment_table5_quick", || {
        black_box(table5::run(Scale::Quick).unwrap());
    });
}
