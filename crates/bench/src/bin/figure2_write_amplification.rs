//! Regenerates Figure 2: bandwidth against write size on a low-end striped
//! SSD (the write-amplification saw-tooth).

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::figure2;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Figure 2: Write Amplification (bandwidth vs write size)",
        scale,
    );
    let points = figure2::run(scale).expect("experiment runs");
    let peak = points
        .iter()
        .map(|p| p.bandwidth_mbps)
        .fold(f64::MIN, f64::max);
    println!("{:>10} {:>14}", "write (MB)", "bandwidth MB/s");
    for p in &points {
        let bar = "#".repeat((p.bandwidth_mbps / peak * 48.0).round() as usize);
        println!("{:>10.2} {:>14.2}  {}", p.write_mb, p.bandwidth_mbps, bar);
    }
    println!();
    println!("Paper reference (Figure 2): bandwidth peaks when the write size aligns");
    println!("with the 1 MB stripe and dips just past each multiple (saw-tooth).");
}
