//! Regenerates Figure 3 and Table 6: priority-aware cleaning.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::figure3;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Figure 3 / Table 6: Priority-Aware Cleaning (response time, ms)",
        scale,
    );
    let points = figure3::run(scale).expect("experiment runs");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "writes%", "agnostic fg", "agnostic bg", "aware fg", "aware bg", "improvement"
    );
    for p in &points {
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>11.2}%",
            p.write_pct,
            p.agnostic_foreground_ms,
            p.agnostic_background_ms,
            p.aware_foreground_ms,
            p.aware_background_ms,
            p.improvement_pct()
        );
    }
    println!();
    println!("Paper reference (Table 6, improvement %): 0, 9.56, 10.27, 9.61, 9.47");
    println!("for 20/40/50/60/80% writes; background requests pay the price.");
}
