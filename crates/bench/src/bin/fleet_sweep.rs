//! Fleet scale-out sweep: CSV of aggregate striped-array bandwidth per
//! devices × threads × stripe unit, plus the parity failure → rebuild
//! scenario (survivor tail latency vs copy-back bandwidth, one row per
//! rebuild-budget setting).
//!
//! The simulated results are bit-identical for every thread count — that
//! is the fleet determinism contract — so the thread axis only moves
//! `wall_seconds`.  Pass `--quick` for the reduced CI grid.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::fleet_sweep;

fn main() {
    let scale = scale_from_args();
    print_header("Fleet sweep: striped scale-out and parity rebuild", scale);
    let sweep = fleet_sweep::run(scale).expect("fleet sweep runs");

    println!("devices,threads,stripe_kib,bandwidth_mbps,p50_ms,p99_ms,wall_seconds,ops");
    for p in &sweep.points {
        println!(
            "{},{},{},{:.2},{:.4},{:.4},{:.4},{}",
            p.devices,
            p.threads,
            p.stripe_kib,
            p.bandwidth_mbps,
            p.p50_ms,
            p.p99_ms,
            p.wall_seconds,
            p.ops
        );
    }

    println!();
    println!(
        "budget,budget_mbps,backoff,devices,healthy_p99_ms,healthy_p999_ms,\
         degraded_p99_ms,degraded_p999_ms,rebuilt_mib,rebuild_mbps,\
         degraded_reads,host_errors"
    );
    for r in &sweep.rebuild {
        println!(
            "{},{:.1},{},{},{:.4},{:.4},{:.4},{:.4},{:.1},{:.2},{},{}",
            r.label,
            r.budget_mbps,
            r.backoff,
            r.devices,
            r.healthy.p99_ms,
            r.healthy.p999_ms,
            r.degraded.p99_ms,
            r.degraded.p999_ms,
            r.rebuilt_mib,
            r.rebuild_mbps,
            r.degraded_reads,
            r.host_errors
        );
    }

    // Degraded serving must be invisible to the host, and the budget knob
    // must actually trade copy-back rate against survivor tails.
    for r in &sweep.rebuild {
        assert_eq!(
            r.host_errors, 0,
            "{}: degraded/rebuild serving surfaced host-visible errors",
            r.label
        );
    }
    let open = sweep
        .rebuild
        .iter()
        .max_by(|a, b| a.rebuild_mbps.total_cmp(&b.rebuild_mbps))
        .expect("non-empty rebuild sweep");
    let tight = sweep
        .rebuild
        .iter()
        .min_by(|a, b| a.rebuild_mbps.total_cmp(&b.rebuild_mbps))
        .expect("non-empty rebuild sweep");
    assert!(
        open.rebuild_mbps > tight.rebuild_mbps,
        "rebuild budgets did not separate copy-back bandwidth"
    );
    assert!(
        open.degraded.p999_ms > tight.degraded.p999_ms,
        "budget did not move copy-back bandwidth and survivor p99.9 in \
         opposite directions: {} {:.2} MB/s p99.9 {:.3} ms vs {} {:.2} MB/s \
         p99.9 {:.3} ms",
        open.label,
        open.rebuild_mbps,
        open.degraded.p999_ms,
        tight.label,
        tight.rebuild_mbps,
        tight.degraded.p999_ms
    );

    let widest = sweep
        .points
        .iter()
        .max_by_key(|p| p.devices)
        .expect("non-empty sweep");
    let narrowest = sweep
        .points
        .iter()
        .min_by_key(|p| p.devices)
        .expect("non-empty sweep");
    eprintln!();
    eprintln!(
        "interpretation: striping {} -> {} devices scales aggregate bandwidth \
         {:.1} -> {:.1} MB/s ({:.2}x); on the degraded parity fleet, opening \
         the rebuild budget {} -> {} raises copy-back {:.2} -> {:.2} MB/s and \
         survivor p99.9 {:.3} -> {:.3} ms — the QoS trade in one line.",
        narrowest.devices,
        widest.devices,
        narrowest.bandwidth_mbps,
        widest.bandwidth_mbps,
        widest.bandwidth_mbps / narrowest.bandwidth_mbps,
        tight.label,
        open.label,
        tight.rebuild_mbps,
        open.rebuild_mbps,
        tight.degraded.p999_ms,
        open.degraded.p999_ms
    );
}
