//! Fleet scale-out sweep: CSV of aggregate striped-array bandwidth per
//! devices × threads × stripe unit, plus the replica-failure → rebuild
//! scenario (survivor tail latency and rebuild bandwidth).
//!
//! The simulated results are bit-identical for every thread count — that
//! is the fleet determinism contract — so the thread axis only moves
//! `wall_seconds`.  Pass `--quick` for the reduced CI grid.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::fleet_sweep;

fn main() {
    let scale = scale_from_args();
    print_header("Fleet sweep: striped scale-out and replica rebuild", scale);
    let sweep = fleet_sweep::run(scale).expect("fleet sweep runs");

    println!("devices,threads,stripe_kib,bandwidth_mbps,p50_ms,p99_ms,wall_seconds,ops");
    for p in &sweep.points {
        println!(
            "{},{},{},{:.2},{:.4},{:.4},{:.4},{}",
            p.devices,
            p.threads,
            p.stripe_kib,
            p.bandwidth_mbps,
            p.p50_ms,
            p.p99_ms,
            p.wall_seconds,
            p.ops
        );
    }

    let r = &sweep.rebuild;
    println!();
    println!(
        "replicas,healthy_p99_ms,healthy_p999_ms,rebuild_p99_ms,rebuild_p999_ms,\
         rebuilt_mib,rebuild_mbps"
    );
    println!(
        "{},{:.4},{:.4},{:.4},{:.4},{:.1},{:.2}",
        r.replicas,
        r.healthy_p99_ms,
        r.healthy_p999_ms,
        r.rebuild_p99_ms,
        r.rebuild_p999_ms,
        r.rebuilt_mib,
        r.rebuild_mbps
    );

    let widest = sweep
        .points
        .iter()
        .max_by_key(|p| p.devices)
        .expect("non-empty sweep");
    let narrowest = sweep
        .points
        .iter()
        .min_by_key(|p| p.devices)
        .expect("non-empty sweep");
    eprintln!();
    eprintln!(
        "interpretation: striping {} -> {} devices scales aggregate bandwidth \
         {:.1} -> {:.1} MB/s ({:.2}x); during rebuild the survivor p99 moves \
         {:.3} -> {:.3} ms while the copy-back runs at {:.1} MB/s of sim time.",
        narrowest.devices,
        widest.devices,
        narrowest.bandwidth_mbps,
        widest.bandwidth_mbps,
        widest.bandwidth_mbps / narrowest.bandwidth_mbps,
        r.healthy_p99_ms,
        r.rebuild_p99_ms,
        r.rebuild_mbps
    );
}
