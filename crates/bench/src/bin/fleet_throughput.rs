//! Fleet aggregate throughput: simulated host operations per second of a
//! striped multi-device array, swept over matched (devices, threads)
//! points, with machine-readable `BENCH_fleet.json` for CI trending.
//!
//! The headline metric is **aggregate ops per simulated second** — the
//! rate the array as a whole serves the closed-loop churn in device time.
//! It is a pure function of the seed and the configuration (the fleet's
//! deterministic completion merge guarantees bit-identical results for
//! every thread count), so it is stable across machines and CI runners and
//! is what `--check-baseline` gates.  Wall-clock rates are reported
//! alongside for the engine-thread view; on a multi-core host the
//! per-device engine threads cut wall time, on a single-core container
//! they cannot, and neither changes a single simulated timestamp.
//!
//! Alongside the striped grid, one 4-device/4-thread **parity** (RAID-5)
//! point measures the read-modify-write parity tax and is gated
//! separately.  Pass `--quick` for the small CI configuration (writes
//! `BENCH_fleet_quick.json` so the paper-scale artifact is never
//! clobbered), `--check-baseline <path>` to compare the measured striped
//! aggregate rate against a previously committed JSON, and
//! `--check-parity-baseline <path>` for the parity point (both exit
//! non-zero below 90%).  Baselines are read before the output JSON is
//! written, so a gate may point at this run's own output path and still
//! compare against the committed copy.

use std::time::Instant;

use ossd_bench::{print_header, scale_from_args, Scale};
use ossd_block::{BlockDevice, ByteRange, HostCommand, HostInterface, HostQueue, WriteHint};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_fleet::{Fleet, FleetConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, SsdConfig};
use ossd_telemetry::json;

/// Fraction of the baseline rate the measured rate must reach when
/// `--check-baseline` is given.  The gated metric is deterministic, so
/// anything below 100% is a real change to the simulated schedule (broken
/// striping, a serialization bug, a changed seed); the 90% threshold just
/// leaves room for deliberate model refinements.
const BASELINE_TOLERANCE: f64 = 0.90;

/// The matched (devices, engine threads) points the bench sweeps.
const POINTS: [(usize, usize); 4] = [(1, 1), (2, 2), (4, 4), (8, 8)];

const SEED: u64 = 0xF1EE_BEEF;
const PAGE: u64 = 4096;
const INITIATORS: usize = 4;
const SESSION_OPS: u64 = 512;

fn device_config(scale: Scale) -> SsdConfig {
    SsdConfig {
        name: "fleet-throughput".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: match scale {
                Scale::Paper => 512,
                Scale::Quick => 128,
            },
            pages_per_block: 32,
            page_bytes: PAGE as u32,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 8,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

struct Point {
    devices: usize,
    threads: usize,
    ops: u64,
    sim_seconds: f64,
    agg_sim_ops_per_sec: f64,
    wall_seconds: f64,
    wall_ops_per_sec: f64,
}

/// Untimed sequential fill with 64-page writes so churn overwrites mapped
/// pages at the steady-state watermark.
fn prefill(fleet: &mut Fleet, capacity: u64) -> SimTime {
    let chunk = 64 * PAGE;
    let mut queues = vec![HostQueue::new()];
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut offset = 0u64;
    while offset < capacity {
        let batch_end = (offset + 64 * chunk).min(capacity);
        while offset < batch_end {
            let len = chunk.min(capacity - offset);
            queues[0].submit(
                id,
                HostCommand::Write {
                    range: ByteRange::new(offset, len),
                    hint: WriteHint::default(),
                },
                at,
            );
            offset += len;
            id += 1;
        }
        fleet.serve(&mut queues).expect("prefill session");
        for c in queues[0].drain_completions() {
            at = at.max(c.finish);
        }
    }
    at
}

fn run_point(
    scale: Scale,
    devices: usize,
    threads: usize,
    churn_per_device: u64,
    parity: bool,
) -> Point {
    let config = if parity {
        FleetConfig::parity(device_config(scale), devices, PAGE)
    } else {
        FleetConfig::striped(device_config(scale), devices, PAGE)
    }
    .with_threads(threads)
    .with_seed(SEED)
    .with_name("throughput");
    let mut fleet = Fleet::new(config).expect("valid fleet config");
    let capacity = fleet.capacity_bytes();
    let logical_pages = capacity / PAGE;
    let fill_end = prefill(&mut fleet, capacity);

    // Timed churn: uniform random single-page overwrites in closed-loop
    // sessions, total ops scaling with the device count so every member
    // sees the same per-device work at every grid point.
    let ops_total = churn_per_device * devices as u64;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut rng = SimRng::seed_from_u64(SEED ^ devices as u64);
    let mut at = fill_end + SimDuration::from_micros(100);
    let sim_start = at;
    let mut id = 1_000_000u64;
    let mut issued = 0u64;
    let wall_start = Instant::now();
    while issued < ops_total {
        let batch = SESSION_OPS.min(ops_total - issued);
        for k in 0..batch {
            let lpn = rng.next_u64_below(logical_pages);
            queues[k as usize % INITIATORS].submit(
                id,
                HostCommand::Write {
                    range: ByteRange::new(lpn * PAGE, PAGE),
                    hint: WriteHint::default(),
                },
                at + SimDuration::from_micros(k),
            );
            id += 1;
        }
        fleet.serve(&mut queues).expect("churn session");
        let mut last = at;
        for queue in queues.iter_mut() {
            for c in queue.drain_completions() {
                last = last.max(c.finish);
            }
        }
        at = last + SimDuration::from_micros(10);
        issued += batch;
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let sim_seconds = at.saturating_since(sim_start).as_secs_f64();
    Point {
        devices,
        threads,
        ops: ops_total,
        sim_seconds,
        agg_sim_ops_per_sec: ops_total as f64 / sim_seconds.max(1e-12),
        wall_seconds,
        wall_ops_per_sec: ops_total as f64 / wall_seconds.max(1e-12),
    }
}

fn main() {
    let scale = scale_from_args();
    print_header(
        "Fleet throughput: aggregate ops/s of a striped array",
        scale,
    );
    let churn_per_device: u64 = match scale {
        Scale::Paper => 30_000,
        Scale::Quick => 2_000,
    };

    let points: Vec<Point> = POINTS
        .iter()
        .map(|&(d, t)| run_point(scale, d, t, churn_per_device, false))
        .collect();
    let parity = run_point(scale, 4, 4, churn_per_device, true);

    println!("devices,threads,ops,sim_seconds,agg_sim_ops_per_sec,wall_seconds,wall_ops_per_sec");
    for p in &points {
        println!(
            "{},{},{},{:.6},{:.1},{:.3},{:.0}",
            p.devices,
            p.threads,
            p.ops,
            p.sim_seconds,
            p.agg_sim_ops_per_sec,
            p.wall_seconds,
            p.wall_ops_per_sec
        );
    }

    let single = &points[0];
    let widest = points.last().expect("non-empty");
    let speedup = widest.agg_sim_ops_per_sec / single.agg_sim_ops_per_sec;
    println!(
        "aggregate scale-out: {:.0} -> {:.0} sim ops/s at {} devices -> {:.2}x",
        single.agg_sim_ops_per_sec, widest.agg_sim_ops_per_sec, widest.devices, speedup
    );
    println!(
        "parity ({} devices, rotating RAID-5): {:.0} sim ops/s \
         (read-modify-write parity tax vs {:.0} striped)",
        parity.devices, parity.agg_sim_ops_per_sec, points[2].agg_sim_ops_per_sec
    );

    // Baseline checks run BEFORE the JSON is written so a gate pointed at
    // the output path compares against the committed baseline, not this
    // run's own result.
    if let Some(baseline_path) = flag_arg("--check-baseline") {
        match check_baseline(
            &baseline_path,
            "aggregate_sim_ops_per_sec",
            widest.agg_sim_ops_per_sec,
        ) {
            Ok(baseline_ops) => println!(
                "baseline check: {:.0} sim ops/s >= {:.0}% of {baseline_path}'s {:.0} -- ok",
                widest.agg_sim_ops_per_sec,
                BASELINE_TOLERANCE * 100.0,
                baseline_ops
            ),
            Err(why) => {
                eprintln!("baseline check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }

    if let Some(baseline_path) = flag_arg("--check-parity-baseline") {
        match check_baseline(
            &baseline_path,
            "parity_agg_sim_ops_per_sec",
            parity.agg_sim_ops_per_sec,
        ) {
            Ok(baseline_ops) => println!(
                "parity baseline check: {:.0} sim ops/s >= {:.0}% of \
                 {baseline_path}'s {:.0} -- ok",
                parity.agg_sim_ops_per_sec,
                BASELINE_TOLERANCE * 100.0,
                baseline_ops
            ),
            Err(why) => {
                eprintln!("parity baseline check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }

    let json_path = match scale {
        Scale::Paper => "BENCH_fleet.json",
        Scale::Quick => "BENCH_fleet_quick.json",
    };
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"devices\": {}, \"threads\": {}, \"ops\": {}, \
             \"sim_seconds\": {:.6}, \"agg_sim_ops_per_sec\": {:.1}, \
             \"wall_seconds\": {:.6}, \"wall_ops_per_sec\": {:.1}}}",
            p.devices,
            p.threads,
            p.ops,
            p.sim_seconds,
            p.agg_sim_ops_per_sec,
            p.wall_seconds,
            p.wall_ops_per_sec
        ));
    }
    let json_doc = format!(
        "{{\n  \"config\": \"{}\",\n  \"churn_ops_per_device\": {},\n  \
         \"points\": [\n{}\n  ],\n  \
         \"single_device_sim_ops_per_sec\": {:.1},\n  \
         \"max_devices\": {},\n  \
         \"aggregate_sim_ops_per_sec\": {:.1},\n  \
         \"parity_devices\": {},\n  \
         \"parity_agg_sim_ops_per_sec\": {:.1},\n  \
         \"speedup_vs_single_device\": {:.3}\n}}\n",
        match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        },
        churn_per_device,
        rows,
        single.agg_sim_ops_per_sec,
        widest.devices,
        widest.agg_sim_ops_per_sec,
        parity.devices,
        parity.agg_sim_ops_per_sec,
        speedup
    );
    std::fs::write(json_path, &json_doc).expect("write bench json");
    println!("wrote {json_path}");
}

/// Returns the argument following `flag`, if present.
fn flag_arg(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == flag {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Reads `key` from a previously written BENCH_fleet JSON (parsed with the
/// telemetry crate's vendored codec) and checks the measured rate against
/// it with [`BASELINE_TOLERANCE`] headroom.
fn check_baseline(path: &str, key: &str, measured: f64) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::Value::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let baseline = doc
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{path} has no {key}"))?;
    if measured < BASELINE_TOLERANCE * baseline {
        return Err(format!(
            "measured {measured:.0} sim ops/s is below {:.0}% of the \
             baseline {baseline:.0} from {path}",
            BASELINE_TOLERANCE * 100.0
        ));
    }
    Ok(baseline)
}
