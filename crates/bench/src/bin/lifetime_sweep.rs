//! Writes a device to end-of-life under the seeded wear-out fault model
//! and reports TBW / lifetime / UBER per over-provisioning × cleaning
//! policy × wear-leveling, as CSV on stdout (pipe to a file to plot).

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::lifetime;

fn main() {
    let scale = scale_from_args();
    print_header("Lifetime sweep: TBW/UBER vs over-provisioning", scale);
    let points = lifetime::run(scale).expect("lifetime sweep");
    println!(
        "overprovisioning,policy,wear_leveling,end_of_life,tbw_mb,lifetime_s,\
         write_amplification,retired_blocks,program_fails,erase_fails,\
         read_retries,uncorrectable_reads,uber"
    );
    for p in &points {
        println!(
            "{:.2},{},{},{},{:.2},{:.3},{:.3},{},{},{},{},{},{:.3e}",
            p.overprovisioning,
            p.policy.name(),
            p.wear_leveling,
            p.end.name(),
            p.tbw_bytes as f64 / 1e6,
            p.lifetime_secs,
            p.write_amplification,
            p.retired_blocks,
            p.program_fails,
            p.erase_fails,
            p.read_retries,
            p.uncorrectable_reads,
            p.uber
        );
    }
    eprintln!();
    eprintln!("reading the curve: over-provisioning lowers write amplification, so the");
    eprintln!("same per-block erase budget absorbs more host writes (higher TBW) before");
    eprintln!("grown bad blocks exhaust the spares or the UBER threshold is crossed.");
}
