//! Demand-paged mapping sweep: CSV of map-cache hit rate, effective write
//! amplification, bandwidth and p99 service time per cache budget ×
//! workload skew.
//!
//! At paper scale the device is TB-class (≥ 1 TiB logical span) — the
//! regime where a resident mapping table would need ~0.5 GiB of controller
//! SRAM and demand paging is the only option; every swept budget keeps map
//! SRAM at or below 1/64th of that footprint.  Pass `--quick` for the small
//! CI smoke configuration.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::map_cache;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Map-cache sweep: demand-paged mapping vs budget x skew",
        scale,
    );
    let points = map_cache::run(scale).expect("map-cache sweep runs");

    println!(
        "skew,budget_entries,hit_rate,write_amplification,bandwidth_mb_s,p99_ms,\
         map_reads,map_writes,map_bytes_resident,map_bytes_total,sram_fraction"
    );
    for p in &points {
        println!(
            "{:.2},{},{:.4},{:.4},{:.2},{:.4},{},{},{},{},{:.6}",
            p.skew,
            p.budget_entries
                .map(|b| b.to_string())
                .unwrap_or_else(|| "resident".to_string()),
            p.hit_rate,
            p.write_amplification,
            p.bandwidth_mb_s,
            p.p99_ms,
            p.map_reads,
            p.map_writes,
            p.map_bytes_resident,
            p.map_bytes_total,
            p.sram_fraction()
        );
    }

    // Interpretation line: compare the most constrained cache against the
    // resident baseline at the skewed workload.
    let skewed: Vec<&map_cache::MapCachePoint> = points.iter().filter(|p| p.skew > 0.0).collect();
    if let (Some(resident), Some(smallest)) = (
        skewed.iter().find(|p| p.budget_entries.is_none()),
        skewed.iter().find(|p| p.budget_entries.is_some()),
    ) {
        eprintln!();
        eprintln!(
            "interpretation: at skew {:.1}, caching {:.3}% of the mapping table \
             serves {:.1}% of lookups from SRAM and delivers {:.1}% of the \
             resident-table bandwidth ({:.1} vs {:.1} MB/s).",
            smallest.skew,
            smallest.sram_fraction() * 100.0,
            smallest.hit_rate * 100.0,
            100.0 * smallest.bandwidth_mb_s / resident.bandwidth_mb_s,
            smallest.bandwidth_mb_s,
            resident.bandwidth_mb_s
        );
    }
}
