//! Demand-paged mapping throughput: simulated host operations per second of
//! wall-clock time with the map cache in the write path, across a ladder of
//! cache budgets on a TB-class geometry.
//!
//! This is the perf-smoke companion of the `ossd-mapcache` subsystem: every
//! churn write consults the cache, misses issue translation-page reads and
//! dirty evictions issue translation-page writebacks, all timed through the
//! same element/bus queues as host traffic.  The binary measures the
//! wall-clock simulation rate with that machinery engaged, verifies that
//! hit rate and device bandwidth grow monotonically with the cache budget
//! (the contract `BENCH_map.json` records), and emits the JSON for CI
//! trending.
//!
//! Pass `--quick` for the small configuration CI runs as a smoke test, and
//! `--check-baseline <path>` to compare the measured rate against a
//! previously committed `BENCH_map.json` (exits non-zero below 90% of the
//! baseline).

use std::time::Instant;

use ossd_bench::{print_header, scale_from_args, Scale};
use ossd_block::{BlockDevice, BlockRequest};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{FtlConfig, MapCacheConfig};
use ossd_sim::{LatencyStats, SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_telemetry::json;

/// Fraction of the baseline rate the measured rate must reach when
/// `--check-baseline` is given (same loose wall-clock guard as the other
/// throughput bins).
const BASELINE_TOLERANCE: f64 = 0.90;

/// Zipf skew of the churn phase; skewed enough that a small cache earns a
/// useful hit rate, which is the regime demand paging targets.
const SKEW: f64 = 0.9;

struct Config {
    name: &'static str,
    geometry: FlashGeometry,
    region_pages: u64,
    churn_ops_per_budget: u64,
    fill_pages_per_request: u64,
}

fn config_for(scale: Scale) -> Config {
    match scale {
        // TB-class: 16 elements x 20480 blocks x 256 pages x 16 KiB =
        // 1.25 TiB raw, ~1.1 TiB logical — a resident table would need
        // ~0.5 GiB of controller SRAM.  The largest budget below stays
        // under 1/64th of that.
        Scale::Paper => Config {
            name: "tb-class",
            geometry: FlashGeometry {
                packages: 8,
                dies_per_package: 2,
                planes_per_die: 1,
                blocks_per_plane: 20480,
                pages_per_block: 256,
                page_bytes: 16384,
            },
            region_pages: 2 * 1024 * 1024,
            churn_ops_per_budget: 30_000,
            fill_pages_per_request: 64,
        },
        Scale::Quick => Config {
            name: "quick",
            geometry: FlashGeometry {
                packages: 2,
                dies_per_package: 1,
                planes_per_die: 1,
                blocks_per_plane: 128,
                pages_per_block: 32,
                page_bytes: 4096,
            },
            region_pages: 2048,
            churn_ops_per_budget: 5_000,
            fill_pages_per_request: 8,
        },
    }
}

fn ssd_config(config: &Config, budget: u64) -> SsdConfig {
    SsdConfig {
        name: "map-throughput".to_string(),
        geometry: config.geometry,
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default().with_map_cache(MapCacheConfig::default().with_budget(budget)),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 2,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

struct Point {
    budget: u64,
    hit_rate: f64,
    sim_bandwidth_mb_s: f64,
    p99_us: f64,
    map_reads: u64,
    map_writes: u64,
    sram_fraction: f64,
}

fn run_budget(config: &Config, budget: u64) -> Point {
    let mut ssd = Ssd::new(ssd_config(config, budget)).expect("valid config");
    let page = ssd.logical_page_bytes();
    let region = config.region_pages.min(ssd.capacity_bytes() / page);

    // Fill the working region (untimed) so churn overwrites mapped pages.
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut lpn = 0u64;
    while lpn < region {
        let pages = config.fill_pages_per_request.min(region - lpn);
        let c = ssd
            .submit(&BlockRequest::write(id, lpn * page, pages * page, at))
            .expect("fill write");
        at = c.finish;
        id += 1;
        lpn += pages;
    }

    let base = ssd.stats();
    let churn_start = at;
    let mut service = LatencyStats::new();
    let mut rng = SimRng::seed_from_u64(0x0DF7_BEAC);
    for _ in 0..config.churn_ops_per_budget {
        let lpn = rng.zipf_usize(region as usize, SKEW) as u64;
        let c = ssd
            .submit(&BlockRequest::write(id, lpn * page, page, at))
            .expect("churn write");
        service.record(c.service_time());
        at = c.finish;
        id += 1;
    }
    let end = ssd.stats();

    let accesses = (end.map.hits + end.map.misses) - (base.map.hits + base.map.misses);
    let hits = end.map.hits - base.map.hits;
    let sim_seconds = at.saturating_since(churn_start).as_secs_f64().max(1e-12);
    Point {
        budget,
        hit_rate: hits as f64 / accesses.max(1) as f64,
        sim_bandwidth_mb_s: (config.churn_ops_per_budget * page) as f64 / 1e6 / sim_seconds,
        p99_us: service.percentile(99.0).as_nanos() as f64 / 1e3,
        map_reads: end.map.map_reads - base.map.map_reads,
        map_writes: end.map.map_writes - base.map.map_writes,
        sram_fraction: end.map.bytes_resident as f64 / end.map.bytes_total.max(1) as f64,
    }
}

fn main() {
    let scale = scale_from_args();
    print_header(
        "Map throughput: demand-paged mapping on the write path",
        scale,
    );
    let config = config_for(scale);
    let budgets = [
        (config.region_pages / 64).max(1),
        (config.region_pages / 16).max(1),
        (config.region_pages / 4).max(1),
    ];

    let total_ops = budgets.len() as u64 * config.churn_ops_per_budget;
    let wall_start = Instant::now();
    let points: Vec<Point> = budgets.iter().map(|&b| run_budget(&config, b)).collect();
    let wall = wall_start.elapsed().as_secs_f64();
    // Fill phases are included in the wall time: constructing and filling a
    // TB-class device is part of what this binary keeps honest.
    let ops_per_sec = total_ops as f64 / wall;

    for p in &points {
        println!(
            "budget {:>9} entries (sram {:>8.5} of table)  hit {:.4}  \
             {:>8.2} MB/s sim  p99 {:>9.1} us  map reads {:>7}  map writes {:>7}",
            p.budget,
            p.sram_fraction,
            p.hit_rate,
            p.sim_bandwidth_mb_s,
            p.p99_us,
            p.map_reads,
            p.map_writes
        );
    }
    println!(
        "total: {} churn ops in {:.3} s wall -> {:.0} simulated ops/s",
        total_ops, wall, ops_per_sec
    );

    // The recorded contract: hit rate and bandwidth grow with the budget.
    for pair in points.windows(2) {
        if pair[1].hit_rate + 1e-9 < pair[0].hit_rate {
            eprintln!(
                "monotonicity FAILED: hit rate fell from {:.4} (budget {}) to {:.4} (budget {})",
                pair[0].hit_rate, pair[0].budget, pair[1].hit_rate, pair[1].budget
            );
            std::process::exit(1);
        }
        if pair[1].sim_bandwidth_mb_s < pair[0].sim_bandwidth_mb_s {
            eprintln!(
                "monotonicity FAILED: bandwidth fell from {:.2} MB/s (budget {}) to {:.2} MB/s (budget {})",
                pair[0].sim_bandwidth_mb_s,
                pair[0].budget,
                pair[1].sim_bandwidth_mb_s,
                pair[1].budget
            );
            std::process::exit(1);
        }
    }
    println!("monotonicity: hit rate and bandwidth grow with the budget -- ok");

    let json_path = match scale {
        Scale::Paper => "BENCH_map.json",
        Scale::Quick => "BENCH_map_quick.json",
    };
    let raw_bytes = config.geometry.total_pages() * config.geometry.page_bytes as u64;
    let mut points_json = String::new();
    for (i, p) in points.iter().enumerate() {
        points_json.push_str(&format!(
            "    {{\"budget_entries\": {}, \"sram_fraction\": {:.6}, \
             \"hit_rate\": {:.4}, \"sim_bandwidth_mb_s\": {:.3}, \
             \"service_p99_us\": {:.2}, \"map_reads\": {}, \"map_writes\": {}}}{}",
            p.budget,
            p.sram_fraction,
            p.hit_rate,
            p.sim_bandwidth_mb_s,
            p.p99_us,
            p.map_reads,
            p.map_writes,
            if i + 1 < points.len() { ",\n" } else { "\n" }
        ));
    }
    let json = format!(
        "{{\n  \"config\": \"{}\",\n  \"raw_bytes\": {},\n  \"skew\": {:.2},\n  \
         \"churn_ops_per_budget\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"sim_ops_per_wall_second\": {:.1},\n  \"points\": [\n{}  ]\n}}\n",
        config.name, raw_bytes, SKEW, config.churn_ops_per_budget, wall, ops_per_sec, points_json
    );
    std::fs::write(json_path, &json).expect("write bench json");
    println!("wrote {json_path}");

    if let Some(baseline_path) = check_baseline_arg() {
        match check_baseline(&baseline_path, ops_per_sec) {
            Ok(baseline_ops) => println!(
                "baseline check: {:.0} ops/s >= {:.0}% of {baseline_path}'s {:.0} ops/s -- ok",
                ops_per_sec,
                BASELINE_TOLERANCE * 100.0,
                baseline_ops
            ),
            Err(why) => {
                eprintln!("baseline check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
}

/// Returns the argument following `--check-baseline`, if present.
fn check_baseline_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--check-baseline" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--check-baseline requires a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Reads `sim_ops_per_wall_second` from a previously written BENCH_map JSON
/// and checks the measured rate against it with [`BASELINE_TOLERANCE`]
/// headroom.
fn check_baseline(path: &str, measured_ops_per_sec: f64) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::Value::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let baseline_ops = doc
        .get("sim_ops_per_wall_second")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{path} has no sim_ops_per_wall_second"))?;
    if measured_ops_per_sec < BASELINE_TOLERANCE * baseline_ops {
        return Err(format!(
            "measured {measured_ops_per_sec:.0} ops/s is below {:.0}% of the \
             baseline {baseline_ops:.0} ops/s from {path}",
            BASELINE_TOLERANCE * 100.0
        ));
    }
    Ok(baseline_ops)
}
