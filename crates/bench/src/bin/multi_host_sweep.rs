//! Regenerates the multi-initiator sweep over the queue-pair host
//! interface: aggregate bandwidth, latency percentiles and Jain-fairness
//! per initiator-count × queue-depth point, as CSV on stdout (pipe to a
//! file to plot).

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::multi_host;

fn main() {
    let scale = scale_from_args();
    print_header("Multi-host sweep: bandwidth/fairness vs initiators", scale);
    let points = multi_host::run(scale).expect("multi-host sweep");
    println!(
        "initiators,queue_depth,total_mbps,min_initiator_mbps,max_initiator_mbps,\
         fairness,mean_ms,p50_ms,p95_ms,p99_ms"
    );
    for p in &points {
        println!(
            "{},{},{:.2},{:.2},{:.2},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.initiators,
            p.queue_depth,
            p.total_bandwidth_mbps,
            p.min_initiator_mbps,
            p.max_initiator_mbps,
            p.fairness,
            p.mean_ms,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms
        );
    }
    eprintln!();
    eprintln!("reading the table: each initiator owns a submission/completion queue");
    eprintln!("pair; ties at the arbitration point are broken round-robin, so with");
    eprintln!("symmetric load Jain's index stays near 1.0 while aggregate bandwidth");
    eprintln!("follows the same queue-depth curve as the single-host sweep.");
}
