//! Regenerates the queue-depth × element-count parallelism sweep enabled by
//! the event-driven controller engine: bandwidth and response-time
//! statistics per device shape, as CSV on stdout (pipe to a file to plot).

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::parallelism_sweep;

fn main() {
    let scale = scale_from_args();
    print_header("Parallelism sweep: bandwidth vs queue depth", scale);
    let points = parallelism_sweep::run(scale).expect("parallelism sweep");
    println!("elements,queue_depth,bandwidth_mbps,mean_ms,p99_ms,peak_element_queue");
    for p in &points {
        println!(
            "{},{},{:.2},{:.4},{:.4},{}",
            p.elements, p.queue_depth, p.bandwidth_mbps, p.mean_ms, p.p99_ms, p.peak_element_queue
        );
    }
    eprintln!();
    eprintln!("reading the curve: at queue depth 1 the controller commits to one");
    eprintln!("request until it starts on its die (head-of-line blocking); deeper");
    eprintln!("NCQ windows overlap requests across dies until the gang bus saturates.");
}
