//! Regenerates the cleaning-policy comparison: write amplification,
//! bandwidth and cleaning stall vs. device utilization, for every policy in
//! `ossd-gc`, with the analytical greedy curve as reference.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::policy_compare;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Cleaning-policy comparison: WA / bandwidth vs. utilization",
        scale,
    );
    let curves = policy_compare::run(scale).expect("policy comparison");
    println!(
        "{:<16} {:>5}  {:>8} {:>9}  {:>10}  {:>10}  {:>9}",
        "policy", "u", "WA", "analytic", "MB/s", "stall ms", "erases"
    );
    for curve in &curves {
        for p in &curve.points {
            println!(
                "{:<16} {:>5.2}  {:>8.3} {:>9.3}  {:>10.2}  {:>10.1}  {:>9}",
                curve.policy.name(),
                p.utilization,
                p.write_amplification,
                p.analytic_greedy,
                p.bandwidth_mb_s,
                p.cleaning_stall_ms,
                p.blocks_erased
            );
        }
    }
    println!();
    println!("background cleaning shifts the stall out of the write path;");
    println!("see the gc_cleaning bench and `idle_windows_trigger_background_cleaning`.");
}
