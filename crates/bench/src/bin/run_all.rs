//! Runs every table/figure regeneration in sequence (the full evaluation).

use ossd_bench::{print_header, scale_from_args};
use ossd_core::contract::ContractTerm;
use ossd_core::experiments::{
    figure2, figure3, fleet_sweep, latency_blame, lifetime, map_cache, multi_host,
    parallelism_sweep, policy_compare, swtf, table1, table2, table3, table4, table5, trace_capture,
};
use ossd_telemetry::BlameCat;

fn main() {
    let scale = scale_from_args();

    print_header("Table 1: Unwritten Contract", scale);
    let t1 = table1::run(scale).expect("table 1");
    println!("{:<22} 1  2  3  4  5  6", "device");
    for report in [&t1.hdd, &t1.ssd_page_mapped, &t1.ssd_stripe_mapped] {
        let marks: Vec<&str> = report
            .verdicts
            .iter()
            .map(|v| if v.holds { "T" } else { "F" })
            .collect();
        println!("{:<22} {}", report.device, marks.join("  "));
    }
    let _ = ContractTerm::all();

    print_header("Table 2: Sequential vs Random Bandwidth (MB/s)", scale);
    for r in table2::run(scale).expect("table 2") {
        println!(
            "{:<12} seqR {:>8.1} randR {:>8.2} (x{:>6.1})  seqW {:>8.1} randW {:>8.2} (x{:>6.1})",
            r.device,
            r.seq_read,
            r.rand_read,
            r.read_ratio(),
            r.seq_write,
            r.rand_write,
            r.write_ratio()
        );
    }

    print_header("Section 3.2: SWTF vs FCFS", scale);
    let s = swtf::run(scale).expect("swtf");
    println!(
        "FCFS {:.3} ms, SWTF {:.3} ms, improvement {:.2}%",
        s.fcfs_mean_ms,
        s.swtf_mean_ms,
        s.improvement_pct()
    );

    print_header("Figure 2: Write Amplification Saw-tooth", scale);
    for p in figure2::run(scale).expect("figure 2") {
        println!("{:>6.2} MB -> {:>8.2} MB/s", p.write_mb, p.bandwidth_mbps);
    }

    print_header("Table 3: Write Alignment vs Sequentiality", scale);
    for r in table3::run(scale).expect("table 3") {
        println!(
            "P(seq)={:.1}  unaligned {:>8.2} ms  aligned {:>8.2} ms  improvement {:>6.1}%",
            r.sequential_prob,
            r.unaligned_ms,
            r.aligned_ms,
            r.improvement_pct()
        );
    }

    print_header(
        "Table 4: Macro Benchmarks with Stripe-aligned Writes",
        scale,
    );
    for r in table4::run(scale).expect("table 4") {
        println!(
            "{:<10} unaligned {:>10.2} ms  aligned {:>10.2} ms  improvement {:>6.2}%",
            r.workload,
            r.unaligned_ms,
            r.aligned_ms,
            r.improvement_pct()
        );
    }

    print_header("Table 5: Informed Cleaning", scale);
    for r in table5::run(scale).expect("table 5") {
        println!(
            "{:>6} txns  pages {:>9} -> {:>9} (x{:.2})   cleaning {:>8.2}s -> {:>8.2}s (x{:.2})",
            r.transactions,
            r.default_pages_moved,
            r.informed_pages_moved,
            r.relative_pages_moved(),
            r.default_cleaning_secs,
            r.informed_cleaning_secs,
            r.relative_cleaning_time()
        );
    }

    print_header("Figure 3 / Table 6: Priority-Aware Cleaning", scale);
    for p in figure3::run(scale).expect("figure 3") {
        println!(
            "{:>3}% writes  fg {:>7.2} -> {:>7.2} ms ({:>6.2}%)   bg {:>7.2} -> {:>7.2} ms",
            p.write_pct,
            p.agnostic_foreground_ms,
            p.aware_foreground_ms,
            p.improvement_pct(),
            p.agnostic_background_ms,
            p.aware_background_ms
        );
    }

    print_header("Cleaning-policy comparison (WA vs utilization)", scale);
    for curve in policy_compare::run(scale).expect("policy comparison") {
        for p in &curve.points {
            println!(
                "{:<16} u={:.2}  WA {:>6.3} (analytic {:>6.3})  {:>8.2} MB/s  stall {:>8.1} ms",
                curve.policy.name(),
                p.utilization,
                p.write_amplification,
                p.analytic_greedy,
                p.bandwidth_mb_s,
                p.cleaning_stall_ms
            );
        }
    }

    print_header("Parallelism sweep (bandwidth vs queue depth)", scale);
    for p in parallelism_sweep::run(scale).expect("parallelism sweep") {
        println!(
            "elements {:>2}  qd {:>2}  {:>8.1} MB/s  mean {:>9.3} ms  p99 {:>9.3} ms  peak queue {:>3}",
            p.elements, p.queue_depth, p.bandwidth_mbps, p.mean_ms, p.p99_ms, p.peak_element_queue
        );
    }

    print_header("Multi-host sweep (bandwidth/fairness vs initiators)", scale);
    for p in multi_host::run(scale).expect("multi-host sweep") {
        println!(
            "initiators {:>2}  qd {:>2}  {:>8.1} MB/s  fairness {:>6.4}  p50 {:>8.3} ms  p99 {:>8.3} ms",
            p.initiators, p.queue_depth, p.total_bandwidth_mbps, p.fairness, p.p50_ms, p.p99_ms
        );
    }

    print_header("Lifetime sweep (TBW/UBER to end-of-life)", scale);
    for p in lifetime::run(scale).expect("lifetime sweep") {
        println!(
            "{:<14} OP {:.2} wl {:<5}  {:>8.2} MB TBW  {:>7.2} s  WA {:>6.3}  \
             retired {:>3}  pfail {:>3}  efail {:>3}  retries {:>5}  uncorrectable {:>3}  \
             UBER {:>9.3e}  ({})",
            p.policy.name(),
            p.overprovisioning,
            p.wear_leveling,
            p.tbw_bytes as f64 / 1e6,
            p.lifetime_secs,
            p.write_amplification,
            p.retired_blocks,
            p.program_fails,
            p.erase_fails,
            p.read_retries,
            p.uncorrectable_reads,
            p.uber,
            p.end.name()
        );
    }

    print_header("Fleet sweep (striped scale-out and parity rebuild)", scale);
    let fleet = fleet_sweep::run(scale).expect("fleet sweep");
    for p in &fleet.points {
        println!(
            "devices {:>2}  threads {:>2}  stripe {:>3} KiB  {:>8.2} MB/s  \
             p50 {:>9.3} ms  p99 {:>9.3} ms  wall {:>6.3} s",
            p.devices,
            p.threads,
            p.stripe_kib,
            p.bandwidth_mbps,
            p.p50_ms,
            p.p99_ms,
            p.wall_seconds
        );
    }
    for r in &fleet.rebuild {
        println!(
            "rebuild {:<14} ({} devices): p99.9 {:.3} -> {:.3} ms, \
             {:>5.1} MiB copied at {:>5.2} MB/s sim, degraded reads {:>3}, \
             host errors {}",
            r.label,
            r.devices,
            r.healthy.p999_ms,
            r.degraded.p999_ms,
            r.rebuilt_mib,
            r.rebuild_mbps,
            r.degraded_reads,
            r.host_errors
        );
    }

    print_header("Map-cache sweep (demand-paged mapping)", scale);
    for p in map_cache::run(scale).expect("map-cache sweep") {
        println!(
            "skew {:.1}  budget {:>9}  hit {:>6.3}  WA {:>6.3}  {:>8.2} MB/s  \
             p99 {:>8.3} ms  sram {:>7.5}",
            p.skew,
            p.budget_entries
                .map(|b| b.to_string())
                .unwrap_or_else(|| "resident".to_string()),
            p.hit_rate,
            p.write_amplification,
            p.bandwidth_mb_s,
            p.p99_ms,
            p.sram_fraction()
        );
    }

    print_header("Latency blame (p99.9 tail attribution)", scale);
    let blame = latency_blame::run(scale).expect("latency blame");
    for point in &blame.points {
        let all = point.report.class("all").expect("all row");
        println!(
            "map {:<12} {:>6} completions  p99.9 {:>10.1} us  tail blame: \
             sq {:>5.1}%  gc {:>5.1}%  map {:>5.1}%  bus {:>5.1}%  ecc {:>5.1}%",
            point.label,
            point.completions,
            all.p999_us,
            100.0 * all.share(BlameCat::SqWait),
            100.0 * all.share(BlameCat::GcWait),
            100.0 * all.share(BlameCat::Map),
            100.0 * all.share(BlameCat::Bus),
            100.0 * all.share(BlameCat::Ecc),
        );
    }
    println!("run the `tail_latency` binary for the per-class report and artifacts");

    print_header("Trace capture (cross-layer telemetry export)", scale);
    let capture = trace_capture::run(scale).expect("trace capture");
    println!(
        "captured {} events, {} completions, {} samples x {} series, WA {:.3}",
        capture.events,
        capture.completions,
        capture.samples,
        capture.series,
        capture.write_amplification
    );
    println!("run the `trace_capture` binary to write the trace/CSV artifacts");
}
