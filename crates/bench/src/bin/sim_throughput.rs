//! End-to-end simulation throughput: simulated host operations per second
//! of *wall-clock* time on a large-geometry, GC-heavy steady-state workload.
//!
//! This is the perf-smoke companion of the incremental victim index: the
//! workload parks the device at its cleaning watermark (the regime of
//! Dayan et al.'s steady-state write-amplification models) where, before
//! the index, every victim pick re-scanned every block of the element and
//! allocated a fresh candidate vector.  The binary reports the measured
//! rate, compares it against the recorded pre-index baseline, and emits
//! machine-readable `BENCH_sim.json` for CI trending.
//!
//! Pass `--quick` for the small configuration CI runs as a smoke test, and
//! `--check-baseline <path>` to compare the measured rate against a
//! previously committed `BENCH_sim.json` (exits non-zero on a >10%
//! regression; this is the CI guard that keeps the telemetry hooks free
//! when no sink is attached).

use std::time::Instant;

use ossd_bench::{print_header, scale_from_args, Scale};
use ossd_block::{BlockDevice, BlockRequest};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{LatencyStats, SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_telemetry::json;

/// Fraction of the baseline rate the measured rate must reach when
/// `--check-baseline` is given.  Wall-clock throughput is noisy across
/// machines and CI runners, so the guard is deliberately loose; the 2%
/// no-op-sink overhead budget is audited by re-measuring `BENCH_sim.json`
/// on the reference machine, not by this gate.
const BASELINE_TOLERANCE: f64 = 0.90;

/// Simulated-ops-per-wall-second measured on the paper-scale configuration
/// immediately *before* the incremental victim index landed (scan-based
/// victim selection, per-command allocation).  Recorded here and in the
/// README so the speedup is auditable; re-measure with this binary.  That
/// measurement used the original single-page churn; the weighted size mix
/// added later (for percentile resolution) does ~2x the work per op, so
/// the speedup reported against this constant is conservative.
const PRE_INDEX_BASELINE_OPS_PER_SEC: f64 = 63_721.0;

struct Config {
    name: &'static str,
    geometry: FlashGeometry,
    churn_ops: u64,
}

fn config_for(scale: Scale) -> Config {
    match scale {
        Scale::Paper => Config {
            name: "large",
            // 2 elements x 8192 blocks x 64 pages x 4 KB = 4 GiB: a
            // blocks-per-element count where scan-based victim picks are
            // clearly super-constant, churned long enough to sit at the
            // steady-state watermark for most of the timed phase.
            geometry: FlashGeometry {
                packages: 2,
                dies_per_package: 1,
                planes_per_die: 1,
                blocks_per_plane: 8192,
                pages_per_block: 64,
                page_bytes: 4096,
            },
            churn_ops: 300_000,
        },
        Scale::Quick => Config {
            name: "quick",
            geometry: FlashGeometry {
                packages: 2,
                dies_per_package: 1,
                planes_per_die: 1,
                blocks_per_plane: 256,
                pages_per_block: 32,
                page_bytes: 4096,
            },
            churn_ops: 20_000,
        },
    }
}

fn ssd_config(geometry: FlashGeometry) -> SsdConfig {
    SsdConfig {
        name: "sim-throughput".to_string(),
        geometry,
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        // Modest over-provisioning and watermarks a little above it keep
        // the device cleaning on the write path for the whole churn phase.
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 2,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn main() {
    let scale = scale_from_args();
    print_header(
        "Simulation throughput: simulated ops per wall-clock second",
        scale,
    );
    let config = config_for(scale);
    let mut ssd = Ssd::new(ssd_config(config.geometry)).expect("valid config");
    let page = ssd.logical_page_bytes();
    let logical_pages = ssd.capacity_bytes() / page;

    // Phase 1 (untimed): sequential fill so every later write supersedes a
    // mapped page and the churn phase runs at the steady-state watermark.
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    for lpn in 0..logical_pages {
        let c = ssd
            .submit(&BlockRequest::write(id, lpn * page, page, at))
            .expect("fill write");
        at = c.finish;
        id += 1;
    }

    // Phase 2 (timed): random overwrites with a weighted size mix (5/8
    // single-page, then 2/4/8 pages), closed loop.  The mix matters for the
    // reported tail: uniform single-page churn collapses the service-time
    // distribution into a handful of discrete values (GC-stalled vs not),
    // so p95 and p99 land on the same sample and the percentiles carry no
    // tail information.  Alongside the wall-clock rate, track the
    // *simulated* time the churn spans and each command's service time so
    // the JSON also reports the device-side view (sim-time bandwidth and
    // service-time percentiles).
    let mut rng = SimRng::seed_from_u64(0x51B0_7EE7);
    let mut service = LatencyStats::new();
    let sim_start = at;
    let mut churn_bytes = 0u64;
    let wall_start = Instant::now();
    for _ in 0..config.churn_ops {
        let pages = match rng.next_u64_below(8) {
            0..=4 => 1,
            5 => 2,
            6 => 4,
            _ => 8,
        };
        let lpn = rng.next_u64_below(logical_pages - pages);
        let c = ssd
            .submit(&BlockRequest::write(id, lpn * page, pages * page, at))
            .expect("churn write");
        service.record(c.service_time());
        churn_bytes += pages * page;
        at = c.finish;
        id += 1;
    }
    let wall = wall_start.elapsed().as_secs_f64();
    let ops_per_sec = config.churn_ops as f64 / wall;
    let sim_seconds = (at - sim_start).as_nanos() as f64 / 1e9;
    let sim_bandwidth_mb_s = if sim_seconds > 0.0 {
        churn_bytes as f64 / 1e6 / sim_seconds
    } else {
        0.0
    };
    let p50_us = service.percentile(50.0).as_nanos() as f64 / 1e3;
    let p95_us = service.percentile(95.0).as_nanos() as f64 / 1e3;
    let p99_us = service.percentile(99.0).as_nanos() as f64 / 1e3;

    let stats = ssd.stats();
    let speedup = if PRE_INDEX_BASELINE_OPS_PER_SEC > 0.0 && scale == Scale::Paper {
        ops_per_sec / PRE_INDEX_BASELINE_OPS_PER_SEC
    } else {
        0.0
    };
    println!("config: {} ({} logical pages)", config.name, logical_pages);
    println!(
        "churn: {} ops in {:.3} s wall -> {:.0} simulated ops/s",
        config.churn_ops, wall, ops_per_sec
    );
    println!(
        "write amplification {:.3}, gc blocks erased {}, gc pages moved {}",
        stats.write_amplification(),
        stats.ftl.gc_blocks_erased,
        stats.ftl.gc_pages_moved
    );
    println!(
        "sim-time: {:.3} s -> {:.2} MB/s device bandwidth; service time \
         p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
        sim_seconds, sim_bandwidth_mb_s, p50_us, p95_us, p99_us
    );
    if scale == Scale::Paper {
        println!(
            "pre-index baseline {:.0} ops/s -> speedup {:.2}x",
            PRE_INDEX_BASELINE_OPS_PER_SEC, speedup
        );
    }

    // The paper-scale result is the audited, committed artifact; quick
    // (CI-smoke) runs write alongside it so they never clobber it.
    let json_path = match scale {
        Scale::Paper => "BENCH_sim.json",
        Scale::Quick => "BENCH_sim_quick.json",
    };
    let json = format!(
        "{{\n  \"config\": \"{}\",\n  \"blocks_per_element\": {},\n  \
         \"churn_ops\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"sim_ops_per_wall_second\": {:.1},\n  \
         \"pre_index_baseline_ops_per_sec\": {:.1},\n  \"speedup\": {:.3},\n  \
         \"write_amplification\": {:.4},\n  \
         \"sim_seconds\": {:.6},\n  \"sim_bandwidth_mb_s\": {:.3},\n  \
         \"service_p50_us\": {:.2},\n  \"service_p95_us\": {:.2},\n  \
         \"service_p99_us\": {:.2}\n}}\n",
        config.name,
        config.geometry.blocks_per_element(),
        config.churn_ops,
        wall,
        ops_per_sec,
        PRE_INDEX_BASELINE_OPS_PER_SEC,
        speedup,
        stats.write_amplification(),
        sim_seconds,
        sim_bandwidth_mb_s,
        p50_us,
        p95_us,
        p99_us
    );
    std::fs::write(json_path, &json).expect("write bench json");
    println!("wrote {json_path}");

    if let Some(baseline_path) = check_baseline_arg() {
        match check_baseline(&baseline_path, ops_per_sec) {
            Ok(baseline_ops) => println!(
                "baseline check: {:.0} ops/s >= {:.0}% of {baseline_path}'s {:.0} ops/s -- ok",
                ops_per_sec,
                BASELINE_TOLERANCE * 100.0,
                baseline_ops
            ),
            Err(why) => {
                eprintln!("baseline check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
}

/// Returns the argument following `--check-baseline`, if present.
fn check_baseline_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--check-baseline" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--check-baseline requires a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Reads `sim_ops_per_wall_second` from a previously written BENCH_sim JSON
/// (parsed with the telemetry crate's vendored codec) and checks the
/// measured rate against it with [`BASELINE_TOLERANCE`] headroom.
fn check_baseline(path: &str, measured_ops_per_sec: f64) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::Value::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let baseline_ops = doc
        .get("sim_ops_per_wall_second")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{path} has no sim_ops_per_wall_second"))?;
    if measured_ops_per_sec < BASELINE_TOLERANCE * baseline_ops {
        return Err(format!(
            "measured {measured_ops_per_sec:.0} ops/s is below {:.0}% of the \
             baseline {baseline_ops:.0} ops/s from {path}",
            BASELINE_TOLERANCE * 100.0
        ));
    }
    Ok(baseline_ops)
}
