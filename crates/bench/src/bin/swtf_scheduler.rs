//! Regenerates the §3.2 result: SWTF scheduling vs FCFS on a random
//! workload with 2/3 reads and 1/3 writes.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::swtf;

fn main() {
    let scale = scale_from_args();
    print_header("Section 3.2: Shortest Wait Time First vs FCFS", scale);
    let result = swtf::run(scale).expect("experiment runs");
    println!("FCFS mean response time: {:>8.3} ms", result.fcfs_mean_ms);
    println!("SWTF mean response time: {:>8.3} ms", result.swtf_mean_ms);
    println!(
        "Improvement:             {:>8.2} %",
        result.improvement_pct()
    );
    println!();
    println!("Paper reference: SWTF improves response time by about 8% over FCFS.");
}
