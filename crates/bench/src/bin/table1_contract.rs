//! Regenerates Table 1: the unwritten contract for Disk vs SSD.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::contract::ContractTerm;
use ossd_core::experiments::table1;

fn main() {
    let scale = scale_from_args();
    print_header("Table 1: Unwritten Contract (Disk vs SSD)", scale);
    let result = table1::run(scale).expect("experiment runs");
    for (i, term) in ContractTerm::all().iter().enumerate() {
        println!("  {}. {}", i + 1, term.description());
    }
    println!();
    println!("{:<22} 1  2  3  4  5  6", "device");
    for report in [
        &result.hdd,
        &result.ssd_page_mapped,
        &result.ssd_stripe_mapped,
    ] {
        let marks: Vec<&str> = report
            .verdicts
            .iter()
            .map(|v| if v.holds { "T" } else { "F" })
            .collect();
        println!("{:<22} {}", report.device, marks.join("  "));
    }
    println!();
    println!("Evidence:");
    for report in [
        &result.hdd,
        &result.ssd_page_mapped,
        &result.ssd_stripe_mapped,
    ] {
        println!("{}:", report.device);
        for v in &report.verdicts {
            println!("  [{}] {}", if v.holds { "T" } else { "F" }, v.evidence);
        }
    }
    println!();
    println!("Paper reference (Table 1): Disk = T T F T T T, SSD = F F F F F F");
}
