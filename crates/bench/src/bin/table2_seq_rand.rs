//! Regenerates Table 2: ratio of sequential to random bandwidth.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::table2;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Table 2: Ratio of Sequential to Random Bandwidth (MB/s)",
        scale,
    );
    let rows = table2::run(scale).expect("experiment runs");
    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "Device", "SeqRead", "RandRead", "Ratio", "SeqWrite", "RandWrite", "Ratio"
    );
    for r in &rows {
        println!(
            "{:<12} {:>9.1} {:>9.2} {:>8.1} {:>9.1} {:>9.2} {:>8.1}",
            r.device,
            r.seq_read,
            r.rand_read,
            r.read_ratio(),
            r.seq_write,
            r.rand_write,
            r.write_ratio()
        );
    }
    println!();
    println!("Paper reference (Table 2, ratios): HDD 143.7/66.8, S1slc 11.0/3.1,");
    println!("S2slc 9.2/328.0, S3slc 2.4/151.6, S4slc_sim 1.1/1.3, S5mlc 3.2/1.5");
}
