//! Regenerates Table 3: response time of unaligned vs stripe-aligned 4 KB
//! writes for varying degrees of sequentiality.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::table3;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Table 3: Improved Response Time with Write Alignment",
        scale,
    );
    let rows = table3::run(scale).expect("experiment runs");
    println!(
        "{:>24} {:>12} {:>12} {:>12}",
        "P(sequential access)", "Unaligned", "Aligned", "Improvement"
    );
    for row in &rows {
        println!(
            "{:>24.1} {:>10.2}ms {:>10.2}ms {:>11.1}%",
            row.sequential_prob,
            row.unaligned_ms,
            row.aligned_ms,
            row.improvement_pct()
        );
    }
    println!();
    println!("Paper reference (Table 3, ms): unaligned 10.6 10.6 10.5 10.2 10.5;");
    println!("aligned 10.6 10.4 8.9 7.6 5.6 for P(seq) = 0, 0.2, 0.4, 0.6, 0.8.");
}
