//! Regenerates Table 4: macro benchmarks with stripe-aligned writes.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::table4;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Table 4: Macro Benchmarks with Stripe-aligned Writes",
        scale,
    );
    let rows = table4::run(scale).expect("experiment runs");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "Workload", "Unaligned (ms)", "Aligned (ms)", "Improvement"
    );
    for row in &rows {
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>13.2}%",
            row.workload,
            row.unaligned_ms,
            row.aligned_ms,
            row.improvement_pct()
        );
    }
    println!();
    println!("Paper reference (Table 4, improvement %): Postmark 1.15, TPCC 3.08,");
    println!("Exchange 4.89, IOzone 36.54 — IOzone benefits most (large writes).");
}
