//! Regenerates Table 5: improved cleaning with free-page information.

use ossd_bench::{print_header, scale_from_args};
use ossd_core::experiments::table5;

fn main() {
    let scale = scale_from_args();
    print_header(
        "Table 5: Improved Cleaning with Free-Page Information",
        scale,
    );
    let rows = table5::run(scale).expect("experiment runs");
    println!(
        "{:>12} {:>15} {:>15} {:>9} {:>13} {:>13} {:>9}",
        "transactions",
        "default moved",
        "informed moved",
        "relative",
        "default (s)",
        "informed (s)",
        "relative"
    );
    for row in &rows {
        println!(
            "{:>12} {:>15} {:>15} {:>9.2} {:>13.2} {:>13.2} {:>9.2}",
            row.transactions,
            row.default_pages_moved,
            row.informed_pages_moved,
            row.relative_pages_moved(),
            row.default_cleaning_secs,
            row.informed_cleaning_secs,
            row.relative_cleaning_time()
        );
    }
    println!();
    println!("Paper reference (Table 5): relative pages moved 0.31 0.25 0.35 0.50,");
    println!("relative cleaning time 0.69 0.60 0.63 0.69 for 5K-8K transactions.");
}
