//! Tail-latency attribution: where the p99.9 comes from, and how fast the
//! simulator answers that question.
//!
//! Runs `ossd_core::experiments::latency_blame` — a GC-active,
//! 4-initiator TPC-C slice with the latency-attribution subsystem enabled,
//! swept across demand-paged map-cache budgets — and reports, per request
//! class, the deep-tail percentiles (p50/p99/p99.9/p99.99) and the share
//! of p99.9-tail latency blamed on each component (GC, map I/O, fences,
//! arbitration, bus, ECC, the command's own flash time).
//!
//! Artifacts: `BENCH_tail.json` (machine-readable report plus the
//! attribution-enabled simulation rate CI trends), one blame CSV per sweep
//! point, and the starved point's cumulative blame as Perfetto counter
//! tracks.  Quick runs write `_quick`-suffixed files alongside.
//!
//! Pass `--quick` for the CI smoke configuration, and
//! `--check-baseline <path>` to compare the measured attribution-enabled
//! rate against a previously committed report (exits non-zero on a >10%
//! regression — the guard that keeps blame accounting cheap).

use std::time::Instant;

use ossd_bench::{print_header, scale_from_args, Scale};
use ossd_core::experiments::latency_blame::{self, LatencyBlamePoint};
use ossd_telemetry::{json, BlameCat};

/// Fraction of the baseline rate the measured rate must reach when
/// `--check-baseline` is given.  Wall-clock throughput is noisy across
/// machines and CI runners, so the guard is deliberately loose.
const BASELINE_TOLERANCE: f64 = 0.90;

fn main() {
    let scale = scale_from_args();
    print_header("Tail latency: per-request blame for the p99.9", scale);

    let wall_start = Instant::now();
    let blame = latency_blame::run(scale).expect("latency blame sweep");
    let wall = wall_start.elapsed().as_secs_f64();
    let completions: usize = blame.points.iter().map(|p| p.completions).sum();
    let completions_per_sec = completions as f64 / wall;

    for point in &blame.points {
        println!(
            "-- map {}: {} completions --",
            point.label, point.completions
        );
        println!(
            "{:<8} {:>7} {:>10} {:>10} {:>10} {:>10}  {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "class",
            "count",
            "p50_us",
            "p99_us",
            "p99.9_us",
            "p99.99_us",
            "sq%",
            "flash%",
            "gc%",
            "map%",
            "bus%",
            "ecc%"
        );
        for class in &point.report.classes {
            println!(
                "{:<8} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}  \
                 {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                class.class,
                class.count,
                class.p50_us,
                class.p99_us,
                class.p999_us,
                class.p9999_us,
                100.0 * class.share(BlameCat::SqWait),
                100.0 * class.share(BlameCat::Flash),
                100.0 * class.share(BlameCat::GcWait),
                100.0 * class.share(BlameCat::Map),
                100.0 * class.share(BlameCat::Bus),
                100.0 * class.share(BlameCat::Ecc),
            );
        }
    }
    println!(
        "attribution-enabled rate: {} completions in {:.3} s wall -> {:.0} completions/s",
        completions, wall, completions_per_sec
    );

    let suffix = match scale {
        Scale::Paper => "",
        Scale::Quick => "_quick",
    };
    for point in &blame.points {
        let csv_path = format!("BENCH_tail_blame_{}{}.csv", slug(&point.label), suffix);
        std::fs::write(&csv_path, &point.blame_csv).expect("write blame csv");
        println!("wrote {csv_path}");
    }
    let counters_path = format!("BENCH_tail_counters{suffix}.trace.json");
    let starved = blame.points.last().expect("sweep is non-empty");
    std::fs::write(&counters_path, &starved.counters_json).expect("write counter tracks");
    println!("wrote {counters_path} (open in https://ui.perfetto.dev)");

    // Check before writing the new report: the CI gate compares against
    // the *committed* quick baseline, which lives at the same path a quick
    // run writes to.
    let gate = check_baseline_arg().map(|baseline_path| {
        let result = check_baseline(&baseline_path, completions_per_sec);
        (baseline_path, result)
    });

    let json_path = match scale {
        Scale::Paper => "BENCH_tail.json",
        Scale::Quick => "BENCH_tail_quick.json",
    };
    let json = render_json(&blame.points, wall, completions_per_sec);
    std::fs::write(json_path, &json).expect("write bench json");
    println!("wrote {json_path}");

    if let Some((baseline_path, result)) = gate {
        match result {
            Ok(baseline) => println!(
                "baseline check: {:.0} completions/s >= {:.0}% of {baseline_path}'s {:.0} -- ok",
                completions_per_sec,
                BASELINE_TOLERANCE * 100.0,
                baseline
            ),
            Err(why) => {
                eprintln!("baseline check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
}

/// Filesystem-safe sweep-point label (`"budget 2048"` -> `"budget2048"`).
fn slug(label: &str) -> String {
    label.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Hand-formats the machine-readable report (the workspace vendors its own
/// JSON codec; no serializer dependency).
fn render_json(points: &[LatencyBlamePoint], wall: f64, completions_per_sec: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"wall_seconds\": {wall:.6},\n"));
    out.push_str(&format!(
        "  \"completions_per_wall_second\": {completions_per_sec:.1},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, point) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", point.label));
        out.push_str(&format!(
            "      \"map_budget\": {},\n",
            point
                .map_budget
                .map_or("null".to_string(), |b| b.to_string())
        ));
        out.push_str(&format!("      \"completions\": {},\n", point.completions));
        out.push_str("      \"classes\": [\n");
        for (j, class) in point.report.classes.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"class\": \"{}\", \"count\": {}, \"p50_us\": {:.2}, \
                 \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"p9999_us\": {:.2}, \
                 \"tail_sq_share\": {:.6}, \"tail_flash_share\": {:.6}, \
                 \"tail_gc_share\": {:.6}, \"tail_map_share\": {:.6}, \
                 \"tail_bus_share\": {:.6}, \"tail_ecc_share\": {:.6}}}{}\n",
                class.class,
                class.count,
                class.p50_us,
                class.p99_us,
                class.p999_us,
                class.p9999_us,
                class.share(BlameCat::SqWait),
                class.share(BlameCat::Flash),
                class.share(BlameCat::GcWait),
                class.share(BlameCat::Map),
                class.share(BlameCat::Bus),
                class.share(BlameCat::Ecc),
                if j + 1 < point.report.classes.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Returns the argument following `--check-baseline`, if present.
fn check_baseline_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--check-baseline" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--check-baseline requires a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Reads `completions_per_wall_second` from a previously written BENCH_tail
/// JSON and checks the measured rate against it with [`BASELINE_TOLERANCE`]
/// headroom.
fn check_baseline(path: &str, measured: f64) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::Value::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let baseline = doc
        .get("completions_per_wall_second")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{path} has no completions_per_wall_second"))?;
    if measured < BASELINE_TOLERANCE * baseline {
        return Err(format!(
            "measured {measured:.0} completions/s is below {:.0}% of the \
             baseline {baseline:.0} completions/s from {path}",
            BASELINE_TOLERANCE * 100.0
        ));
    }
    Ok(baseline)
}
