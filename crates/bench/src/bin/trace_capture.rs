//! Captures an instrumented TPC-C run as a Perfetto-loadable Chrome trace
//! plus a metrics-CSV time-series (see
//! `ossd_core::experiments::trace_capture`).
//!
//! Writes `BENCH_trace.trace.json` and `BENCH_trace_metrics.csv` (quick
//! runs write `_quick`-suffixed files alongside) and exits non-zero if the
//! capture fails its own validation: the trace must parse with the vendored
//! JSON codec and every element and initiator track must carry complete
//! spans.  Open the `.trace.json` in <https://ui.perfetto.dev>.
//!
//! Pass `--quick` for the CI smoke configuration.

use ossd_bench::{print_header, scale_from_args, Scale};
use ossd_core::experiments::trace_capture;

fn main() {
    let scale = scale_from_args();
    print_header("Trace capture: cross-layer telemetry export", scale);
    let capture = trace_capture::run(scale).expect("trace capture");

    println!(
        "captured {} events ({} dropped), {} completions across {} initiators",
        capture.events,
        capture.dropped_events,
        capture.completions,
        trace_capture::INITIATORS
    );
    println!(
        "metrics: {} samples x {} series, write amplification {:.3}",
        capture.samples, capture.series, capture.write_amplification
    );
    if capture.dropped_events > 0 {
        println!(
            "WARNING: event ring overflowed; the span trace is missing {} events \
             (raise RecorderConfig::ring_capacity for a complete capture; the \
             dropped_events column in {} marks the lossy region)",
            capture.dropped_events,
            match scale {
                Scale::Paper => "BENCH_trace_metrics.csv",
                Scale::Quick => "BENCH_trace_metrics_quick.csv",
            }
        );
    }

    let (trace_path, csv_path) = match scale {
        Scale::Paper => ("BENCH_trace.trace.json", "BENCH_trace_metrics.csv"),
        Scale::Quick => (
            "BENCH_trace_quick.trace.json",
            "BENCH_trace_metrics_quick.csv",
        ),
    };
    std::fs::write(trace_path, &capture.trace_json).expect("write trace json");
    std::fs::write(csv_path, &capture.metrics_csv).expect("write metrics csv");
    println!("wrote {trace_path} ({} bytes)", capture.trace_json.len());
    println!("wrote {csv_path} ({} bytes)", capture.metrics_csv.len());
    println!("open the trace in https://ui.perfetto.dev");
}
