//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by calling the drivers in `ossd_core::experiments`.  By default the
//! binaries run at [`Scale::Paper`]; pass `--quick` to use the fast
//! configuration the unit and integration tests use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;

pub use ossd_core::experiments::Scale;

/// Parses the experiment scale from the process arguments (`--quick` selects
/// [`Scale::Quick`], anything else runs the full paper-scale configuration).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick" || a == "-q") {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

/// Prints a standard experiment header.
pub fn print_header(title: &str, scale: Scale) {
    println!("================================================================");
    println!("{title}");
    println!("scale: {scale:?} (pass --quick for the fast configuration)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // The test harness passes its own arguments, none of which are
        // `--quick`, so the default path is exercised here.
        assert_eq!(scale_from_args(), Scale::Paper);
    }
}
