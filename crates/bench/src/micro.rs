//! A minimal micro-benchmark harness.
//!
//! The workspace builds hermetically with no external crates, so the bench
//! targets use this ~80-line harness instead of criterion: each benchmark is
//! a `harness = false` binary that calls [`bench()`](fn@bench) for every case.  The
//! harness warms the case up, then runs timed batches until enough wall time
//! has accumulated for a stable per-iteration estimate, and prints one
//! `name ... time/iter` line, so `cargo bench` output stays grep-able.

use std::time::{Duration, Instant};

/// Minimum measured wall time per case before reporting.
const MEASURE_TARGET: Duration = Duration::from_millis(250);
/// Warm-up wall time per case.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Re-export of [`std::hint::black_box`] for benchmark bodies.
pub use std::hint::black_box;

/// Runs `f` repeatedly and prints the mean time per iteration.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up (fills caches, reaches steady state, sizes the first batch).
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP_TARGET {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
    // Pick a batch size around 10ms of work so timer overhead is negligible.
    let batch = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < MEASURE_TARGET {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += start.elapsed();
        iters += batch;
    }
    let nanos = total.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {:>12} ({iters} iters)", format_nanos(nanos));
}

/// Formats a per-iteration time with a sensible unit.
fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", nanos / 1_000_000_000.0)
    }
}

/// Prints the standard header for one benchmark binary.
pub fn header(title: &str) {
    println!("--- {title} ---");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_formatting() {
        assert!(format_nanos(12.3).ends_with("ns/iter"));
        assert!(format_nanos(12_300.0).ends_with("µs/iter"));
        assert!(format_nanos(12_300_000.0).ends_with("ms/iter"));
        assert!(format_nanos(2.3e9).ends_with("s/iter"));
    }
}
