//! The block-device trait implemented by the HDD and SSD simulators.

use std::fmt;

use crate::request::{BlockRequest, Completion};

/// Errors a block device can report for a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The request addressed bytes beyond the device capacity.
    OutOfBounds {
        /// Requested end offset.
        end: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The request kind is not supported by this device (e.g. `Free` on a
    /// device without TRIM support).
    Unsupported {
        /// Description of the unsupported feature.
        what: &'static str,
    },
    /// The request was malformed (zero length where data was required).
    EmptyRequest,
    /// A device-management call (fail/replace/rebuild) targeted a member
    /// device that is already failed — a typed no-op so callers can treat
    /// repeated failure notifications idempotently.
    AlreadyFailed {
        /// Member device index.
        device: usize,
    },
    /// A redundancy operation (failure injection, replacement, rebuild) is
    /// invalid for the array's layout or current device state.  Unlike
    /// [`DeviceError::Unsupported`], the description is built at the call
    /// site so it can name the devices and layout involved.
    Redundancy {
        /// Description naming the offending device(s) and layout.
        what: String,
    },
    /// The device's internal state machine reported an error; this indicates
    /// a simulator bug and carries the underlying description.
    Internal(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds { end, capacity } => {
                write!(f, "request end {end} exceeds device capacity {capacity}")
            }
            DeviceError::Unsupported { what } => write!(f, "unsupported operation: {what}"),
            DeviceError::EmptyRequest => write!(f, "request transfers zero bytes"),
            DeviceError::AlreadyFailed { device } => {
                write!(f, "device {device} is already failed")
            }
            DeviceError::Redundancy { what } => write!(f, "redundancy error: {what}"),
            DeviceError::Internal(msg) => write!(f, "internal device error: {msg}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Descriptive information about a device, used in reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceInfo {
    /// Human-readable device name (e.g. `"S4slc_sim"` or `"HDD 7200rpm"`).
    pub name: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Whether the device accepts `Free` (TRIM-style) notifications.
    pub supports_free: bool,
}

/// A simulated block device.
///
/// Submitting a request advances the device's internal clock model and
/// returns the completion record for that request.  Requests must be
/// submitted in non-decreasing arrival order; devices may reorder *service*
/// internally (scheduling) but the trace is replayed in arrival order.
pub trait BlockDevice {
    /// Descriptive information about the device.
    fn info(&self) -> DeviceInfo;

    /// Usable capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.info().capacity_bytes
    }

    /// Submits one request and returns its completion.
    fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError>;

    /// Validates a request against the device capacity; devices call this at
    /// the top of `submit`.
    fn check_bounds(&self, request: &BlockRequest) -> Result<(), DeviceError> {
        let capacity = self.capacity_bytes();
        if request.range.end() > capacity {
            return Err(DeviceError::OutOfBounds {
                end: request.range.end(),
                capacity,
            });
        }
        if request.is_empty() && request.kind.transfers_data() {
            return Err(DeviceError::EmptyRequest);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::BlockOpKind;
    use ossd_sim::SimTime;

    /// A trivial device that completes everything instantly; used to test
    /// the trait's provided methods.
    struct NullDevice {
        capacity: u64,
    }

    impl BlockDevice for NullDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo {
                name: "null".to_string(),
                capacity_bytes: self.capacity,
                supports_free: false,
            }
        }

        fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
            self.check_bounds(request)?;
            if request.kind == BlockOpKind::Free {
                return Err(DeviceError::Unsupported { what: "free" });
            }
            Ok(Completion::ok(
                request.id,
                request.arrival,
                request.arrival,
                request.arrival,
            ))
        }
    }

    #[test]
    fn bounds_checking() {
        let mut d = NullDevice { capacity: 1024 };
        let ok = BlockRequest::read(1, 0, 1024, SimTime::ZERO);
        assert!(d.submit(&ok).is_ok());
        let too_big = BlockRequest::read(2, 512, 1024, SimTime::ZERO);
        assert!(matches!(
            d.submit(&too_big),
            Err(DeviceError::OutOfBounds { capacity: 1024, .. })
        ));
        let empty = BlockRequest::write(3, 0, 0, SimTime::ZERO);
        assert_eq!(d.submit(&empty), Err(DeviceError::EmptyRequest));
    }

    #[test]
    fn unsupported_free() {
        let mut d = NullDevice { capacity: 1024 };
        let f = BlockRequest::free(1, 0, 512, SimTime::ZERO);
        assert!(matches!(
            d.submit(&f),
            Err(DeviceError::Unsupported { what: "free" })
        ));
    }

    #[test]
    fn capacity_defaults_to_info() {
        let d = NullDevice { capacity: 4096 };
        assert_eq!(d.capacity_bytes(), 4096);
        assert_eq!(d.info().name, "null");
        assert!(!d.info().supports_free);
    }

    #[test]
    fn error_display() {
        let e = DeviceError::OutOfBounds {
            end: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("capacity"));
        assert!(DeviceError::EmptyRequest.to_string().contains("zero"));
        assert!(DeviceError::Unsupported { what: "x" }
            .to_string()
            .contains("unsupported"));
        assert!(DeviceError::Internal("boom".into())
            .to_string()
            .contains("boom"));
    }
}
