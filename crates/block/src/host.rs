//! The queue-pair host↔device command protocol.
//!
//! §3 of the paper argues that the narrow block interface hides the
//! information a device needs for block management, and that richer
//! interfaces — free notifications (§3.5), hints (§3.4, §3.6), object-based
//! storage (§3.7) — let the device manage its own blocks.  This module is
//! that richer interface as one transport: an NVMe-style *queue pair* per
//! initiator, carrying a [`HostCommand`] vocabulary that spans block traffic,
//! write hints, ordering fences and object management.
//!
//! ```text
//!   initiator 0        initiator 1        initiator N-1
//!   ┌─────────┐        ┌─────────┐        ┌─────────┐
//!   │ SQ │ CQ │        │ SQ │ CQ │  ...   │ SQ │ CQ │     HostQueue pairs
//!   └──┬──▲───┘        └──┬──▲───┘        └──┬──▲───┘
//!      │  │               │  │               │  │
//!      ▼  │               ▼  │               ▼  │
//!   ═══╪══╪═══════════════╪══╪═══════════════╪══╪═════    round-robin
//!      └──┼───────┐       └──┼──────┐        └──┼────┐    arbitration
//!         │       ▼          │      ▼           │    ▼
//!         │   ┌────────────────────────────────────────┐
//!         └───┤  device controller (event engine):     │
//!             │  scheduler → per-element dispatch      │
//!             │  queues → flash array / disk arm       │
//!             └────────────────────────────────────────┘
//! ```
//!
//! Commands are submitted into a per-initiator submission queue (SQ) in
//! arrival order; [`HostInterface::serve`] drains every SQ through the
//! device's event-driven controller (arbitrating round-robin among
//! initiators that submit at the same instant) and posts one completion per
//! command to the owning initiator's completion queue (CQ), in completion
//! order.  Every request-processing mode in the workspace is a driver of
//! this one transport:
//!
//! * [`BlockDevice::submit`] — the depth-1
//!   *closed* driver: one command per session, served to completion.
//! * [`replay_open`](crate::replay_open) / [`replay_closed`](crate::replay_closed)
//!   — incremental enqueue-and-poll over one queue pair.
//! * `Ssd::simulate_open` / `Hdd::simulate_open` — a whole arrival trace
//!   submitted up front, one initiator.
//! * The object store (`ossd-core`) — a command *translator*: object
//!   operations become block commands over the identical transport.
//!
//! # Command vocabulary (paper §3 → protocol)
//!
//! | Paper interface | Command |
//! |---|---|
//! | reads/writes of LBNs (§2) | [`HostCommand::Read`], [`HostCommand::Write`] |
//! | free notifications (§3.5) | [`HostCommand::Free`] |
//! | stream/temperature hints (§3.4, §3.6) | [`WriteHint`] on `Write` |
//! | ordering / durability control | [`HostCommand::Flush`], [`HostCommand::Barrier`] |
//! | object-based storage (§3.7) | [`HostCommand::ObjectCreate`] / [`HostCommand::ObjectDelete`] / [`HostCommand::ObjectSetAttr`] |

use std::collections::VecDeque;

use ossd_sim::SimTime;

use crate::device::{BlockDevice, DeviceError};
use crate::range::ByteRange;
use crate::request::{BlockOpKind, BlockRequest, Completion, Priority};

/// How frequently the host expects data to change: the stream-temperature
/// payload of write hints and object attributes (§3.4's "patterns of usage",
/// §3.7's read-only/cold attributes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StreamTemperature {
    /// Frequently rewritten.
    Hot,
    /// Default: no particular expectation.
    #[default]
    Warm,
    /// Rarely or never rewritten.
    Cold,
}

impl StreamTemperature {
    /// The variant name used by the trace serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            StreamTemperature::Hot => "Hot",
            StreamTemperature::Warm => "Warm",
            StreamTemperature::Cold => "Cold",
        }
    }
}

impl std::str::FromStr for StreamTemperature {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Hot" => Ok(StreamTemperature::Hot),
            "Warm" => Ok(StreamTemperature::Warm),
            "Cold" => Ok(StreamTemperature::Cold),
            other => Err(format!("unknown stream temperature {other:?}")),
        }
    }
}

/// A multi-stream-style write hint: advisory placement information the
/// device may use to segregate data by expected lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct WriteHint {
    /// Expected rewrite frequency of the written data.
    pub temperature: StreamTemperature,
}

impl WriteHint {
    /// The unhinted default (warm).
    pub const NONE: WriteHint = WriteHint {
        temperature: StreamTemperature::Warm,
    };

    /// A hint with the given temperature.
    pub fn with_temperature(temperature: StreamTemperature) -> Self {
        WriteHint { temperature }
    }

    /// Whether the hint actually says anything (non-default temperature).
    pub fn is_hinted(&self) -> bool {
        self.temperature != StreamTemperature::Warm
    }
}

/// Host-visible attributes of an object, carried by the object management
/// commands (§3.7: attributes convey priorities and read-only/cold data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectAttrs {
    /// Priority attached to every I/O the object generates.
    pub priority: Priority,
    /// Expected update frequency.
    pub temperature: StreamTemperature,
    /// Whether the object is read-only (its pages are candidates for cold
    /// placement during wear-leveling).
    pub read_only: bool,
}

impl ObjectAttrs {
    /// Attributes of a latency-sensitive (foreground) object.
    pub fn high_priority() -> Self {
        ObjectAttrs {
            priority: Priority::High,
            ..ObjectAttrs::default()
        }
    }

    /// Attributes of cold, read-only data.
    pub fn cold_read_only() -> Self {
        ObjectAttrs {
            temperature: StreamTemperature::Cold,
            read_only: true,
            ..ObjectAttrs::default()
        }
    }
}

/// One command of the queue-pair protocol.
///
/// Block devices (`Ssd`, `Hdd`) serve the block commands and fences and
/// reject the object commands with [`DeviceError::Unsupported`]; the object
/// store accepts the object commands and translates them into block
/// commands over the same transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostCommand {
    /// Read the addressed bytes.
    Read {
        /// Which bytes to read.
        range: ByteRange,
    },
    /// Write the addressed bytes, with an advisory placement hint.
    Write {
        /// Which bytes to write.
        range: ByteRange,
        /// Expected lifetime of the written data.
        hint: WriteHint,
    },
    /// Notify the device that the addressed bytes no longer hold live data
    /// (the TRIM-style free notification of §3.5).
    Free {
        /// Which bytes are dead.
        range: ByteRange,
    },
    /// Force device-side write buffers (open stripes, coalescing buffers)
    /// to stable media.  Orders like a [`HostCommand::Barrier`]: it is not
    /// dispatched until every earlier command from the same initiator in
    /// the session has completed.
    Flush,
    /// Ordering fence: completes only after every earlier command from the
    /// same initiator in the session has completed, and no later command
    /// from that initiator is dispatched before it completes.  Performs no
    /// device work.
    Barrier,
    /// Create an empty object with the given host-assigned id.
    ObjectCreate {
        /// Host-assigned object id.
        object: u64,
        /// Initial attributes.
        attrs: ObjectAttrs,
    },
    /// Delete an object; every byte it occupied is released to the device
    /// (informed cleaning without TRIM, §3.7).
    ObjectDelete {
        /// The object to delete.
        object: u64,
    },
    /// Replace the attributes of an object.
    ObjectSetAttr {
        /// The object to modify.
        object: u64,
        /// New attributes.
        attrs: ObjectAttrs,
    },
}

impl HostCommand {
    /// Whether this is one of the object-management commands.
    pub fn is_object_command(&self) -> bool {
        matches!(
            self,
            HostCommand::ObjectCreate { .. }
                | HostCommand::ObjectDelete { .. }
                | HostCommand::ObjectSetAttr { .. }
        )
    }

    /// Whether this command is an ordering fence (barrier or flush).
    pub fn is_fence(&self) -> bool {
        matches!(self, HostCommand::Flush | HostCommand::Barrier)
    }

    /// The byte range a block data command addresses, if any.
    pub fn range(&self) -> Option<ByteRange> {
        match self {
            HostCommand::Read { range }
            | HostCommand::Write { range, .. }
            | HostCommand::Free { range } => Some(*range),
            _ => None,
        }
    }

    /// Converts a block request into the equivalent command.
    pub fn from_request(request: &BlockRequest) -> Self {
        match request.kind {
            BlockOpKind::Read => HostCommand::Read {
                range: request.range,
            },
            BlockOpKind::Write => HostCommand::Write {
                range: request.range,
                hint: WriteHint::NONE,
            },
            BlockOpKind::Free => HostCommand::Free {
                range: request.range,
            },
        }
    }

    /// The block request a block data command corresponds to (`None` for
    /// fences and object commands).
    pub fn to_request(
        &self,
        id: u64,
        arrival: SimTime,
        priority: Priority,
    ) -> Option<BlockRequest> {
        let (kind, range) = match self {
            HostCommand::Read { range } => (BlockOpKind::Read, *range),
            HostCommand::Write { range, .. } => (BlockOpKind::Write, *range),
            HostCommand::Free { range } => (BlockOpKind::Free, *range),
            _ => return None,
        };
        Some(BlockRequest {
            id,
            kind,
            range,
            arrival,
            priority,
        })
    }
}

/// One command sitting in a submission queue, with its per-initiator
/// correlation id and submission metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmittedCommand {
    /// Caller-chosen correlation id, echoed back in the completion's
    /// `request_id`.
    pub id: u64,
    /// The command.
    pub command: HostCommand,
    /// When the command arrives at the device.
    pub arrival: SimTime,
    /// Host-assigned priority (drives priority-aware cleaning, §3.6).
    pub priority: Priority,
}

/// A submission/completion queue pair for one initiator.
///
/// Commands are pushed into the submission side in non-decreasing arrival
/// order; a device's [`HostInterface::serve`] drains the submission queue
/// and posts completions (in completion order) to the completion side,
/// where the initiator polls them back out.
#[derive(Clone, Debug, Default)]
pub struct HostQueue {
    submissions: VecDeque<SubmittedCommand>,
    completions: VecDeque<Completion>,
    last_arrival: SimTime,
    submitted: u64,
    completed: u64,
}

impl HostQueue {
    /// An empty queue pair.
    pub fn new() -> Self {
        HostQueue::default()
    }

    /// Submits one command at `arrival` with the given correlation id and
    /// priority.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` precedes an earlier submission's arrival —
    /// devices require arrival-ordered submission streams.
    pub fn submit_with_priority(
        &mut self,
        id: u64,
        command: HostCommand,
        arrival: SimTime,
        priority: Priority,
    ) {
        assert!(
            arrival >= self.last_arrival,
            "commands must be submitted in non-decreasing arrival order \
             ({arrival:?} after {:?})",
            self.last_arrival
        );
        self.last_arrival = arrival;
        self.submitted += 1;
        self.submissions.push_back(SubmittedCommand {
            id,
            command,
            arrival,
            priority,
        });
    }

    /// Submits one command at normal priority.
    pub fn submit(&mut self, id: u64, command: HostCommand, arrival: SimTime) {
        self.submit_with_priority(id, command, arrival, Priority::Normal);
    }

    /// Submits a block request as the equivalent command (the request's id,
    /// arrival and priority are carried over).
    pub fn submit_request(&mut self, request: &BlockRequest) {
        self.submit_with_priority(
            request.id,
            HostCommand::from_request(request),
            request.arrival,
            request.priority,
        );
    }

    /// Pops the oldest posted completion, if any.
    pub fn poll(&mut self) -> Option<Completion> {
        self.completions.pop_front()
    }

    /// Pops every posted completion.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Number of commands submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        (self.submitted - self.completed) as usize
    }

    /// Number of commands waiting in the submission queue.
    pub fn pending_submissions(&self) -> usize {
        self.submissions.len()
    }

    /// Number of completions waiting to be polled.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Total commands ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Device side: consumes every pending submission.  The commands stay
    /// in the in-flight count until their completions are posted — devices
    /// call this only for sessions whose completions they are about to
    /// post ([`complete_session`] pairs the two).  Hosts abandoning
    /// commands use [`HostQueue::cancel_submissions`] instead.
    pub fn take_submissions(&mut self) -> Vec<SubmittedCommand> {
        self.submissions.drain(..).collect()
    }

    /// Host side: abandons every pending submission (e.g. after a failed
    /// serve rejected one of them), removing them from the in-flight count
    /// since no completion will ever be posted for them.
    pub fn cancel_submissions(&mut self) -> Vec<SubmittedCommand> {
        let cancelled: Vec<SubmittedCommand> = self.submissions.drain(..).collect();
        self.submitted -= cancelled.len() as u64;
        cancelled
    }

    /// Device side: posts one completion to the completion queue.
    pub fn post_completion(&mut self, completion: Completion) {
        self.completed += 1;
        self.completions.push_back(completion);
    }
}

/// One arbitrated command: which initiator queue it came from, plus the
/// submission itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArbitratedCommand {
    /// Index of the owning queue in the slice given to
    /// [`HostInterface::serve`].
    pub initiator: usize,
    /// Position of this command in its initiator's submission stream (used
    /// for fence ordering).
    pub seq: u64,
    /// The submitted command.
    pub submission: SubmittedCommand,
}

/// Merges every queue's pending submissions into one globally
/// arrival-ordered command list *without consuming them* — a session
/// consumes its submissions only when it completes (see
/// [`complete_session`]), so a serve that fails validation leaves every
/// initiator's commands queued.  Commands submitted at the same instant by
/// different initiators are arbitrated *round-robin*: the merge cycles
/// through the tied initiators, taking one command from each in turn, so
/// no initiator can starve another by submitting a burst.
pub fn arbitrate_round_robin(queues: &[HostQueue]) -> Vec<ArbitratedCommand> {
    let mut streams: Vec<VecDeque<SubmittedCommand>> =
        queues.iter().map(|q| q.submissions.clone()).collect();
    let mut seqs = vec![0u64; queues.len()];
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    // Rotating arbitration pointer: after serving initiator i, the next tie
    // is broken starting from initiator i+1.
    let mut rotor = 0usize;
    while out.len() < total {
        let earliest = streams
            .iter()
            .filter_map(|s| s.front().map(|c| c.arrival))
            .min()
            .expect("non-empty streams remain");
        // Pick, round-robin from the rotor, the next initiator whose head
        // command arrives at the earliest time.
        let n = streams.len();
        let initiator = (0..n)
            .map(|k| (rotor + k) % n)
            .find(|&i| streams[i].front().is_some_and(|c| c.arrival == earliest))
            .expect("some stream holds the earliest arrival");
        let submission = streams[initiator].pop_front().expect("head exists");
        out.push(ArbitratedCommand {
            initiator,
            seq: seqs[initiator],
            submission,
        });
        seqs[initiator] += 1;
        rotor = (initiator + 1) % n;
    }
    out
}

/// Posts completions back to their initiators' completion queues in
/// completion order (ties broken by arbitration order).
pub fn post_completions(queues: &mut [HostQueue], mut completed: Vec<(usize, Completion)>) {
    // Stable sort: completions finishing at the same instant post in
    // arbitration order.
    completed.sort_by_key(|&(_, c)| c.finish);
    for (initiator, completion) in completed {
        queues[initiator].post_completion(completion);
    }
}

/// Finishes a successful session: consumes every queue's pending
/// submissions (they were merged by [`arbitrate_round_robin`], which does
/// not drain) and posts the completions.  Device `serve` implementations
/// call this exactly once, after the whole session executed.
pub fn complete_session(queues: &mut [HostQueue], completed: Vec<(usize, Completion)>) {
    for queue in queues.iter_mut() {
        queue.take_submissions();
    }
    post_completions(queues, completed);
}

/// A device that speaks the queue-pair command protocol.
///
/// The provided [`serve`](HostInterface::serve) is a reference
/// implementation over [`BlockDevice::submit`]: commands are arbitrated
/// round-robin and served one at a time in arrival order, fences complete
/// when every earlier command of their initiator has (flush performs no
/// work), and object commands are rejected.  `Ssd` and `Hdd` override it to
/// feed the merged command stream through their event-driven controllers,
/// which is where queue depths, schedulers and idle-window cleaning live.
///
/// # Error semantics
///
/// The session is validated up front (bounds, object-command support); a
/// validation failure returns the failing command's error with **no**
/// submissions consumed and **no** completions posted — every initiator's
/// commands stay queued, so one initiator's malformed command never
/// destroys another initiator's traffic.  If the device nonetheless fails
/// mid-execution (e.g. the simulated FTL runs out of free blocks), the
/// serve aborts the same way, but device *state* may have advanced:
/// retrying replays the whole session against that state, as with any
/// aborted simulation run.  Fence ordering is scoped to the commands of
/// one `serve` call: commands served by an earlier call have already
/// completed from the protocol's point of view.
pub trait HostInterface: BlockDevice {
    /// Serves every submitted command in `queues`, posting completions to
    /// each initiator's completion side.
    fn serve(&mut self, queues: &mut [HostQueue]) -> Result<(), DeviceError> {
        let commands = arbitrate_round_robin(queues);
        // Validate the whole session before executing any of it.
        for cmd in &commands {
            let sub = cmd.submission;
            if sub.command.is_object_command() {
                return Err(DeviceError::Unsupported {
                    what: "object commands on a block device",
                });
            }
            if let Some(request) = sub.command.to_request(sub.id, sub.arrival, sub.priority) {
                self.check_bounds(&request)?;
            }
        }
        let mut last_finish: Vec<SimTime> = vec![SimTime::ZERO; queues.len()];
        let mut completed = Vec::with_capacity(commands.len());
        for cmd in commands {
            let sub = cmd.submission;
            let completion = match sub.command {
                HostCommand::Flush | HostCommand::Barrier => {
                    let at = sub.arrival.max(last_finish[cmd.initiator]);
                    Completion::ok(sub.id, sub.arrival, at, at)
                }
                ref c => {
                    let request = c
                        .to_request(sub.id, sub.arrival, sub.priority)
                        .expect("validated block data command");
                    self.submit(&request)?
                }
            };
            last_finish[cmd.initiator] = last_finish[cmd.initiator].max(completion.finish);
            completed.push((cmd.initiator, completion));
        }
        complete_session(queues, completed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceInfo;
    use ossd_sim::SimDuration;

    /// Fixed-service device used to exercise the default `serve`.
    struct FixedDevice {
        service: SimDuration,
        next_free: SimTime,
    }

    impl BlockDevice for FixedDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo {
                name: "fixed".into(),
                capacity_bytes: u64::MAX,
                supports_free: true,
            }
        }

        fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
            let start = request.arrival.max(self.next_free);
            let finish = if request.kind == BlockOpKind::Free {
                start
            } else {
                start + self.service
            };
            self.next_free = finish;
            Ok(Completion::ok(request.id, request.arrival, start, finish))
        }
    }

    impl HostInterface for FixedDevice {}

    fn fixed() -> FixedDevice {
        FixedDevice {
            service: SimDuration::from_micros(100),
            next_free: SimTime::ZERO,
        }
    }

    #[test]
    fn single_queue_commands_complete_in_order() {
        let mut dev = fixed();
        let mut q = HostQueue::new();
        q.submit(
            0,
            HostCommand::Read {
                range: ByteRange::new(0, 512),
            },
            SimTime::ZERO,
        );
        q.submit(
            1,
            HostCommand::Write {
                range: ByteRange::new(512, 512),
                hint: WriteHint::NONE,
            },
            SimTime::ZERO,
        );
        assert_eq!(q.pending_submissions(), 2);
        assert_eq!(q.in_flight(), 2);
        dev.serve(std::slice::from_mut(&mut q)).unwrap();
        assert_eq!(q.pending_submissions(), 0);
        assert_eq!(q.pending_completions(), 2);
        let a = q.poll().unwrap();
        let b = q.poll().unwrap();
        assert_eq!(a.request_id, 0);
        assert_eq!(b.request_id, 1);
        assert_eq!(b.finish, SimTime::from_micros(200));
        assert_eq!(q.in_flight(), 0);
        assert!(q.poll().is_none());
    }

    #[test]
    fn round_robin_arbitration_interleaves_tied_initiators() {
        let mut queues = vec![HostQueue::new(), HostQueue::new()];
        for id in 0..3u64 {
            queues[0].submit(
                id,
                HostCommand::Read {
                    range: ByteRange::new(0, 512),
                },
                SimTime::ZERO,
            );
            queues[1].submit(
                id,
                HostCommand::Read {
                    range: ByteRange::new(0, 512),
                },
                SimTime::ZERO,
            );
        }
        let merged = arbitrate_round_robin(&queues);
        let initiators: Vec<usize> = merged.iter().map(|c| c.initiator).collect();
        assert_eq!(initiators, vec![0, 1, 0, 1, 0, 1]);
        // Per-initiator submission order is preserved.
        let seqs0: Vec<u64> = merged
            .iter()
            .filter(|c| c.initiator == 0)
            .map(|c| c.seq)
            .collect();
        assert_eq!(seqs0, vec![0, 1, 2]);
    }

    #[test]
    fn arbitration_respects_arrival_order_across_initiators() {
        let mut queues = vec![HostQueue::new(), HostQueue::new()];
        queues[0].submit(0, HostCommand::Barrier, SimTime::from_micros(50));
        queues[1].submit(0, HostCommand::Barrier, SimTime::from_micros(10));
        queues[1].submit(1, HostCommand::Barrier, SimTime::from_micros(60));
        let merged = arbitrate_round_robin(&queues);
        let order: Vec<(usize, u64)> = merged
            .iter()
            .map(|c| (c.initiator, c.submission.arrival.as_nanos() / 1000))
            .collect();
        assert_eq!(order, vec![(1, 10), (0, 50), (1, 60)]);
    }

    #[test]
    fn fences_wait_for_their_initiators_earlier_commands() {
        let mut dev = fixed();
        let mut q = HostQueue::new();
        q.submit(
            0,
            HostCommand::Write {
                range: ByteRange::new(0, 512),
                hint: WriteHint::NONE,
            },
            SimTime::ZERO,
        );
        q.submit(1, HostCommand::Barrier, SimTime::ZERO);
        q.submit(2, HostCommand::Flush, SimTime::ZERO);
        dev.serve(std::slice::from_mut(&mut q)).unwrap();
        let write = q.poll().unwrap();
        let barrier = q.poll().unwrap();
        let flush = q.poll().unwrap();
        assert_eq!(barrier.request_id, 1);
        assert_eq!(barrier.start, write.finish);
        assert_eq!(barrier.finish, write.finish);
        assert_eq!(flush.finish, write.finish);
    }

    #[test]
    fn object_commands_are_rejected_by_block_devices() {
        let mut dev = fixed();
        let mut q = HostQueue::new();
        q.submit(
            0,
            HostCommand::ObjectCreate {
                object: 7,
                attrs: ObjectAttrs::default(),
            },
            SimTime::ZERO,
        );
        assert!(matches!(
            dev.serve(std::slice::from_mut(&mut q)),
            Err(DeviceError::Unsupported { .. })
        ));
    }

    #[test]
    fn failed_serve_consumes_nothing_and_posts_nothing() {
        // One initiator submits valid traffic, another a rejected command:
        // the serve fails as a whole, and the valid initiator's submission
        // must still be queued (nothing consumed, nothing completed), so a
        // bad neighbour cannot destroy its traffic.
        let mut dev = fixed();
        let mut queues = vec![HostQueue::new(), HostQueue::new()];
        queues[0].submit(
            0,
            HostCommand::Read {
                range: ByteRange::new(0, 512),
            },
            SimTime::ZERO,
        );
        queues[1].submit(0, HostCommand::ObjectDelete { object: 3 }, SimTime::ZERO);
        assert!(dev.serve(&mut queues).is_err());
        for q in &queues {
            assert_eq!(q.pending_submissions(), 1, "submissions must survive");
            assert_eq!(q.pending_completions(), 0, "nothing may complete");
            assert_eq!(q.in_flight(), 1);
        }
        // Cancelling the bad command lets the good one proceed, and the
        // cancelled queue's in-flight accounting returns to zero.
        queues[1].cancel_submissions();
        assert_eq!(queues[1].in_flight(), 0);
        dev.serve(&mut queues).unwrap();
        assert_eq!(queues[0].pending_completions(), 1);
        assert_eq!(queues[0].in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing arrival order")]
    fn out_of_order_submission_panics() {
        let mut q = HostQueue::new();
        q.submit(0, HostCommand::Barrier, SimTime::from_micros(10));
        q.submit(1, HostCommand::Barrier, SimTime::from_micros(5));
    }

    #[test]
    fn command_request_round_trip() {
        let req = BlockRequest::write(9, 4096, 8192, SimTime::from_micros(3))
            .with_priority(Priority::High);
        let cmd = HostCommand::from_request(&req);
        assert_eq!(cmd.range(), Some(ByteRange::new(4096, 8192)));
        let back = cmd.to_request(9, req.arrival, req.priority).unwrap();
        assert_eq!(back, req);
        assert!(HostCommand::Barrier
            .to_request(0, SimTime::ZERO, Priority::Normal)
            .is_none());
        assert!(HostCommand::Flush.is_fence());
        assert!(!cmd.is_fence());
        assert!(HostCommand::ObjectDelete { object: 1 }.is_object_command());
    }

    #[test]
    fn write_hint_and_attrs_helpers() {
        assert!(!WriteHint::NONE.is_hinted());
        assert!(WriteHint::with_temperature(StreamTemperature::Cold).is_hinted());
        assert_eq!(ObjectAttrs::high_priority().priority, Priority::High);
        let cold = ObjectAttrs::cold_read_only();
        assert!(cold.read_only);
        assert_eq!(cold.temperature, StreamTemperature::Cold);
        for t in [
            StreamTemperature::Hot,
            StreamTemperature::Warm,
            StreamTemperature::Cold,
        ] {
            assert_eq!(t.as_str().parse::<StreamTemperature>().unwrap(), t);
        }
        assert!("Tepid".parse::<StreamTemperature>().is_err());
    }
}
