//! Minimal JSON encoding/decoding for the trace format.
//!
//! Traces are flat JSON-lines records of unsigned integers and enum-name
//! strings (see [`crate::trace`]).  The workspace vendors this ~100-line
//! encoder/decoder instead of depending on an external JSON crate so the
//! simulators build hermetically; it intentionally supports only the subset
//! the trace format uses (no nesting, no floats, no booleans, no null).

use std::collections::BTreeMap;

/// A scalar value in a flat trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Scalar {
    /// An unsigned integer field (offsets, lengths, timestamps).
    Num(u64),
    /// A string field (enum variant names, trace names).
    Str(String),
}

/// Escapes a string into a quoted JSON string literal.
pub(crate) fn encode_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes a flat record as a JSON object with fields in the given order.
pub(crate) fn encode_object(fields: &[(&str, Scalar)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&encode_str(key));
        out.push(':');
        match value {
            Scalar::Num(n) => out.push_str(&n.to_string()),
            Scalar::Str(s) => out.push_str(&encode_str(s)),
        }
    }
    out.push('}');
    out
}

/// A cursor over the bytes of one JSON line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Option<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    /// Reads four hex digits at the cursor (the payload of a `\u` escape).
    fn parse_hex4(&mut self) -> Option<u32> {
        let hex = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()
    }

    fn parse_string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // UTF-16 surrogate pair: a high surrogate must
                            // be followed by an escaped low surrogate (the
                            // form serializers that ASCII-escape non-BMP
                            // characters emit).
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return None;
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return None;
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(combined)?);
                            } else {
                                out.push(char::from_u32(code)?);
                            }
                        }
                        _ => return None,
                    }
                }
                // Multi-byte UTF-8 sequences pass through unchanged.
                b => {
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let chunk = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Parses a line holding exactly one JSON string literal.
pub(crate) fn decode_str(line: &str) -> Option<String> {
    let mut c = Cursor::new(line);
    let s = c.parse_string()?;
    c.skip_ws();
    (c.pos == c.bytes.len()).then_some(s)
}

/// Parses a line holding one flat JSON object of string/number fields.
pub(crate) fn decode_object(line: &str) -> Option<BTreeMap<String, Scalar>> {
    let mut c = Cursor::new(line);
    c.eat(b'{')?;
    let mut out = BTreeMap::new();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            let key = c.parse_string()?;
            c.eat(b':')?;
            let value = match c.peek()? {
                b'"' => Scalar::Str(c.parse_string()?),
                _ => Scalar::Num(c.parse_number()?),
            };
            out.insert(key, value);
            match c.peek()? {
                b',' => {
                    c.pos += 1;
                }
                b'}' => {
                    c.pos += 1;
                    break;
                }
                _ => return None,
            }
        }
    }
    c.skip_ws();
    (c.pos == c.bytes.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip_with_escapes() {
        for s in ["plain", "has \"quotes\"", "tabs\tand\nnewlines", "païges ☃"] {
            assert_eq!(decode_str(&encode_str(s)).as_deref(), Some(s));
        }
        assert_eq!(decode_str("\"\\u0041\"").as_deref(), Some("A"));
        // Non-BMP characters arrive as UTF-16 surrogate pairs from
        // serializers that ASCII-escape their output (e.g. Python's
        // json.dumps default).
        assert_eq!(decode_str("\"\\ud83d\\ude00\"").as_deref(), Some("😀"));
        // Lone or malformed surrogates are rejected, not mangled.
        assert!(decode_str("\"\\ud83d\"").is_none());
        assert!(decode_str("\"\\ud83d\\u0041\"").is_none());
        assert!(decode_str("not json").is_none());
        assert!(decode_str("\"trailing\" junk").is_none());
    }

    #[test]
    fn object_roundtrip() {
        let fields = [
            ("at_micros", Scalar::Num(42)),
            ("kind", Scalar::Str("Read".to_string())),
        ];
        let line = encode_object(&fields);
        assert_eq!(line, r#"{"at_micros":42,"kind":"Read"}"#);
        let parsed = decode_object(&line).unwrap();
        assert_eq!(parsed.get("at_micros"), Some(&Scalar::Num(42)));
        assert_eq!(parsed.get("kind"), Some(&Scalar::Str("Read".to_string())));
    }

    #[test]
    fn object_tolerates_whitespace_and_rejects_garbage() {
        let parsed = decode_object(r#" { "a" : 1 , "b" : "x" } "#).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(decode_object(r#"{"a":}"#).is_none());
        assert!(decode_object(r#"{"a":1"#).is_none());
        assert!(decode_object(r#"{"a":1} trailing"#).is_none());
        assert_eq!(decode_object("{}").unwrap().len(), 0);
    }
}
