//! Host↔device storage interface shared by the HDD, SSD and object
//! simulators.
//!
//! The paper argues that the narrow block interface (reads and writes of
//! logical block numbers) hides too much from the device and too much from
//! the file system.  This crate defines both sides of that argument as one
//! *queue-pair command protocol* (see [`host`]): a [`HostCommand`]
//! vocabulary spanning plain block traffic, free notifications,
//! stream-temperature write hints, ordering fences and object management,
//! carried over per-initiator submission/completion queue pairs
//! ([`HostQueue`]) that any device implementing [`HostInterface`] serves
//! through its controller.
//!
//! ```text
//!  initiators ──► HostQueue (SQ/CQ) ──► round-robin ──► device controller
//!                 one pair each         arbitration      (event engine)
//! ```
//!
//! Layers on top of the transport:
//!
//! * [`BlockRequest`] / [`BlockOpKind`] / [`Priority`] — a single narrow
//!   block I/O; [`BlockDevice::submit`] is the depth-1 closed driver of the
//!   queue-pair transport.
//! * [`ByteRange`] — offset/length arithmetic with alignment helpers.
//! * [`trace`] — serializable command traces, including the `Free` records
//!   the informed-cleaning study depends on plus the hint/flush/barrier
//!   records of the richer protocol.
//! * [`replay`] — incremental enqueue-and-poll trace runners that collect
//!   latency (means and p50/p95/p99 percentiles per class) and throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod host;
mod json;
pub mod range;
pub mod replay;
pub mod request;
pub mod trace;

pub use device::{BlockDevice, DeviceError, DeviceInfo};
pub use host::{
    arbitrate_round_robin, complete_session, post_completions, ArbitratedCommand, HostCommand,
    HostInterface, HostQueue, ObjectAttrs, StreamTemperature, SubmittedCommand, WriteHint,
};
pub use range::ByteRange;
pub use replay::{replay_closed, replay_open, LatencyPercentiles, ReplayReport, ReportPercentiles};
pub use request::{
    BlockOpKind, BlockRequest, Completion, CompletionStatus, Priority, SECTOR_BYTES,
};
pub use trace::{Trace, TraceKind, TraceOp, TraceStats};
