//! Block-level storage interface shared by the HDD and SSD simulators.
//!
//! The paper argues that the narrow block interface (reads and writes of
//! logical block numbers) hides too much from the device and too much from
//! the file system.  This crate defines that interface as the simulators see
//! it — requests, priorities, free-space (TRIM-like) notifications, traces —
//! so that the richer object interface in `ossd-core` can be compared
//! against it on equal footing.
//!
//! * [`BlockRequest`] / [`BlockOpKind`] / [`Priority`] — a single I/O.
//! * [`ByteRange`] — offset/length arithmetic with alignment helpers.
//! * [`BlockDevice`] — the trait both simulators implement.
//! * [`trace`] — serializable traces of block operations, including the
//!   `Free` records the informed-cleaning study depends on.
//! * [`replay`] — a trace runner that collects latency and throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
mod json;
pub mod range;
pub mod replay;
pub mod request;
pub mod trace;

pub use device::{BlockDevice, DeviceError, DeviceInfo};
pub use range::ByteRange;
pub use replay::{replay_closed, replay_open, ReplayReport};
pub use request::{BlockOpKind, BlockRequest, Completion, Priority, SECTOR_BYTES};
pub use trace::{Trace, TraceOp, TraceStats};
