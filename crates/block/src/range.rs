//! Byte ranges with the alignment arithmetic the device-side write-merging
//! logic needs.

/// A half-open byte range `[offset, offset + len)` on a device's logical
/// address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl ByteRange {
    /// Creates a range.
    pub fn new(offset: u64, len: u64) -> Self {
        ByteRange { offset, len }
    }

    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `other` starts exactly where this range ends (so the two can
    /// be merged into one sequential access).
    pub fn is_followed_by(&self, other: &ByteRange) -> bool {
        self.end() == other.offset
    }

    /// Whether the two ranges overlap.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }

    /// Whether this range fully contains `other`.
    pub fn contains(&self, other: &ByteRange) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }

    /// Merges two ranges into their bounding range (callers should first
    /// check adjacency/overlap if a gap-free merge is required).
    pub fn union(&self, other: &ByteRange) -> ByteRange {
        let start = self.offset.min(other.offset);
        let end = self.end().max(other.end());
        ByteRange::new(start, end - start)
    }

    /// The range aligned outward to `unit`-byte boundaries (the smallest
    /// aligned range containing this one). Returns the range unchanged when
    /// `unit` is zero or one.
    pub fn align_outward(&self, unit: u64) -> ByteRange {
        if unit <= 1 || self.is_empty() {
            return *self;
        }
        let start = (self.offset / unit) * unit;
        let end = self.end().div_ceil(unit) * unit;
        ByteRange::new(start, end - start)
    }

    /// Index of the first `unit`-sized chunk touched by this range.
    pub fn first_chunk(&self, unit: u64) -> u64 {
        self.offset.checked_div(unit).unwrap_or(0)
    }

    /// Index of the last `unit`-sized chunk touched by this range (equal to
    /// `first_chunk` for ranges within one chunk); zero for empty ranges.
    pub fn last_chunk(&self, unit: u64) -> u64 {
        if unit == 0 || self.is_empty() {
            return self.first_chunk(unit);
        }
        (self.end() - 1) / unit
    }

    /// Number of `unit`-sized chunks touched by this range.
    pub fn chunks_touched(&self, unit: u64) -> u64 {
        if unit == 0 || self.is_empty() {
            return 0;
        }
        self.last_chunk(unit) - self.first_chunk(unit) + 1
    }

    /// Splits the range at `unit`-byte boundaries, yielding sub-ranges that
    /// each lie within a single chunk.
    pub fn split_by_chunk(&self, unit: u64) -> Vec<ByteRange> {
        if self.is_empty() {
            return Vec::new();
        }
        if unit == 0 {
            return vec![*self];
        }
        let mut out = Vec::new();
        let mut cursor = self.offset;
        let end = self.end();
        while cursor < end {
            let chunk_end = ((cursor / unit) + 1) * unit;
            let piece_end = chunk_end.min(end);
            out.push(ByteRange::new(cursor, piece_end - cursor));
            cursor = piece_end;
        }
        out
    }

    /// Whether the range starts and ends on `unit` boundaries.
    pub fn is_aligned_to(&self, unit: u64) -> bool {
        if unit <= 1 {
            return true;
        }
        self.offset.is_multiple_of(unit) && self.len.is_multiple_of(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = ByteRange::new(4096, 8192);
        assert_eq!(r.end(), 12288);
        assert!(!r.is_empty());
        assert!(ByteRange::new(0, 0).is_empty());
    }

    #[test]
    fn adjacency_and_overlap() {
        let a = ByteRange::new(0, 100);
        let b = ByteRange::new(100, 50);
        let c = ByteRange::new(120, 10);
        assert!(a.is_followed_by(&b));
        assert!(!a.is_followed_by(&c));
        assert!(!a.overlaps(&b));
        assert!(b.overlaps(&c));
        assert!(b.contains(&c));
        assert!(!c.contains(&b));
    }

    #[test]
    fn union_is_bounding_range() {
        let a = ByteRange::new(10, 10);
        let b = ByteRange::new(30, 5);
        assert_eq!(a.union(&b), ByteRange::new(10, 25));
        assert_eq!(b.union(&a), ByteRange::new(10, 25));
    }

    #[test]
    fn align_outward_snaps_to_unit() {
        let r = ByteRange::new(4100, 100);
        let a = r.align_outward(4096);
        assert_eq!(a, ByteRange::new(4096, 4096));
        let r = ByteRange::new(4095, 2);
        assert_eq!(r.align_outward(4096), ByteRange::new(0, 8192));
        // Degenerate units leave the range unchanged.
        assert_eq!(r.align_outward(0), r);
        assert_eq!(r.align_outward(1), r);
    }

    #[test]
    fn chunk_accounting() {
        let unit = 1 << 20; // 1 MB stripe
        let r = ByteRange::new(0, unit);
        assert_eq!(r.chunks_touched(unit), 1);
        let r2 = ByteRange::new(unit - 512, 1024);
        assert_eq!(r2.chunks_touched(unit), 2);
        assert_eq!(r2.first_chunk(unit), 0);
        assert_eq!(r2.last_chunk(unit), 1);
        assert_eq!(ByteRange::new(5, 0).chunks_touched(unit), 0);
    }

    #[test]
    fn split_by_chunk_covers_range_exactly() {
        let unit = 4096;
        let r = ByteRange::new(1000, 10_000);
        let parts = r.split_by_chunk(unit);
        assert_eq!(parts.iter().map(|p| p.len).sum::<u64>(), r.len);
        assert_eq!(parts.first().unwrap().offset, 1000);
        assert_eq!(parts.last().unwrap().end(), r.end());
        for p in &parts {
            assert_eq!(p.first_chunk(unit), p.last_chunk(unit));
        }
        assert!(ByteRange::new(0, 0).split_by_chunk(unit).is_empty());
        assert_eq!(r.split_by_chunk(0), vec![r]);
    }

    #[test]
    fn alignment_predicate() {
        assert!(ByteRange::new(8192, 4096).is_aligned_to(4096));
        assert!(!ByteRange::new(8192, 4000).is_aligned_to(4096));
        assert!(!ByteRange::new(100, 4096).is_aligned_to(4096));
        assert!(ByteRange::new(100, 37).is_aligned_to(1));
    }
}
