//! Trace replay over the queue-pair host interface, collecting the metrics
//! the paper reports: per-class response times, percentiles and bandwidths.
//!
//! Both replay modes are *incremental enqueue-and-poll* drivers of one
//! [`HostQueue`] session: each request is submitted into the queue pair,
//! the device serves it, and the completion is polled back out before the
//! next command is enqueued.

use ossd_sim::{LatencyStats, SimDuration, SimTime, Throughput};

use crate::device::DeviceError;
use crate::host::{HostInterface, HostQueue};
use crate::request::{BlockOpKind, BlockRequest, Completion};

/// p50/p95/p99/p99.9/p99.99 response times of one request class, in
/// milliseconds.  The deep-tail points only separate from `p99_ms` once a
/// class has ≥ 1000 (p99.9) / ≥ 10000 (p99.99) samples; below that the
/// nearest-rank estimate collapses onto the maximum, same as `p99_ms` does
/// under 100 samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Median response time.
    pub p50_ms: f64,
    /// 95th-percentile response time.
    pub p95_ms: f64,
    /// 99th-percentile response time.
    pub p99_ms: f64,
    /// 99.9th-percentile response time.
    pub p999_ms: f64,
    /// 99.99th-percentile response time.
    pub p9999_ms: f64,
}

impl LatencyPercentiles {
    /// Computes the percentiles of a latency collection (zeros when empty).
    pub fn of(stats: &LatencyStats) -> Self {
        LatencyPercentiles {
            p50_ms: stats.percentile(50.0).as_millis_f64(),
            p95_ms: stats.percentile(95.0).as_millis_f64(),
            p99_ms: stats.percentile(99.0).as_millis_f64(),
            p999_ms: stats.percentile(99.9).as_millis_f64(),
            p9999_ms: stats.percentile(99.99).as_millis_f64(),
        }
    }
}

/// Percentile summaries for every request class of a [`ReplayReport`] —
/// the tail-latency view the multi-initiator fairness experiments report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReportPercentiles {
    /// All data-transferring requests.
    pub all: LatencyPercentiles,
    /// Reads only.
    pub reads: LatencyPercentiles,
    /// Writes only.
    pub writes: LatencyPercentiles,
    /// High-priority (foreground) requests.
    pub high_priority: LatencyPercentiles,
    /// Normal-priority (background) requests.
    pub normal_priority: LatencyPercentiles,
}

/// Metrics collected while replaying a request stream.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Response times of every data-transferring request.
    pub all: LatencyStats,
    /// Response times of reads.
    pub reads: LatencyStats,
    /// Response times of writes.
    pub writes: LatencyStats,
    /// Response times of high-priority (foreground) requests.
    pub high_priority: LatencyStats,
    /// Response times of normal-priority (background) requests.
    pub normal_priority: LatencyStats,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Number of free notifications submitted.
    pub frees: u64,
    /// Requests that completed with a media error: the data stayed
    /// uncorrectable after every ECC read-retry.  Their (retry-laden)
    /// response times are still included in the latency statistics — the
    /// host waited for them.
    pub uncorrectable_reads: u64,
    /// Arrival of the first request.
    pub first_arrival: SimTime,
    /// Completion of the last request.
    pub last_finish: SimTime,
}

impl ReplayReport {
    /// Time from first arrival to last completion.
    pub fn makespan(&self) -> SimDuration {
        self.last_finish.saturating_since(self.first_arrival)
    }

    /// Bandwidth over the whole replay (reads plus writes) in MB/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        Throughput::from_totals(self.bytes_read + self.bytes_written, self.makespan())
            .megabytes_per_sec()
    }

    /// Read bandwidth in MB/s over the whole replay.
    pub fn read_bandwidth_mbps(&self) -> f64 {
        Throughput::from_totals(self.bytes_read, self.makespan()).megabytes_per_sec()
    }

    /// Write bandwidth in MB/s over the whole replay.
    pub fn write_bandwidth_mbps(&self) -> f64 {
        Throughput::from_totals(self.bytes_written, self.makespan()).megabytes_per_sec()
    }

    /// p50/p95/p99/p99.9/p99.99 response times per request class.
    pub fn percentiles(&self) -> ReportPercentiles {
        ReportPercentiles {
            all: LatencyPercentiles::of(&self.all),
            reads: LatencyPercentiles::of(&self.reads),
            writes: LatencyPercentiles::of(&self.writes),
            high_priority: LatencyPercentiles::of(&self.high_priority),
            normal_priority: LatencyPercentiles::of(&self.normal_priority),
        }
    }

    /// Records one completed request into the report.
    pub fn record(&mut self, req: &BlockRequest, completion: &Completion) {
        let response = completion.response_time();
        let finish = completion.finish;
        if !completion.is_ok() {
            self.uncorrectable_reads += 1;
        }
        if self.all.is_empty() || req.arrival < self.first_arrival {
            if self.all.is_empty() {
                self.first_arrival = req.arrival;
            } else {
                self.first_arrival = self.first_arrival.min(req.arrival);
            }
        }
        self.last_finish = self.last_finish.max(finish);
        match req.kind {
            BlockOpKind::Read => {
                self.bytes_read += req.len();
                self.reads.record(response);
            }
            BlockOpKind::Write => {
                self.bytes_written += req.len();
                self.writes.record(response);
            }
            BlockOpKind::Free => {
                self.frees += 1;
                return;
            }
        }
        self.all.record(response);
        if req.priority.is_high() {
            self.high_priority.record(response);
        } else {
            self.normal_priority.record(response);
        }
    }
}

/// Submits one request through a queue pair and returns its completion.
fn serve_one<D: HostInterface + ?Sized>(
    device: &mut D,
    queue: &mut HostQueue,
    request: &BlockRequest,
) -> Result<crate::request::Completion, DeviceError> {
    queue.submit_request(request);
    device.serve(std::slice::from_mut(queue))?;
    Ok(queue
        .poll()
        .expect("serve posts one completion per command"))
}

/// Replays requests with the arrival times they carry (an *open* arrival
/// process: requests arrive regardless of whether earlier ones finished).
///
/// Requests must be in non-decreasing arrival order — the [`BlockDevice`]
/// submission contract, now enforced loudly by the queue pair.  Sort
/// unordered traces first (e.g. [`crate::Trace::sort_by_time`]).
///
/// [`BlockDevice`]: crate::device::BlockDevice
pub fn replay_open<D: HostInterface>(
    device: &mut D,
    requests: &[BlockRequest],
) -> Result<ReplayReport, DeviceError> {
    let mut report = ReplayReport::default();
    let mut queue = HostQueue::new();
    for req in requests {
        let completion = serve_one(device, &mut queue, req)?;
        report.record(req, &completion);
    }
    Ok(report)
}

/// Replays requests back-to-back (*closed* loop with one outstanding
/// request): each request is issued the moment the previous one completes.
/// Arrival times carried by the requests are ignored except for the first.
/// This is how steady-state bandwidth (Table 2, Figure 2) is measured.
pub fn replay_closed<D: HostInterface>(
    device: &mut D,
    requests: &[BlockRequest],
) -> Result<ReplayReport, DeviceError> {
    let mut report = ReplayReport::default();
    let mut queue = HostQueue::new();
    let mut next_arrival = requests.first().map(|r| r.arrival).unwrap_or(SimTime::ZERO);
    let mut first_start: Option<SimTime> = None;
    for req in requests {
        let mut adjusted = *req;
        adjusted.arrival = next_arrival;
        let completion = serve_one(device, &mut queue, &adjusted)?;
        report.record(&adjusted, &completion);
        if first_start.is_none() {
            first_start = Some(completion.start);
        }
        next_arrival = completion.finish;
    }
    // The device may already have been busy when the first request was
    // issued (e.g. a measurement phase following a prefill phase); bandwidth
    // is measured from the moment the device actually started on this
    // request stream.
    if let Some(start) = first_start {
        report.first_arrival = report.first_arrival.max(start);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BlockDevice, DeviceInfo};
    use crate::request::{Completion, Priority};

    /// A device with a fixed service time per request and no parallelism.
    struct FixedDevice {
        service: SimDuration,
        next_free: SimTime,
    }

    impl FixedDevice {
        fn new(service: SimDuration) -> Self {
            FixedDevice {
                service,
                next_free: SimTime::ZERO,
            }
        }
    }

    impl BlockDevice for FixedDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo {
                name: "fixed".into(),
                capacity_bytes: u64::MAX,
                supports_free: true,
            }
        }

        fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
            let start = request.arrival.max(self.next_free);
            let finish = if request.kind == BlockOpKind::Free {
                start
            } else {
                start + self.service
            };
            self.next_free = finish;
            Ok(Completion::ok(request.id, request.arrival, start, finish))
        }
    }

    impl HostInterface for FixedDevice {}

    fn requests() -> Vec<BlockRequest> {
        vec![
            BlockRequest::write(0, 0, 1_000_000, SimTime::ZERO),
            BlockRequest::read(1, 0, 1_000_000, SimTime::ZERO).with_priority(Priority::High),
            BlockRequest::free(2, 0, 4096, SimTime::ZERO),
            BlockRequest::write(3, 1_000_000, 1_000_000, SimTime::ZERO),
        ]
    }

    #[test]
    fn closed_replay_bandwidth() {
        // 1 ms per request, three 1 MB transfers back-to-back = 3 MB in 3 ms
        // = 1000 MB/s.
        let mut dev = FixedDevice::new(SimDuration::from_millis(1));
        let report = replay_closed(&mut dev, &requests()).unwrap();
        assert_eq!(report.all.count(), 3);
        assert_eq!(report.frees, 1);
        assert_eq!(report.bytes_read, 1_000_000);
        assert_eq!(report.bytes_written, 2_000_000);
        assert_eq!(report.makespan(), SimDuration::from_millis(3));
        assert!((report.bandwidth_mbps() - 1000.0).abs() < 1.0);
        assert!((report.read_bandwidth_mbps() - 1000.0 / 3.0).abs() < 1.0);
        assert!((report.write_bandwidth_mbps() - 2000.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn open_replay_accumulates_queueing() {
        // All four requests arrive at t=0; with 1 ms service the third data
        // request finishes at 3 ms and saw 3 ms of response time.
        let mut dev = FixedDevice::new(SimDuration::from_millis(1));
        let report = replay_open(&mut dev, &requests()).unwrap();
        assert_eq!(report.all.count(), 3);
        assert_eq!(report.all.max(), SimDuration::from_millis(3));
        // Mean of 1, 2, 3 ms.
        assert!((report.all.mean_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn priority_classes_are_split() {
        let mut dev = FixedDevice::new(SimDuration::from_millis(1));
        let report = replay_open(&mut dev, &requests()).unwrap();
        assert_eq!(report.high_priority.count(), 1);
        assert_eq!(report.normal_priority.count(), 2);
        assert_eq!(report.reads.count(), 1);
        assert_eq!(report.writes.count(), 2);
    }

    #[test]
    fn uncorrectable_completions_are_counted() {
        use crate::request::CompletionStatus;
        let mut report = ReplayReport::default();
        let req = BlockRequest::read(0, 0, 4096, SimTime::ZERO);
        let ok = Completion::ok(0, SimTime::ZERO, SimTime::ZERO, SimTime::from_micros(10));
        report.record(&req, &ok);
        assert_eq!(report.uncorrectable_reads, 0);
        let failed = Completion {
            status: CompletionStatus::UncorrectableRead,
            ..ok
        };
        report.record(&req, &failed);
        assert_eq!(report.uncorrectable_reads, 1);
        // The failed read's response time still counts: the host waited.
        assert_eq!(report.reads.count(), 2);
    }

    #[test]
    fn empty_replay_is_well_defined() {
        let mut dev = FixedDevice::new(SimDuration::from_millis(1));
        let report = replay_open(&mut dev, &[]).unwrap();
        assert_eq!(report.all.count(), 0);
        assert_eq!(report.makespan(), SimDuration::ZERO);
        assert_eq!(report.bandwidth_mbps(), 0.0);
        let p = report.percentiles();
        assert_eq!(p.all.p99_ms, 0.0);
        assert_eq!(p.all.p999_ms, 0.0);
        assert_eq!(p.all.p9999_ms, 0.0);
    }

    #[test]
    fn percentiles_summarise_each_class() {
        let mut dev = FixedDevice::new(SimDuration::from_millis(1));
        let report = replay_open(&mut dev, &requests()).unwrap();
        let p = report.percentiles();
        // Responses are 1, 2, 3 ms; the median is 2 ms and the p99 is the
        // maximum.
        assert!((p.all.p50_ms - 2.0).abs() < 1e-9);
        assert!((p.all.p99_ms - 3.0).abs() < 1e-9);
        assert!(p.all.p50_ms <= p.all.p95_ms && p.all.p95_ms <= p.all.p99_ms);
        // With only 3 samples, the deep-tail points collapse onto the max.
        assert!((p.all.p999_ms - 3.0).abs() < 1e-9);
        assert!(p.all.p99_ms <= p.all.p999_ms && p.all.p999_ms <= p.all.p9999_ms);
        // The one high-priority read finished at 2 ms.
        assert!((p.high_priority.p99_ms - 2.0).abs() < 1e-9);
        assert!(p.reads.p50_ms > 0.0 && p.writes.p50_ms > 0.0);
    }
}
