//! Block I/O requests, priorities and completions.

use ossd_sim::{SimDuration, SimTime};

use crate::range::ByteRange;

/// Size of a logical sector (the LBN granularity of SCSI/ATA).
pub const SECTOR_BYTES: u64 = 512;

/// The kind of a block-level operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockOpKind {
    /// Read the addressed bytes.
    Read,
    /// Write the addressed bytes.
    Write,
    /// Notify the device that the addressed bytes no longer hold live data
    /// (the TRIM-style "free" notification used by informed cleaning).
    Free,
}

impl BlockOpKind {
    /// Whether the operation transfers data (reads and writes do, frees do
    /// not).
    pub fn transfers_data(self) -> bool {
        matches!(self, BlockOpKind::Read | BlockOpKind::Write)
    }

    /// The variant name used by the trace serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            BlockOpKind::Read => "Read",
            BlockOpKind::Write => "Write",
            BlockOpKind::Free => "Free",
        }
    }
}

impl std::str::FromStr for BlockOpKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Read" => Ok(BlockOpKind::Read),
            "Write" => Ok(BlockOpKind::Write),
            "Free" => Ok(BlockOpKind::Free),
            other => Err(format!("unknown block op kind {other:?}")),
        }
    }
}

/// Request priority as exposed by the host.
///
/// The paper's QoS experiment (§3.6) marks 10% of requests as high priority
/// ("foreground") and lets the SSD postpone cleaning while such requests are
/// outstanding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground request.
    High,
    /// Ordinary request.
    #[default]
    Normal,
}

impl Priority {
    /// Whether this is the high (foreground) priority.
    pub fn is_high(self) -> bool {
        matches!(self, Priority::High)
    }

    /// The variant name used by the trace serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "High",
            Priority::Normal => "Normal",
        }
    }
}

impl std::str::FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "High" => Ok(Priority::High),
            "Normal" => Ok(Priority::Normal),
            other => Err(format!("unknown priority {other:?}")),
        }
    }
}

/// One block-level request as submitted to a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRequest {
    /// Monotonically increasing request identifier (assigned by the
    /// submitter; echoed back in the completion).
    pub id: u64,
    /// What to do.
    pub kind: BlockOpKind,
    /// Which bytes to do it to.
    pub range: ByteRange,
    /// When the request arrives at the device.
    pub arrival: SimTime,
    /// Host-assigned priority.
    pub priority: Priority,
}

impl BlockRequest {
    /// Creates a read request.
    pub fn read(id: u64, offset: u64, len: u64, arrival: SimTime) -> Self {
        BlockRequest {
            id,
            kind: BlockOpKind::Read,
            range: ByteRange::new(offset, len),
            arrival,
            priority: Priority::Normal,
        }
    }

    /// Creates a write request.
    pub fn write(id: u64, offset: u64, len: u64, arrival: SimTime) -> Self {
        BlockRequest {
            id,
            kind: BlockOpKind::Write,
            range: ByteRange::new(offset, len),
            arrival,
            priority: Priority::Normal,
        }
    }

    /// Creates a free (TRIM) notification.
    pub fn free(id: u64, offset: u64, len: u64, arrival: SimTime) -> Self {
        BlockRequest {
            id,
            kind: BlockOpKind::Free,
            range: ByteRange::new(offset, len),
            arrival,
            priority: Priority::Normal,
        }
    }

    /// Returns the same request with the given priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Number of bytes addressed.
    pub fn len(&self) -> u64 {
        self.range.len
    }

    /// Whether the request addresses zero bytes.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Number of whole 512-byte sectors addressed (rounded up).
    pub fn sectors(&self) -> u64 {
        self.range.len.div_ceil(SECTOR_BYTES)
    }
}

/// The typed outcome a completion carries back to the host.
///
/// Device-side media failures that a real controller reports per command —
/// today, reads whose data stayed uncorrectable after every ECC retry —
/// surface here, on the completion, instead of aborting the serve: the
/// command still occupies the device for its full (retry-laden) service
/// time, other initiators' traffic is unaffected, and the host decides how
/// to recover.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CompletionStatus {
    /// The command succeeded.
    #[default]
    Ok,
    /// A read's data stayed uncorrectable after every ECC read-retry; the
    /// addressed bytes are lost.
    UncorrectableRead,
}

impl CompletionStatus {
    /// Whether the command succeeded.
    pub fn is_ok(self) -> bool {
        self == CompletionStatus::Ok
    }
}

/// The completion record a device returns for a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The request this completion answers.
    pub request_id: u64,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When the device started working on it.
    pub start: SimTime,
    /// When it finished.
    pub finish: SimTime,
    /// The typed outcome (success or a media error).
    pub status: CompletionStatus,
}

impl Completion {
    /// A successful completion with the given identity and timing.
    pub fn ok(request_id: u64, arrival: SimTime, start: SimTime, finish: SimTime) -> Self {
        Completion {
            request_id,
            arrival,
            start,
            finish,
            status: CompletionStatus::Ok,
        }
    }

    /// Whether the command succeeded.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }

    /// Total response time (queueing plus service).
    pub fn response_time(&self) -> SimDuration {
        self.finish.saturating_since(self.arrival)
    }

    /// Time spent waiting before service began.
    pub fn queue_wait(&self) -> SimDuration {
        self.start.saturating_since(self.arrival)
    }

    /// Time spent being serviced.
    pub fn service_time(&self) -> SimDuration {
        self.finish.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_range() {
        let t = SimTime::from_micros(3);
        let r = BlockRequest::read(1, 4096, 8192, t);
        assert_eq!(r.kind, BlockOpKind::Read);
        assert_eq!(r.range, ByteRange::new(4096, 8192));
        assert_eq!(r.arrival, t);
        assert_eq!(r.priority, Priority::Normal);
        let w = BlockRequest::write(2, 0, 512, t);
        assert_eq!(w.kind, BlockOpKind::Write);
        let f = BlockRequest::free(3, 0, 512, t);
        assert_eq!(f.kind, BlockOpKind::Free);
    }

    #[test]
    fn priority_builder() {
        let r = BlockRequest::read(1, 0, 512, SimTime::ZERO).with_priority(Priority::High);
        assert!(r.priority.is_high());
        assert!(!Priority::Normal.is_high());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn sector_rounding() {
        let r = BlockRequest::read(1, 0, 513, SimTime::ZERO);
        assert_eq!(r.sectors(), 2);
        let r = BlockRequest::read(1, 0, 512, SimTime::ZERO);
        assert_eq!(r.sectors(), 1);
        let r = BlockRequest::read(1, 0, 0, SimTime::ZERO);
        assert_eq!(r.sectors(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn kind_data_transfer() {
        assert!(BlockOpKind::Read.transfers_data());
        assert!(BlockOpKind::Write.transfers_data());
        assert!(!BlockOpKind::Free.transfers_data());
    }

    #[test]
    fn completion_timing_breakdown() {
        let c = Completion::ok(
            7,
            SimTime::from_micros(100),
            SimTime::from_micros(150),
            SimTime::from_micros(400),
        );
        assert_eq!(c.response_time(), SimDuration::from_micros(300));
        assert_eq!(c.queue_wait(), SimDuration::from_micros(50));
        assert_eq!(c.service_time(), SimDuration::from_micros(250));
        assert!(c.is_ok());
    }

    #[test]
    fn completion_status_defaults_to_ok() {
        assert_eq!(CompletionStatus::default(), CompletionStatus::Ok);
        assert!(CompletionStatus::Ok.is_ok());
        assert!(!CompletionStatus::UncorrectableRead.is_ok());
        let c = Completion {
            status: CompletionStatus::UncorrectableRead,
            ..Completion::ok(1, SimTime::ZERO, SimTime::ZERO, SimTime::ZERO)
        };
        assert!(!c.is_ok());
    }

    #[test]
    fn priority_and_kind_string_roundtrip() {
        for p in [Priority::High, Priority::Normal] {
            assert_eq!(p.as_str().parse::<Priority>().unwrap(), p);
        }
        for k in [BlockOpKind::Read, BlockOpKind::Write, BlockOpKind::Free] {
            assert_eq!(k.as_str().parse::<BlockOpKind>().unwrap(), k);
        }
        assert!("Bogus".parse::<Priority>().is_err());
        assert!("Bogus".parse::<BlockOpKind>().is_err());
    }
}
