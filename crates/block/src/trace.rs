//! Serializable block traces.
//!
//! The paper's informed-cleaning study (§3.5, Table 5) replays block-level
//! traces that contain read, write, and *block-free* operations collected
//! beneath a file system.  [`Trace`] is the in-memory and on-disk
//! representation of such traces: a list of [`TraceOp`]s with arrival times
//! relative to the start of the trace, serialized as JSON lines.

use std::io::{BufRead, Write};

use ossd_sim::SimTime;

use crate::json::{self, Scalar};
use crate::range::ByteRange;
use crate::request::{BlockOpKind, BlockRequest, Priority};

/// One record of a block trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Arrival time relative to the start of the trace, in microseconds.
    pub at_micros: u64,
    /// Operation kind.
    pub kind: BlockOpKind,
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Request priority (defaults to [`Priority::Normal`] when a serialized
    /// record omits the field).
    pub priority: Priority,
}

impl TraceOp {
    /// Converts the record into a [`BlockRequest`] with the given id.
    pub fn to_request(&self, id: u64) -> BlockRequest {
        BlockRequest {
            id,
            kind: self.kind,
            range: ByteRange::new(self.offset, self.len),
            arrival: SimTime::from_micros(self.at_micros),
            priority: self.priority,
        }
    }

    /// Serializes the record as one JSON line.
    fn to_json_line(self) -> String {
        json::encode_object(&[
            ("at_micros", Scalar::Num(self.at_micros)),
            ("kind", Scalar::Str(self.kind.as_str().to_string())),
            ("offset", Scalar::Num(self.offset)),
            ("len", Scalar::Num(self.len)),
            ("priority", Scalar::Str(self.priority.as_str().to_string())),
        ])
    }

    /// Parses a record from one JSON line.
    fn from_json_line(line: &str) -> Result<Self, String> {
        let fields =
            json::decode_object(line).ok_or_else(|| format!("malformed trace record {line:?}"))?;
        let num = |key: &str| -> Result<u64, String> {
            match fields.get(key) {
                Some(Scalar::Num(n)) => Ok(*n),
                _ => Err(format!("trace record missing numeric field {key:?}")),
            }
        };
        let kind = match fields.get("kind") {
            Some(Scalar::Str(s)) => s.parse::<BlockOpKind>()?,
            _ => return Err("trace record missing \"kind\"".to_string()),
        };
        let priority = match fields.get("priority") {
            Some(Scalar::Str(s)) => s.parse::<Priority>()?,
            None => Priority::default(),
            Some(Scalar::Num(_)) => return Err("\"priority\" must be a string".to_string()),
        };
        Ok(TraceOp {
            at_micros: num("at_micros")?,
            kind,
            offset: num("offset")?,
            len: num("len")?,
            priority,
        })
    }
}

/// Aggregate statistics of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Number of free notifications.
    pub frees: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Bytes freed.
    pub free_bytes: u64,
    /// Highest byte offset touched plus one (minimum device capacity).
    pub max_offset: u64,
    /// Number of high-priority operations.
    pub high_priority: u64,
}

/// A named sequence of trace operations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Human-readable trace name (e.g. `"postmark-5000"`).
    pub name: String,
    /// The operations, in arrival order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Converts the trace into submit-ready requests with sequential ids.
    pub fn to_requests(&self) -> Vec<BlockRequest> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| op.to_request(i as u64))
            .collect()
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for op in &self.ops {
            match op.kind {
                BlockOpKind::Read => {
                    s.reads += 1;
                    s.read_bytes += op.len;
                }
                BlockOpKind::Write => {
                    s.writes += 1;
                    s.write_bytes += op.len;
                }
                BlockOpKind::Free => {
                    s.frees += 1;
                    s.free_bytes += op.len;
                }
            }
            s.max_offset = s.max_offset.max(op.offset + op.len);
            if op.priority.is_high() {
                s.high_priority += 1;
            }
        }
        s
    }

    /// Whether arrival times are non-decreasing (devices require this).
    pub fn is_time_ordered(&self) -> bool {
        self.ops
            .windows(2)
            .all(|w| w[0].at_micros <= w[1].at_micros)
    }

    /// Sorts the operations by arrival time (stable, preserving the relative
    /// order of simultaneous operations).
    pub fn sort_by_time(&mut self) {
        self.ops.sort_by_key(|op| op.at_micros);
    }

    /// Serializes the trace as JSON lines: a header line with the name
    /// followed by one line per operation.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "{}", json::encode_str(&self.name))?;
        for op in &self.ops {
            writeln!(writer, "{}", op.to_json_line())?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`Trace::write_jsonl`].
    pub fn read_jsonl<R: BufRead>(reader: R) -> std::io::Result<Self> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut lines = reader.lines();
        let name: String = match lines.next() {
            Some(line) => {
                let line = line?;
                json::decode_str(&line)
                    .ok_or_else(|| invalid(format!("malformed trace header {line:?}")))?
            }
            None => String::new(),
        };
        let mut ops = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            ops.push(TraceOp::from_json_line(&line).map_err(invalid)?);
        }
        Ok(Trace { name, ops })
    }

    /// Returns a copy of the trace keeping only operations of `kind`.
    pub fn filter_kind(&self, kind: BlockOpKind) -> Trace {
        Trace {
            name: self.name.clone(),
            ops: self
                .ops
                .iter()
                .copied()
                .filter(|o| o.kind == kind)
                .collect(),
        }
    }

    /// Returns a copy of the trace with free notifications removed, which
    /// is how the "default SSD (without free-page information)" baseline of
    /// Table 5 is produced.
    pub fn without_frees(&self) -> Trace {
        Trace {
            name: format!("{}-no-free", self.name),
            ops: self
                .ops
                .iter()
                .copied()
                .filter(|o| o.kind != BlockOpKind::Free)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("sample");
        t.push(TraceOp {
            at_micros: 0,
            kind: BlockOpKind::Write,
            offset: 0,
            len: 4096,
            priority: Priority::Normal,
        });
        t.push(TraceOp {
            at_micros: 100,
            kind: BlockOpKind::Read,
            offset: 0,
            len: 4096,
            priority: Priority::High,
        });
        t.push(TraceOp {
            at_micros: 200,
            kind: BlockOpKind::Free,
            offset: 0,
            len: 4096,
            priority: Priority::Normal,
        });
        t
    }

    #[test]
    fn stats_aggregate_by_kind() {
        let t = sample_trace();
        let s = t.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.write_bytes, 4096);
        assert_eq!(s.free_bytes, 4096);
        assert_eq!(s.max_offset, 4096);
        assert_eq!(s.high_priority, 1);
    }

    #[test]
    fn to_requests_assigns_sequential_ids() {
        let t = sample_trace();
        let reqs = t.to_requests();
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].id, 0);
        assert_eq!(reqs[2].id, 2);
        assert_eq!(reqs[1].arrival, SimTime::from_micros(100));
        assert_eq!(reqs[1].priority, Priority::High);
        assert_eq!(reqs[2].kind, BlockOpKind::Free);
    }

    #[test]
    fn time_ordering_checks_and_sorting() {
        let mut t = sample_trace();
        assert!(t.is_time_ordered());
        t.push(TraceOp {
            at_micros: 50,
            kind: BlockOpKind::Read,
            offset: 8192,
            len: 512,
            priority: Priority::Normal,
        });
        assert!(!t.is_time_ordered());
        t.sort_by_time();
        assert!(t.is_time_ordered());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_empty_input() {
        let back = Trace::read_jsonl(std::io::BufReader::new(&b""[..])).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name, "");
    }

    #[test]
    fn filters() {
        let t = sample_trace();
        let frees = t.filter_kind(BlockOpKind::Free);
        assert_eq!(frees.len(), 1);
        let no_free = t.without_frees();
        assert_eq!(no_free.len(), 2);
        assert!(no_free.ops.iter().all(|o| o.kind != BlockOpKind::Free));
        assert!(no_free.name.contains("no-free"));
    }

    #[test]
    fn priority_default_when_missing_in_json() {
        // A record without the priority field should parse with Normal.
        let json = r#"{"at_micros":5,"kind":"Read","offset":0,"len":512}"#;
        let op = TraceOp::from_json_line(json).unwrap();
        assert_eq!(op.priority, Priority::Normal);
        assert_eq!(op.at_micros, 5);
        assert_eq!(op.kind, BlockOpKind::Read);
        // Malformed records are rejected, not silently defaulted.
        assert!(TraceOp::from_json_line(r#"{"at_micros":5}"#).is_err());
        assert!(TraceOp::from_json_line("not json").is_err());
    }
}
