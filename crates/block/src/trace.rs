//! Serializable command traces.
//!
//! The paper's informed-cleaning study (§3.5, Table 5) replays block-level
//! traces that contain read, write, and *block-free* operations collected
//! beneath a file system.  [`Trace`] is the in-memory and on-disk
//! representation of such traces: a list of [`TraceOp`]s with arrival times
//! relative to the start of the trace, serialized as JSON lines.
//!
//! Since the queue-pair redesign the trace format covers the full command
//! vocabulary of [`crate::host`]: data operations may carry a
//! stream-temperature hint, and `Flush`/`Barrier` records serialize the
//! ordering commands.  Unknown kinds, priorities or hints fail parsing
//! loudly — a record is never silently demoted to a read.

use std::io::{BufRead, Write};

use ossd_sim::SimTime;

use crate::host::{HostCommand, StreamTemperature, SubmittedCommand, WriteHint};
use crate::json::{self, Scalar};
use crate::range::ByteRange;
use crate::request::{BlockOpKind, BlockRequest, Priority};

/// The kind of a trace record: the block operations plus the ordering
/// commands of the queue-pair protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Read the addressed bytes.
    Read,
    /// Write the addressed bytes.
    Write,
    /// TRIM-style free notification.
    Free,
    /// Flush device-side write buffers (ordering fence).
    Flush,
    /// Ordering fence with no device work.
    Barrier,
}

impl TraceKind {
    /// The variant name used by the trace serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Read => "Read",
            TraceKind::Write => "Write",
            TraceKind::Free => "Free",
            TraceKind::Flush => "Flush",
            TraceKind::Barrier => "Barrier",
        }
    }

    /// The block-interface kind of a data record (`None` for the ordering
    /// commands, which the narrow block interface cannot express).
    pub fn block_kind(self) -> Option<BlockOpKind> {
        match self {
            TraceKind::Read => Some(BlockOpKind::Read),
            TraceKind::Write => Some(BlockOpKind::Write),
            TraceKind::Free => Some(BlockOpKind::Free),
            TraceKind::Flush | TraceKind::Barrier => None,
        }
    }

    /// Whether this record transfers or addresses data bytes.
    pub fn addresses_data(self) -> bool {
        self.block_kind().is_some()
    }
}

impl From<BlockOpKind> for TraceKind {
    fn from(kind: BlockOpKind) -> Self {
        match kind {
            BlockOpKind::Read => TraceKind::Read,
            BlockOpKind::Write => TraceKind::Write,
            BlockOpKind::Free => TraceKind::Free,
        }
    }
}

impl std::str::FromStr for TraceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Read" => Ok(TraceKind::Read),
            "Write" => Ok(TraceKind::Write),
            "Free" => Ok(TraceKind::Free),
            "Flush" => Ok(TraceKind::Flush),
            "Barrier" => Ok(TraceKind::Barrier),
            other => Err(format!("unknown trace op kind {other:?}")),
        }
    }
}

/// One record of a command trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Arrival time relative to the start of the trace, in microseconds.
    pub at_micros: u64,
    /// Operation kind.
    pub kind: TraceKind,
    /// Starting byte offset (0 for `Flush`/`Barrier`).
    pub offset: u64,
    /// Length in bytes (0 for `Flush`/`Barrier`).
    pub len: u64,
    /// Request priority (defaults to [`Priority::Normal`] when a serialized
    /// record omits the field).
    pub priority: Priority,
    /// Stream-temperature write hint ([`StreamTemperature::Warm`] — i.e. no
    /// hint — when a serialized record omits the field).  Meaningful on
    /// writes only.
    pub hint: StreamTemperature,
}

impl TraceOp {
    /// A record with normal priority and no hint.
    pub fn new(at_micros: u64, kind: TraceKind, offset: u64, len: u64) -> Self {
        TraceOp {
            at_micros,
            kind,
            offset,
            len,
            priority: Priority::Normal,
            hint: StreamTemperature::Warm,
        }
    }

    /// Returns the record with the given priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns the record with the given stream-temperature hint.
    pub fn with_hint(mut self, hint: StreamTemperature) -> Self {
        self.hint = hint;
        self
    }

    /// Converts a data record into a [`BlockRequest`] with the given id
    /// (`None` for `Flush`/`Barrier`, which the block interface cannot
    /// express — use [`TraceOp::to_command`] for full fidelity).
    pub fn to_request(&self, id: u64) -> Option<BlockRequest> {
        Some(BlockRequest {
            id,
            kind: self.kind.block_kind()?,
            range: ByteRange::new(self.offset, self.len),
            arrival: SimTime::from_micros(self.at_micros),
            priority: self.priority,
        })
    }

    /// Converts the record into a queue-pair command submission with the
    /// given correlation id.
    pub fn to_command(&self, id: u64) -> SubmittedCommand {
        let range = ByteRange::new(self.offset, self.len);
        let command = match self.kind {
            TraceKind::Read => HostCommand::Read { range },
            TraceKind::Write => HostCommand::Write {
                range,
                hint: WriteHint {
                    temperature: self.hint,
                },
            },
            TraceKind::Free => HostCommand::Free { range },
            TraceKind::Flush => HostCommand::Flush,
            TraceKind::Barrier => HostCommand::Barrier,
        };
        SubmittedCommand {
            id,
            command,
            arrival: SimTime::from_micros(self.at_micros),
            priority: self.priority,
        }
    }

    /// Serializes the record as one JSON line.
    fn to_json_line(self) -> String {
        let mut fields = vec![
            ("at_micros", Scalar::Num(self.at_micros)),
            ("kind", Scalar::Str(self.kind.as_str().to_string())),
            ("offset", Scalar::Num(self.offset)),
            ("len", Scalar::Num(self.len)),
            ("priority", Scalar::Str(self.priority.as_str().to_string())),
        ];
        if self.hint != StreamTemperature::Warm {
            fields.push(("hint", Scalar::Str(self.hint.as_str().to_string())));
        }
        json::encode_object(&fields)
    }

    /// Parses a record from one JSON line.
    fn from_json_line(line: &str) -> Result<Self, String> {
        let fields =
            json::decode_object(line).ok_or_else(|| format!("malformed trace record {line:?}"))?;
        let num = |key: &str| -> Result<u64, String> {
            match fields.get(key) {
                Some(Scalar::Num(n)) => Ok(*n),
                _ => Err(format!("trace record missing numeric field {key:?}")),
            }
        };
        let kind = match fields.get("kind") {
            Some(Scalar::Str(s)) => s.parse::<TraceKind>()?,
            _ => return Err("trace record missing \"kind\"".to_string()),
        };
        let priority = match fields.get("priority") {
            Some(Scalar::Str(s)) => s.parse::<Priority>()?,
            None => Priority::default(),
            Some(Scalar::Num(_)) => return Err("\"priority\" must be a string".to_string()),
        };
        let hint = match fields.get("hint") {
            Some(Scalar::Str(s)) => s.parse::<StreamTemperature>()?,
            None => StreamTemperature::Warm,
            Some(Scalar::Num(_)) => return Err("\"hint\" must be a string".to_string()),
        };
        Ok(TraceOp {
            at_micros: num("at_micros")?,
            kind,
            offset: num("offset")?,
            len: num("len")?,
            priority,
            hint,
        })
    }
}

/// Aggregate statistics of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Number of free notifications.
    pub frees: u64,
    /// Number of flush commands.
    pub flushes: u64,
    /// Number of barrier commands.
    pub barriers: u64,
    /// Number of writes carrying a non-default stream hint.
    pub hinted_writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Bytes freed.
    pub free_bytes: u64,
    /// Highest byte offset touched plus one (minimum device capacity).
    pub max_offset: u64,
    /// Number of high-priority operations.
    pub high_priority: u64,
}

/// A named sequence of trace operations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Human-readable trace name (e.g. `"postmark-5000"`).
    pub name: String,
    /// The operations, in arrival order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Converts the data operations into submit-ready requests with
    /// sequential ids.  `Flush`/`Barrier` records are *skipped* — the block
    /// interface cannot express them; use [`Trace::to_commands`] to replay
    /// a trace with full fidelity.
    pub fn to_requests(&self) -> Vec<BlockRequest> {
        self.ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| op.to_request(i as u64))
            .collect()
    }

    /// Converts every operation — data, hints, fences — into queue-pair
    /// command submissions with sequential ids.
    pub fn to_commands(&self) -> Vec<SubmittedCommand> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| op.to_command(i as u64))
            .collect()
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for op in &self.ops {
            match op.kind {
                TraceKind::Read => {
                    s.reads += 1;
                    s.read_bytes += op.len;
                }
                TraceKind::Write => {
                    s.writes += 1;
                    s.write_bytes += op.len;
                    if op.hint != StreamTemperature::Warm {
                        s.hinted_writes += 1;
                    }
                }
                TraceKind::Free => {
                    s.frees += 1;
                    s.free_bytes += op.len;
                }
                TraceKind::Flush => s.flushes += 1,
                TraceKind::Barrier => s.barriers += 1,
            }
            if op.kind.addresses_data() {
                s.max_offset = s.max_offset.max(op.offset + op.len);
            }
            if op.priority.is_high() {
                s.high_priority += 1;
            }
        }
        s
    }

    /// Whether arrival times are non-decreasing (devices require this).
    pub fn is_time_ordered(&self) -> bool {
        self.ops
            .windows(2)
            .all(|w| w[0].at_micros <= w[1].at_micros)
    }

    /// Sorts the operations by arrival time (stable, preserving the relative
    /// order of simultaneous operations).
    pub fn sort_by_time(&mut self) {
        self.ops.sort_by_key(|op| op.at_micros);
    }

    /// Serializes the trace as JSON lines: a header line with the name
    /// followed by one line per operation.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "{}", json::encode_str(&self.name))?;
        for op in &self.ops {
            writeln!(writer, "{}", op.to_json_line())?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`Trace::write_jsonl`].
    pub fn read_jsonl<R: BufRead>(reader: R) -> std::io::Result<Self> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut lines = reader.lines();
        let name: String = match lines.next() {
            Some(line) => {
                let line = line?;
                json::decode_str(&line)
                    .ok_or_else(|| invalid(format!("malformed trace header {line:?}")))?
            }
            None => String::new(),
        };
        let mut ops = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            ops.push(TraceOp::from_json_line(&line).map_err(invalid)?);
        }
        Ok(Trace { name, ops })
    }

    /// Returns a copy of the trace keeping only operations of `kind`.
    pub fn filter_kind(&self, kind: TraceKind) -> Trace {
        Trace {
            name: self.name.clone(),
            ops: self
                .ops
                .iter()
                .copied()
                .filter(|o| o.kind == kind)
                .collect(),
        }
    }

    /// Returns a copy of the trace with free notifications removed, which
    /// is how the "default SSD (without free-page information)" baseline of
    /// Table 5 is produced.
    pub fn without_frees(&self) -> Trace {
        Trace {
            name: format!("{}-no-free", self.name),
            ops: self
                .ops
                .iter()
                .copied()
                .filter(|o| o.kind != TraceKind::Free)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("sample");
        t.push(TraceOp::new(0, TraceKind::Write, 0, 4096));
        t.push(TraceOp::new(100, TraceKind::Read, 0, 4096).with_priority(Priority::High));
        t.push(TraceOp::new(200, TraceKind::Free, 0, 4096));
        t
    }

    fn command_trace() -> Trace {
        let mut t = sample_trace();
        t.push(TraceOp::new(300, TraceKind::Write, 4096, 4096).with_hint(StreamTemperature::Cold));
        t.push(TraceOp::new(400, TraceKind::Flush, 0, 0));
        t.push(TraceOp::new(500, TraceKind::Barrier, 0, 0));
        t
    }

    #[test]
    fn stats_aggregate_by_kind() {
        let t = command_trace();
        let s = t.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.hinted_writes, 1);
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.write_bytes, 8192);
        assert_eq!(s.free_bytes, 4096);
        assert_eq!(s.max_offset, 8192);
        assert_eq!(s.high_priority, 1);
    }

    #[test]
    fn to_requests_assigns_sequential_ids_and_skips_fences() {
        let t = command_trace();
        let reqs = t.to_requests();
        // Four data ops; the flush and barrier cannot cross the narrow
        // block interface.
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].id, 0);
        assert_eq!(reqs[2].id, 2);
        assert_eq!(reqs[1].arrival, SimTime::from_micros(100));
        assert_eq!(reqs[1].priority, Priority::High);
        assert_eq!(reqs[2].kind, BlockOpKind::Free);
    }

    #[test]
    fn to_commands_keeps_full_fidelity() {
        let t = command_trace();
        let cmds = t.to_commands();
        assert_eq!(cmds.len(), 6);
        assert_eq!(cmds[1].priority, Priority::High);
        match cmds[3].command {
            HostCommand::Write { hint, .. } => {
                assert_eq!(hint.temperature, StreamTemperature::Cold)
            }
            ref other => panic!("expected hinted write, got {other:?}"),
        }
        assert_eq!(cmds[4].command, HostCommand::Flush);
        assert_eq!(cmds[5].command, HostCommand::Barrier);
        assert_eq!(cmds[5].arrival, SimTime::from_micros(500));
    }

    #[test]
    fn time_ordering_checks_and_sorting() {
        let mut t = sample_trace();
        assert!(t.is_time_ordered());
        t.push(TraceOp::new(50, TraceKind::Read, 8192, 512));
        assert!(!t.is_time_ordered());
        t.sort_by_time();
        assert!(t.is_time_ordered());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn jsonl_roundtrip_with_hints_and_fences() {
        let t = command_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // Hints serialize only when present.
        assert_eq!(text.matches("\"hint\"").count(), 1);
        assert!(text.contains("\"Flush\""));
        assert!(text.contains("\"Barrier\""));
        let back = Trace::read_jsonl(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn jsonl_empty_input() {
        let back = Trace::read_jsonl(std::io::BufReader::new(&b""[..])).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name, "");
    }

    #[test]
    fn filters() {
        let t = sample_trace();
        let frees = t.filter_kind(TraceKind::Free);
        assert_eq!(frees.len(), 1);
        let no_free = t.without_frees();
        assert_eq!(no_free.len(), 2);
        assert!(no_free.ops.iter().all(|o| o.kind != TraceKind::Free));
        assert!(no_free.name.contains("no-free"));
    }

    #[test]
    fn priority_and_hint_default_when_missing_in_json() {
        // A record without priority/hint fields parses with the defaults.
        let json = r#"{"at_micros":5,"kind":"Read","offset":0,"len":512}"#;
        let op = TraceOp::from_json_line(json).unwrap();
        assert_eq!(op.priority, Priority::Normal);
        assert_eq!(op.hint, StreamTemperature::Warm);
        assert_eq!(op.at_micros, 5);
        assert_eq!(op.kind, TraceKind::Read);
        // Malformed records are rejected, not silently defaulted.
        assert!(TraceOp::from_json_line(r#"{"at_micros":5}"#).is_err());
        assert!(TraceOp::from_json_line("not json").is_err());
    }

    #[test]
    fn unknown_kinds_and_hints_fail_loudly() {
        let bad_kind = r#"{"at_micros":5,"kind":"Discard","offset":0,"len":512}"#;
        let err = TraceOp::from_json_line(bad_kind).unwrap_err();
        assert!(err.contains("Discard"), "error should name the kind: {err}");
        let bad_hint = r#"{"at_micros":5,"kind":"Write","offset":0,"len":512,"hint":"Tepid"}"#;
        assert!(TraceOp::from_json_line(bad_hint).is_err());
        let numeric_hint = r#"{"at_micros":5,"kind":"Write","offset":0,"len":512,"hint":3}"#;
        assert!(TraceOp::from_json_line(numeric_hint).is_err());
        // And the same through the file reader: a bad record poisons the
        // whole read instead of parsing as something else.
        let file = format!("\"trace\"\n{bad_kind}\n");
        assert!(Trace::read_jsonl(std::io::BufReader::new(file.as_bytes())).is_err());
    }

    #[test]
    fn trace_kind_conversions() {
        for k in [BlockOpKind::Read, BlockOpKind::Write, BlockOpKind::Free] {
            assert_eq!(TraceKind::from(k).block_kind(), Some(k));
        }
        assert_eq!(TraceKind::Flush.block_kind(), None);
        assert!(!TraceKind::Barrier.addresses_data());
        assert!(TraceKind::Write.addresses_data());
        for k in [
            TraceKind::Read,
            TraceKind::Write,
            TraceKind::Free,
            TraceKind::Flush,
            TraceKind::Barrier,
        ] {
            assert_eq!(k.as_str().parse::<TraceKind>().unwrap(), k);
        }
        assert!("Bogus".parse::<TraceKind>().is_err());
    }
}
