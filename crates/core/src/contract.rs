//! An executable version of the paper's Table 1: the "unwritten contract".
//!
//! Each term of the contract is turned into a measurable probe that runs
//! against a simulated device.  The report states, per term, whether the
//! device satisfies it, together with the metric the verdict is based on —
//! the same T/F summary the paper's Table 1 gives for Disk vs. SSD.

use ossd_block::{replay_closed, BlockDevice, BlockRequest, DeviceError, HostInterface};
use ossd_hdd::{Hdd, HddConfig};
use ossd_sim::SimTime;
use ossd_ssd::{Ssd, SsdConfig};

/// The six terms of the unwritten contract examined in §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContractTerm {
    /// Term 1: sequential accesses are much better than random accesses.
    SequentialFasterThanRandom,
    /// Term 2: distant LBNs lead to longer positioning times.
    DistantLbnsCostMore,
    /// Term 3: the logical address space delivers uniform bandwidth.
    InterchangeableAddressSpace,
    /// Term 4: data written equals data issued (no write amplification).
    NoWriteAmplification,
    /// Term 5: the media does not wear down.
    MediaDoesNotWear,
    /// Term 6: the device is passive, with little background activity.
    PassiveDevice,
}

impl ContractTerm {
    /// All terms in the order Table 1 lists them.
    pub fn all() -> [ContractTerm; 6] {
        [
            ContractTerm::SequentialFasterThanRandom,
            ContractTerm::DistantLbnsCostMore,
            ContractTerm::InterchangeableAddressSpace,
            ContractTerm::NoWriteAmplification,
            ContractTerm::MediaDoesNotWear,
            ContractTerm::PassiveDevice,
        ]
    }

    /// Short description used in reports.
    pub fn description(&self) -> &'static str {
        match self {
            ContractTerm::SequentialFasterThanRandom => {
                "Sequential accesses are much better than random accesses"
            }
            ContractTerm::DistantLbnsCostMore => "Distant LBNs lead to longer seek times",
            ContractTerm::InterchangeableAddressSpace => "LBN spaces can be interchanged",
            ContractTerm::NoWriteAmplification => "Data written is equal to data issued",
            ContractTerm::MediaDoesNotWear => "Media does not wear down",
            ContractTerm::PassiveDevice => "Storage devices are passive",
        }
    }
}

/// The verdict for one contract term on one device.
#[derive(Clone, Debug, PartialEq)]
pub struct TermVerdict {
    /// Which term was probed.
    pub term: ContractTerm,
    /// Whether the device satisfies the term.
    pub holds: bool,
    /// The measured quantity the verdict is based on.
    pub metric: f64,
    /// Human-readable explanation of the metric.
    pub evidence: String,
}

/// The full contract evaluation for one device.
#[derive(Clone, Debug, PartialEq)]
pub struct ContractReport {
    /// Device name.
    pub device: String,
    /// One verdict per contract term, in Table 1 order.
    pub verdicts: Vec<TermVerdict>,
}

impl ContractReport {
    /// The verdict for a specific term.
    pub fn verdict(&self, term: ContractTerm) -> Option<&TermVerdict> {
        self.verdicts.iter().find(|v| v.term == term)
    }

    /// Number of terms the device satisfies.
    pub fn satisfied_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.holds).count()
    }

    /// Renders the report as the `T`/`F` row of Table 1.
    pub fn as_table_row(&self) -> String {
        let marks: Vec<&str> = self
            .verdicts
            .iter()
            .map(|v| if v.holds { "T" } else { "F" })
            .collect();
        format!("{:<12} {}", self.device, marks.join("  "))
    }
}

/// Upper bound on the probed region (kept small so the probes are fast);
/// shrunk further when the device itself is smaller.
const PROBE_REGION: u64 = 16 * 1024 * 1024;
const PROBE_IO: u64 = 4096;

/// The probed region for a given device: at most [`PROBE_REGION`], at most
/// half the device, and 64 KB-aligned.
fn probe_region<D: BlockDevice>(device: &D) -> u64 {
    let cap = device.capacity_bytes();
    let region = PROBE_REGION.min(cap / 2);
    (region / (64 * 1024)).max(1) * 64 * 1024
}

fn sequential_requests(count: u64, size: u64, write: bool) -> Vec<BlockRequest> {
    (0..count)
        .map(|i| {
            if write {
                BlockRequest::write(i, i * size, size, SimTime::ZERO)
            } else {
                BlockRequest::read(i, i * size, size, SimTime::ZERO)
            }
        })
        .collect()
}

fn scattered_requests(count: u64, size: u64, span: u64, write: bool) -> Vec<BlockRequest> {
    (0..count)
        .map(|i| {
            let slot = (i * 2_654_435_761) % (span / size).max(1);
            let offset = slot * size;
            if write {
                BlockRequest::write(i, offset, size, SimTime::ZERO)
            } else {
                BlockRequest::read(i, offset, size, SimTime::ZERO)
            }
        })
        .collect()
}

fn bandwidth_of<D: HostInterface>(
    device: &mut D,
    requests: &[BlockRequest],
) -> Result<f64, DeviceError> {
    Ok(replay_closed(device, requests)?.bandwidth_mbps())
}

/// Probes terms 1–3 on any block device (they only need the block
/// interface).  Returns (term1, term2, term3) verdicts.
fn probe_generic<D: HostInterface>(device: &mut D) -> Result<Vec<TermVerdict>, DeviceError> {
    let region = probe_region(device);
    let capacity = device.capacity_bytes();

    // Term 1: sequential vs random bandwidth.
    let prefill = sequential_requests(region / (64 * 1024), 64 * 1024, true);
    replay_closed(device, &prefill)?;
    let rand_ops = (region / PROBE_IO).min(512);
    let seq = bandwidth_of(device, &sequential_requests(rand_ops, PROBE_IO, false))?;
    let rand = bandwidth_of(
        device,
        &scattered_requests(rand_ops, PROBE_IO, region, false),
    )?;
    let ratio = if rand > 0.0 {
        seq / rand
    } else {
        f64::INFINITY
    };
    let term1 = TermVerdict {
        term: ContractTerm::SequentialFasterThanRandom,
        holds: ratio >= 10.0,
        metric: ratio,
        evidence: format!("sequential/random read bandwidth ratio = {ratio:.1}"),
    };

    // Term 2: near vs far LBN jumps.  After positioning at a low LBN,
    // compare the latency of a read 64 KB away with a read at the far end
    // of the device's address space.
    let mut near_total = 0.0;
    let mut far_total = 0.0;
    let samples = 64u64;
    for i in 0..samples {
        let base = (i * 333_667) % (region / 2);
        let anchor = BlockRequest::read(1000 + i * 4, base, PROBE_IO, SimTime::ZERO);
        let a = device.submit(&anchor)?;
        let near = BlockRequest::read(1001 + i * 4, base + 64 * 1024, PROBE_IO, a.finish);
        let n = device.submit(&near)?;
        near_total += n.response_time().as_micros_f64();
        let anchor2 = BlockRequest::read(1002 + i * 4, base, PROBE_IO, n.finish);
        let a2 = device.submit(&anchor2)?;
        let far_offset = capacity - PROBE_IO - (base % region);
        let far = BlockRequest::read(1003 + i * 4, far_offset, PROBE_IO, a2.finish);
        let f = device.submit(&far)?;
        far_total += f.response_time().as_micros_f64();
    }
    let distance_ratio = if near_total > 0.0 {
        far_total / near_total
    } else {
        1.0
    };
    let term2 = TermVerdict {
        term: ContractTerm::DistantLbnsCostMore,
        holds: distance_ratio >= 1.5,
        metric: distance_ratio,
        evidence: format!("far-jump/near-jump latency ratio = {distance_ratio:.2}"),
    };

    // Term 3: bandwidth at the start vs the end of the address space.
    let tail_span = region.min(capacity / 4);
    let tail_ops = (tail_span / (64 * 1024)).max(1);
    let tail_base = capacity - tail_ops * 64 * 1024;
    let head = bandwidth_of(device, &sequential_requests(tail_ops, 64 * 1024, false))?;
    let tail_reqs: Vec<BlockRequest> = (0..tail_ops)
        .map(|i| BlockRequest::read(i, tail_base + i * 64 * 1024, 64 * 1024, SimTime::ZERO))
        .collect();
    // The tail region may be unwritten on an SSD; write it first so both
    // probes read real data.
    let tail_fill: Vec<BlockRequest> = tail_reqs
        .iter()
        .map(|r| BlockRequest::write(r.id + 5000, r.range.offset, r.range.len, SimTime::ZERO))
        .collect();
    replay_closed(device, &tail_fill)?;
    let tail = bandwidth_of(device, &tail_reqs)?;
    let uniformity = if head > 0.0 { tail / head } else { 1.0 };
    let term3 = TermVerdict {
        term: ContractTerm::InterchangeableAddressSpace,
        holds: (0.8..=1.25).contains(&uniformity),
        metric: uniformity,
        evidence: format!("inner/outer sequential bandwidth ratio = {uniformity:.2}"),
    };
    Ok(vec![term1, term2, term3])
}

/// Evaluates the contract against a simulated SSD.
pub fn evaluate_ssd(config: SsdConfig) -> Result<ContractReport, DeviceError> {
    let mut ssd = Ssd::new(config).map_err(DeviceError::from)?;
    let name = ssd.info().name.clone();
    let mut verdicts = probe_generic(&mut ssd)?;

    // Term 4: write amplification measured by the FTL after random
    // overwrite churn.
    let churn = scattered_requests(4096, PROBE_IO, probe_region(&ssd), true);
    replay_closed(&mut ssd, &churn)?;
    let wa = ssd.stats().write_amplification().max(
        // Sub-page and sub-stripe writes also amplify through RMW reads.
        (ssd.stats().ftl.pages_read_host + ssd.stats().ftl.pages_programmed_host) as f64
            / ssd.stats().ftl.host_writes.max(1) as f64,
    );
    verdicts.push(TermVerdict {
        term: ContractTerm::NoWriteAmplification,
        holds: wa <= 1.1,
        metric: wa,
        evidence: format!("write amplification after random churn = {wa:.2}"),
    });

    // Term 5: erase-cycle wear recorded by the flash array.
    let wear = ssd.ftl_stats();
    let erases = wear.gc_blocks_erased + ssd.stats().ftl.gc_blocks_erased;
    let total_erases = erases.max(if ssd.stats().ftl.host_writes > 0 {
        1
    } else {
        0
    });
    verdicts.push(TermVerdict {
        term: ContractTerm::MediaDoesNotWear,
        holds: false,
        metric: total_erases as f64,
        evidence: format!(
            "flash blocks endure bounded erase cycles; {total_erases} GC erases observed"
        ),
    });

    // Term 6: background (cleaning/wear-leveling) activity fraction.
    let stats = ssd.stats();
    let background = stats.background_busy().as_secs_f64();
    let host = stats.host_busy.as_secs_f64();
    let fraction = if host + background > 0.0 {
        background / (host + background)
    } else {
        0.0
    };
    verdicts.push(TermVerdict {
        term: ContractTerm::PassiveDevice,
        holds: fraction < 0.01,
        metric: fraction,
        evidence: format!("background activity fraction = {:.1}%", fraction * 100.0),
    });

    Ok(ContractReport {
        device: name,
        verdicts,
    })
}

/// Evaluates the contract against a simulated disk.
pub fn evaluate_hdd(config: HddConfig) -> Result<ContractReport, DeviceError> {
    let mut hdd = Hdd::new(config);
    let name = hdd.info().name.clone();
    let mut verdicts = probe_generic(&mut hdd)?;
    // Term 4: a disk writes exactly what it is told to write.
    verdicts.push(TermVerdict {
        term: ContractTerm::NoWriteAmplification,
        holds: true,
        metric: 1.0,
        evidence: "magnetic media overwrites in place; amplification = 1.0".to_string(),
    });
    // Term 5: magnetic media has no erase-cycle limit.
    verdicts.push(TermVerdict {
        term: ContractTerm::MediaDoesNotWear,
        holds: true,
        metric: 0.0,
        evidence: "no erase-cycle wear mechanism".to_string(),
    });
    // Term 6: a single disk performs no autonomous background work in this
    // model.
    verdicts.push(TermVerdict {
        term: ContractTerm::PassiveDevice,
        holds: true,
        metric: 0.0,
        evidence: "no background activity".to_string(),
    });
    Ok(ContractReport {
        device: name,
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_ftl::FtlConfig;
    use ossd_ssd::MappingKind;

    fn small_ssd_config(mapping: MappingKind) -> SsdConfig {
        // ~67 MB page-mapped device: large enough for the 16 MB probes,
        // small enough for unit tests.
        let mut config = SsdConfig::tiny_page_mapped();
        config.geometry.blocks_per_plane = 128;
        config.geometry.packages = 4;
        config.mapping = mapping;
        config.gangs = 2;
        config.ftl = FtlConfig::default().with_overprovisioning(0.1);
        config
    }

    #[test]
    fn term_list_and_descriptions() {
        assert_eq!(ContractTerm::all().len(), 6);
        for term in ContractTerm::all() {
            assert!(!term.description().is_empty());
        }
    }

    #[test]
    fn hdd_satisfies_the_disk_contract() {
        let report = evaluate_hdd(HddConfig::default()).unwrap();
        assert_eq!(report.verdicts.len(), 6);
        // Terms 1, 2, 4, 5, 6 hold on a disk; term 3 fails because of zoned
        // recording.
        assert!(
            report
                .verdict(ContractTerm::SequentialFasterThanRandom)
                .unwrap()
                .holds
        );
        assert!(
            report
                .verdict(ContractTerm::DistantLbnsCostMore)
                .unwrap()
                .holds
        );
        assert!(
            report
                .verdict(ContractTerm::MediaDoesNotWear)
                .unwrap()
                .holds
        );
        assert!(report.verdict(ContractTerm::PassiveDevice).unwrap().holds);
        assert!(
            report
                .verdict(ContractTerm::NoWriteAmplification)
                .unwrap()
                .holds
        );
        assert!(report.satisfied_count() >= 5);
        assert!(report.as_table_row().contains('T'));
    }

    #[test]
    fn page_mapped_ssd_breaks_the_contract() {
        let report = evaluate_ssd(small_ssd_config(MappingKind::PageMapped)).unwrap();
        assert_eq!(report.verdicts.len(), 6);
        // Term 1 fails: sequential is no longer much better than random.
        assert!(
            !report
                .verdict(ContractTerm::SequentialFasterThanRandom)
                .unwrap()
                .holds
        );
        // Term 2 fails: LBN distance does not matter.
        assert!(
            !report
                .verdict(ContractTerm::DistantLbnsCostMore)
                .unwrap()
                .holds
        );
        // Term 5 always fails: flash wears out.
        assert!(
            !report
                .verdict(ContractTerm::MediaDoesNotWear)
                .unwrap()
                .holds
        );
        assert!(report.satisfied_count() < 6);
    }

    #[test]
    fn stripe_mapped_ssd_shows_write_amplification() {
        let config = SsdConfig {
            mapping: MappingKind::StripeMapped {
                stripe_bytes: 64 * 1024,
                coalesce: true,
            },
            ..small_ssd_config(MappingKind::PageMapped)
        };
        let report = evaluate_ssd(config).unwrap();
        let wa = report.verdict(ContractTerm::NoWriteAmplification).unwrap();
        assert!(!wa.holds, "random sub-stripe churn must amplify writes");
        assert!(wa.metric > 1.1);
    }
}
