//! Figure 2: write amplification on a low-end striped SSD — bandwidth
//! against write size shows a saw-tooth whose period is the stripe size.
//!
//! The paper measured the effect on S2slc, whose stripe (logical page) is
//! 1 MB: bandwidth peaks when the write size is a multiple of the stripe
//! size and drops just past each multiple, because the trailing partial
//! stripe forces a read-modify-write of the whole stripe.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{SimDuration, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

use super::Scale;

/// The stripe size of the modelled device (1 MB, as on S2slc).
pub const STRIPE_BYTES: u64 = 1024 * 1024;

/// One point of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure2Point {
    /// Write size in megabytes.
    pub write_mb: f64,
    /// Achieved bandwidth in MB/s.
    pub bandwidth_mbps: f64,
}

fn device_config(scale: Scale) -> SsdConfig {
    SsdConfig {
        name: "figure2-s2slc-like".to_string(),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.bytes(128, 512) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming {
            bus_bytes_per_sec: 40_000_000,
            ..FlashTiming::slc()
        },
        mapping: MappingKind::StripeMapped {
            stripe_bytes: STRIPE_BYTES,
            coalesce: true,
        },
        ftl: FtlConfig::default(),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(30),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 100_000_000,
    }
}

/// Measures the bandwidth achieved by issuing `bursts` independent writes of
/// `write_bytes` each, every burst starting on a stripe boundary (as a file
/// system extent allocation would place a fresh file).  The region has been
/// written before, so partial stripes pay the read-modify-write.
fn measure_write_size(
    scale: Scale,
    write_bytes: u64,
    bursts: u64,
) -> Result<Figure2Point, DeviceError> {
    let mut ssd = Ssd::new(device_config(scale)).map_err(DeviceError::from)?;
    let stride = write_bytes.div_ceil(STRIPE_BYTES) * STRIPE_BYTES;
    let region = stride * bursts;

    // Prefill the region stripe-aligned so every stripe holds old data.
    let mut id = 0u64;
    let mut offset = 0u64;
    while offset < region {
        ssd.submit(&BlockRequest::write(
            id,
            offset,
            STRIPE_BYTES,
            SimTime::ZERO,
        ))?;
        id += 1;
        offset += STRIPE_BYTES;
    }
    let start = ssd.flush(SimTime::ZERO).map_err(DeviceError::from)?;

    // Measured phase: closed-loop bursts of the requested size.
    let mut arrival = start;
    let first_arrival = arrival;
    for burst in 0..bursts {
        let req = BlockRequest::write(id, burst * stride, write_bytes, arrival);
        id += 1;
        let completion = ssd.submit(&req)?;
        arrival = completion.finish;
    }
    let end = ssd.flush(arrival).map_err(DeviceError::from)?;
    let elapsed = end.saturating_since(first_arrival).as_secs_f64();
    let bytes = write_bytes * bursts;
    Ok(Figure2Point {
        write_mb: write_bytes as f64 / 1e6,
        bandwidth_mbps: if elapsed > 0.0 {
            bytes as f64 / 1e6 / elapsed
        } else {
            0.0
        },
    })
}

/// Runs the Figure 2 sweep: write sizes from 0.25 MB (0.5 MB at quick
/// scale) up to 9 MB.
pub fn run(scale: Scale) -> Result<Vec<Figure2Point>, DeviceError> {
    let step = scale.bytes(512 * 1024, 256 * 1024);
    let bursts = scale.count(4, 8) as u64;
    let max = 9 * 1024 * 1024u64;
    let mut points = Vec::new();
    let mut size = step;
    while size <= max {
        points.push(measure_write_size(scale, size, bursts)?);
        size += step;
    }
    Ok(points)
}

/// Convenience: the bandwidth at (approximately) the given write size.
pub fn bandwidth_at(points: &[Figure2Point], mb: f64) -> Option<f64> {
    points
        .iter()
        .min_by(|a, b| {
            (a.write_mb - mb)
                .abs()
                .partial_cmp(&(b.write_mb - mb).abs())
                .expect("write sizes are finite")
        })
        .map(|p| p.bandwidth_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saw_tooth_pattern_appears() {
        let points = run(Scale::Quick).unwrap();
        assert!(points.len() >= 16);
        // Bandwidth must rise towards the 1 MB stripe size…
        let half = bandwidth_at(&points, 0.5).unwrap();
        let full = bandwidth_at(&points, 1.0).unwrap();
        assert!(
            full > 1.3 * half,
            "1 MB ({full:.1} MB/s) should beat 0.5 MB ({half:.1} MB/s)"
        );
        // …drop just past it…
        let just_past = bandwidth_at(&points, 1.5).unwrap();
        assert!(
            just_past < full,
            "1.5 MB ({just_past:.1}) should dip below 1 MB ({full:.1})"
        );
        // …and recover at the next multiple.
        let two = bandwidth_at(&points, 2.0).unwrap();
        assert!(
            two > just_past,
            "2 MB ({two:.1}) should recover above 1.5 MB ({just_past:.1})"
        );
        // The saw-tooth amplitude decays as the write grows.
        let eight = bandwidth_at(&points, 8.0).unwrap();
        let eight_and_half = bandwidth_at(&points, 8.5).unwrap();
        let early_dip = (full - just_past) / full;
        let late_dip = (eight - eight_and_half).max(0.0) / eight;
        assert!(
            late_dip < early_dip,
            "dip at 8 MB ({late_dip:.2}) should be smaller than at 1 MB ({early_dip:.2})"
        );
    }
}
