//! Figure 3 and Table 6: priority-aware cleaning.
//!
//! The paper evaluates a 32 GB SSD with synthetic open arrivals
//! (inter-arrival uniform in 0–0.1 ms), 10% of requests marked high
//! priority (foreground), cleaning thresholds at 5% (low) and 2%
//! (critical) of free pages, and the write percentage swept from 20% to
//! 80%.  Priority-aware cleaning postpones garbage collection while
//! foreground requests are queued, improving their response time by ≈10%
//! once writes are frequent enough for cleaning to matter, at the cost of
//! the background requests.

use ossd_block::{BlockDevice, BlockRequest, Completion, DeviceError, Priority};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{CleaningMode, FtlConfig};
use ossd_sim::{improvement_percent, SimDuration, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_workload::SyntheticConfig;

use super::Scale;

/// One point of Figure 3 (one write percentage).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure3Point {
    /// Percentage of writes in the workload.
    pub write_pct: u32,
    /// Mean foreground (high-priority) response time, priority-agnostic
    /// cleaning (ms).
    pub agnostic_foreground_ms: f64,
    /// Mean background response time, priority-agnostic cleaning (ms).
    pub agnostic_background_ms: f64,
    /// Mean foreground response time, priority-aware cleaning (ms).
    pub aware_foreground_ms: f64,
    /// Mean background response time, priority-aware cleaning (ms).
    pub aware_background_ms: f64,
}

impl Figure3Point {
    /// Foreground response-time improvement of priority-aware over
    /// priority-agnostic cleaning (the rows of Table 6).
    pub fn improvement_pct(&self) -> f64 {
        improvement_percent(self.agnostic_foreground_ms, self.aware_foreground_ms)
    }
}

fn device_config(scale: Scale, mode: CleaningMode) -> SsdConfig {
    SsdConfig {
        name: format!("figure3-{mode:?}"),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.bytes(32, 96) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.10)
            .with_watermarks(0.05, 0.02)
            .with_cleaning_mode(mode),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 4,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Sequentially fills three quarters of the device's logical space.  The
/// measured phase then starts with a modest cushion of free pages above the
/// low watermark: read-heavy runs never reach the watermark (so cleaning
/// stays out of the picture, as in the paper's 20%-writes point), while
/// write-heavy runs consume the cushion early and spend most of the run in
/// the full-device regime where cleaning matters (§3.6).
fn prefill(ssd: &mut Ssd) -> Result<SimTime, DeviceError> {
    let capacity = ssd.capacity_bytes() * 3 / 4;
    let chunk = 256 * 1024;
    let mut finish = SimTime::ZERO;
    let mut id = 0;
    let mut offset = 0;
    while offset + chunk <= capacity {
        let c = ssd.submit(&BlockRequest::write(id, offset, chunk, SimTime::ZERO))?;
        finish = c.finish;
        id += 1;
        offset += chunk;
    }
    Ok(finish)
}

fn mean_ms(completions: &[Completion], requests: &[BlockRequest], priority: Priority) -> f64 {
    let mut total = 0.0;
    let mut count = 0u64;
    for (c, r) in completions.iter().zip(requests) {
        if r.priority == priority {
            total += c.response_time().as_millis_f64();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn run_point(scale: Scale, write_pct: u32) -> Result<Figure3Point, DeviceError> {
    let count = scale.count(12_000, 40_000);
    let mut out = [(0.0, 0.0); 2];
    for (i, mode) in [CleaningMode::PriorityAgnostic, CleaningMode::PriorityAware]
        .iter()
        .enumerate()
    {
        let mut ssd = Ssd::new(device_config(scale, *mode)).map_err(DeviceError::from)?;
        let capacity = ssd.capacity_bytes();
        let fill_end = prefill(&mut ssd)?;
        let workload =
            SyntheticConfig::qos_workload(count, write_pct as f64 / 100.0, capacity - 256 * 1024);
        let requests: Vec<BlockRequest> = workload
            .generate()
            .to_requests()
            .into_iter()
            .map(|mut r| {
                r.arrival += fill_end.saturating_since(SimTime::ZERO);
                r
            })
            .collect();
        let completions = ssd
            .simulate_open(&requests, SchedulerKind::Fcfs)
            .map_err(DeviceError::from)?;
        out[i] = (
            mean_ms(&completions, &requests, Priority::High),
            mean_ms(&completions, &requests, Priority::Normal),
        );
    }
    Ok(Figure3Point {
        write_pct,
        agnostic_foreground_ms: out[0].0,
        agnostic_background_ms: out[0].1,
        aware_foreground_ms: out[1].0,
        aware_background_ms: out[1].1,
    })
}

/// The write percentages of Figure 3 / Table 6.
pub const WRITE_PERCENTAGES: [u32; 5] = [20, 40, 50, 60, 80];

/// Runs the Figure 3 sweep.
pub fn run(scale: Scale) -> Result<Vec<Figure3Point>, DeviceError> {
    WRITE_PERCENTAGES
        .iter()
        .map(|&w| run_point(scale, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_aware_cleaning_helps_foreground_when_writes_dominate() {
        // A single write-heavy point keeps the test fast; the full sweep is
        // exercised by the integration tests and the bench harness.
        let point = run_point(Scale::Quick, 60).unwrap();
        assert!(point.agnostic_foreground_ms > 0.0);
        assert!(point.aware_foreground_ms > 0.0);
        let improvement = point.improvement_pct();
        assert!(
            improvement > 2.0,
            "priority-aware cleaning should help foreground requests, got {improvement:.2}%"
        );
        assert!(
            improvement < 70.0,
            "improvement {improvement:.2}% implausibly large"
        );
    }

    #[test]
    fn read_heavy_workloads_see_little_benefit() {
        let point = run_point(Scale::Quick, 20).unwrap();
        let improvement = point.improvement_pct();
        // With few writes cleaning rarely runs, so the schemes should be
        // close (the paper reports exactly 0%).
        assert!(
            improvement.abs() < 10.0,
            "at 20% writes the schemes should be close, got {improvement:.2}%"
        );
    }
}
