//! Fleet-scale sweep: aggregate throughput of a striped multi-device
//! array, and foreground latency under parity failure and QoS-throttled
//! rebuild.
//!
//! Two questions the single-device experiments cannot ask:
//!
//! 1. **Scale-out.**  How does aggregate bandwidth grow as the same device
//!    is striped 1→8 wide, per stripe unit, and how much wall-clock time do
//!    per-device engine threads save?  (Sim results are bit-identical for
//!    every thread count — that is the fleet determinism contract — so the
//!    thread axis only moves `wall_seconds`.)
//! 2. **Degraded mode vs rebuild QoS.**  On a 4-device parity fleet with
//!    one member failed and replaced, reconstruction copy-back occupies
//!    every survivor's flash elements (element busy state persists across
//!    sessions), so foreground requests queue behind it — the classic
//!    degraded-array tail story.  The scenario sweeps the rebuild
//!    bandwidth budget ([`ossd_fleet::RebuildQos`]): an unthrottled
//!    rebuild closes the reduced-redundancy window fastest but wrecks the
//!    survivor p99.9, while a tight budget inverts the trade — the CSV
//!    shows copy-back bandwidth and survivor tails moving in opposite
//!    directions.

use ossd_block::{
    BlockDevice, ByteRange, CompletionStatus, DeviceError, HostCommand, HostInterface, HostQueue,
    LatencyPercentiles, WriteHint,
};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_fleet::{Fleet, FleetConfig, RebuildQos};
use ossd_ftl::FtlConfig;
use ossd_sim::{LatencyStats, SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, SsdConfig};

use super::Scale;

/// One measured grid point: a device count × thread count × stripe unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetPoint {
    /// Devices in the striped array.
    pub devices: usize,
    /// Worker threads serving the per-device engines.
    pub threads: usize,
    /// Stripe unit in KiB.
    pub stripe_kib: u64,
    /// Aggregate bandwidth over the churn phase, MB per simulated second.
    pub bandwidth_mbps: f64,
    /// Median foreground response time, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile foreground response time, milliseconds.
    pub p99_ms: f64,
    /// Host-visible wall-clock time of the churn phase, seconds.
    pub wall_seconds: f64,
    /// Churn commands served.
    pub ops: u64,
}

/// One rebuild-budget setting of the parity failure → rebuild scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebuildPoint {
    /// Human-readable budget label (`"unthrottled"`, `"64MBps"`, ...).
    pub label: &'static str,
    /// Token-bucket budget in MB/s of copy-back (0 = unthrottled).
    pub budget_mbps: f64,
    /// Whether host-pressure backoff is enabled for this setting.
    pub backoff: bool,
    /// Member devices in the parity fleet.
    pub devices: usize,
    /// Healthy-phase foreground response-time percentiles.
    pub healthy: LatencyPercentiles,
    /// Survivor foreground percentiles while the rebuild is in flight.
    pub degraded: LatencyPercentiles,
    /// Bytes reconstructed onto the replacement, MiB.
    pub rebuilt_mib: f64,
    /// Copy-back bandwidth over the whole rebuild span, MB per simulated
    /// second.
    pub rebuild_mbps: f64,
    /// Host reads served by XOR reconstruction during the scenario.
    pub degraded_reads: u64,
    /// Host-visible non-`Ok` completions (must stay zero).
    pub host_errors: u64,
}

/// Everything the sweep produces.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSweep {
    /// The scale-out grid.
    pub points: Vec<FleetPoint>,
    /// The degraded-mode scenario, one point per rebuild-budget setting.
    pub rebuild: Vec<RebuildPoint>,
}

const SEED: u64 = 0xF1EE_CAFE;
const INITIATORS: usize = 4;

fn device_config(scale: Scale) -> SsdConfig {
    SsdConfig {
        name: "fleet-sweep".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.count(32, 64) as u32,
            pages_per_block: 32,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 8,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Sequentially fills the fleet with large (64-page) writes so churn runs
/// against a utilized array.  Returns the sim time the fill drained at.
fn prefill<D: HostInterface>(fleet: &mut D, capacity: u64) -> Result<SimTime, DeviceError> {
    let chunk = 64 * 4096u64;
    let mut queues = vec![HostQueue::new()];
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut offset = 0u64;
    while offset < capacity {
        let batch_end = (offset + 64 * chunk).min(capacity);
        while offset < batch_end {
            let len = chunk.min(capacity - offset);
            queues[0].submit(
                id,
                HostCommand::Write {
                    range: ByteRange::new(offset, len),
                    hint: WriteHint::default(),
                },
                at,
            );
            offset += len;
            id += 1;
        }
        fleet.serve(&mut queues)?;
        for c in queues[0].drain_completions() {
            at = at.max(c.finish);
        }
    }
    Ok(at)
}

/// One churn session: `ops` seeded random single-page commands (7/8
/// writes, 1/8 reads) spread over the initiators, arrivals paced one
/// microsecond apart.  Returns the last completion finish, records
/// response times and counts host-visible errors.
#[allow(clippy::too_many_arguments)]
fn churn_session<D: HostInterface>(
    fleet: &mut D,
    queues: &mut [HostQueue],
    rng: &mut SimRng,
    latency: &mut LatencyStats,
    errors: &mut u64,
    logical_pages: u64,
    start: SimTime,
    ops: u64,
    id: &mut u64,
) -> Result<(SimTime, u64), DeviceError> {
    let page = 4096u64;
    let mut bytes = 0u64;
    for k in 0..ops {
        let lpn = rng.next_u64_below(logical_pages);
        let range = ByteRange::new(lpn * page, page);
        let command = if k % 8 == 7 {
            HostCommand::Read { range }
        } else {
            HostCommand::Write {
                range,
                hint: WriteHint::default(),
            }
        };
        bytes += page;
        queues[k as usize % INITIATORS].submit(*id, command, start + SimDuration::from_micros(k));
        *id += 1;
    }
    fleet.serve(queues)?;
    let mut last = start;
    for queue in queues.iter_mut() {
        for c in queue.drain_completions() {
            latency.record(c.response_time());
            if c.status != CompletionStatus::Ok {
                *errors += 1;
            }
            last = last.max(c.finish);
        }
    }
    Ok((last, bytes))
}

fn run_point(
    scale: Scale,
    devices: usize,
    threads: usize,
    stripe_kib: u64,
) -> Result<FleetPoint, DeviceError> {
    let config = FleetConfig::striped(device_config(scale), devices, stripe_kib * 1024)
        .with_threads(threads)
        .with_seed(SEED)
        .with_name("sweep");
    let mut fleet = Fleet::new(config).map_err(DeviceError::from)?;
    let capacity = fleet.capacity_bytes();
    let logical_pages = capacity / 4096;
    let fill_end = prefill(&mut fleet, capacity)?;

    // Churn scales with the array so every device sees constant work.
    let ops_total = (scale.count(512, 2048) * devices) as u64;
    let session = 256u64;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut rng = SimRng::seed_from_u64(SEED ^ devices as u64);
    let mut latency = LatencyStats::new();
    let mut errors = 0u64;
    let mut at = fill_end + SimDuration::from_micros(100);
    let first = at;
    let mut bytes = 0u64;
    let mut id = 1_000_000u64;
    let wall_start = std::time::Instant::now();
    let mut issued = 0u64;
    while issued < ops_total {
        let batch = session.min(ops_total - issued);
        let (last, b) = churn_session(
            &mut fleet,
            &mut queues,
            &mut rng,
            &mut latency,
            &mut errors,
            logical_pages,
            at,
            batch,
            &mut id,
        )?;
        bytes += b;
        at = last + SimDuration::from_micros(10);
        issued += batch;
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let elapsed = at.saturating_since(first);
    Ok(FleetPoint {
        devices,
        threads,
        stripe_kib,
        bandwidth_mbps: bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12),
        p50_ms: latency.percentile(50.0).as_millis_f64(),
        p99_ms: latency.percentile(99.0).as_millis_f64(),
        wall_seconds,
        ops: ops_total,
    })
}

/// The rebuild-budget settings the degraded-mode scenario sweeps.  The
/// budgets are sized against the simulated array's foreground bandwidth
/// (single-digit MB per simulated second at these device geometries) so
/// the token bucket actually binds.
pub fn rebuild_budgets() -> Vec<(&'static str, RebuildQos)> {
    vec![
        ("unthrottled", RebuildQos::unthrottled()),
        ("4MBps", RebuildQos::limited(4 * 1024 * 1024)),
        ("1MBps", RebuildQos::limited(1024 * 1024)),
        (
            "1MBps+backoff",
            RebuildQos::limited(1024 * 1024).with_backoff(8, SimDuration::from_micros(500)),
        ),
    ]
}

/// The degraded-mode scenario at one budget setting: fill a 4-device
/// parity fleet, measure healthy foreground tails, fail member 1, replace
/// it, then run a *fixed* number of foreground epochs on a *fixed
/// cadence* (twice the mean healthy session span), admitting
/// watermark-ordered 32-page rebuild chunks in the idle window after each
/// session drains, as far as the QoS governor allows.  The foreground
/// arrival schedule is identical across budget settings, so survivor
/// percentiles and copy-back bandwidth compare apples to apples: a tight
/// budget fits its copies inside the idle window (tails near the degraded
/// baseline, little copied), an unthrottled one overflows it so the next
/// sessions queue behind copy traffic.  Every third epoch is a light
/// session (4 commands per initiator), which is where a pressure-backoff
/// policy — parked while the heavy sessions keep per-initiator depth at
/// the threshold — gets to make progress.
pub fn run_rebuild(
    scale: Scale,
    label: &'static str,
    qos: RebuildQos,
) -> Result<RebuildPoint, DeviceError> {
    let devices = 4usize;
    let config = FleetConfig::parity(device_config(scale), devices, 4096)
        .with_threads(devices)
        .with_seed(SEED)
        .with_name("rebuild");
    let mut fleet = Fleet::new(config).map_err(DeviceError::from)?;
    let capacity = fleet.capacity_bytes();
    let logical_pages = capacity / 4096;
    let fill_end = prefill(&mut fleet, capacity)?;

    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xDEAD);
    let mut id = 2_000_000u64;
    let session = 128u64;
    let mut errors = 0u64;

    // Healthy phase; its mean session span sets the degraded-phase cadence.
    let mut healthy = LatencyStats::new();
    let mut at = fill_end + SimDuration::from_micros(100);
    let healthy_start = at;
    let healthy_sessions = scale.count(4, 16) as u64;
    for _ in 0..healthy_sessions {
        let (last, _) = churn_session(
            &mut fleet,
            &mut queues,
            &mut rng,
            &mut healthy,
            &mut errors,
            logical_pages,
            at,
            session,
            &mut id,
        )?;
        at = last + SimDuration::from_micros(10);
    }
    // Cadence: 1.25x the mean healthy session span, leaving an idle
    // window of about a quarter-session per epoch — enough for a tightly
    // budgeted rebuild to hide in, not enough for an unthrottled one.
    let period = SimDuration::from_nanos(
        at.saturating_since(healthy_start).as_nanos() * 5 / (4 * healthy_sessions),
    );

    // Failure, replacement, and the budget under test.
    fleet.fail_device(1)?;
    fleet.replace_device(1)?;
    fleet.set_rebuild_qos(qos);
    let rebuild_start = at;

    // Fixed-cadence foreground epochs: session `n` arrives at
    // `rebuild_start + n * period` regardless of when the previous one
    // drained, so copy traffic that overflows an epoch's idle window
    // delays the epochs after it.  Chunks are admitted right after each
    // session drains — while the array is otherwise idle — as long as the
    // governor clears them on the spot, capped per epoch so even the
    // unthrottled setting interleaves rather than rebuilding the whole
    // device in one burst.
    let chunk_rows = 32u64;
    let rows = fleet.parity_rows().expect("parity fleet");
    let max_chunks_per_epoch = 8u64;
    let epochs = scale.count(12, 32) as u64;
    let mut degraded = LatencyStats::new();
    let mut copied = 0u64;
    let mut next_row = 0u64;
    for n in 0..epochs {
        let start = rebuild_start.saturating_add(SimDuration::from_nanos(period.as_nanos() * n));
        let ops = if n % 3 == 2 {
            INITIATORS as u64 * 4
        } else {
            session
        };
        let (last, _) = churn_session(
            &mut fleet,
            &mut queues,
            &mut rng,
            &mut degraded,
            &mut errors,
            logical_pages,
            start,
            ops,
            &mut id,
        )?;
        at = at.max(last) + SimDuration::from_micros(10);
        let mut admitted_this_epoch = 0u64;
        while next_row < rows && admitted_this_epoch < max_chunks_per_epoch {
            let chunk = chunk_rows.min(rows - next_row) * 4096;
            if fleet.preview_rebuild_admission(at, chunk) > at {
                break;
            }
            fleet.rebuild_range(1, ByteRange::new(next_row * 4096, chunk), at)?;
            copied += chunk;
            next_row += chunk / 4096;
            admitted_this_epoch += 1;
        }
    }
    let span = at.saturating_since(rebuild_start);

    Ok(RebuildPoint {
        label,
        budget_mbps: qos.bytes_per_sec.map_or(0.0, |b| b as f64 / 1e6),
        backoff: qos.pressure_depth.is_some(),
        devices,
        healthy: LatencyPercentiles::of(&healthy),
        degraded: LatencyPercentiles::of(&degraded),
        rebuilt_mib: copied as f64 / (1024.0 * 1024.0),
        rebuild_mbps: copied as f64 / 1e6 / span.as_secs_f64().max(1e-12),
        degraded_reads: fleet.degraded_reads(),
        host_errors: errors,
    })
}

/// The device counts the sweep covers.
pub const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The worker-thread counts the sweep covers.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The stripe units the sweep covers, KiB.
pub const STRIPE_KIB: [u64; 2] = [4, 32];

/// Runs the full sweep: the scale-out grid plus the rebuild scenario.
///
/// At `Quick` scale the grid shrinks to devices {1, 4} × threads {1, 2} ×
/// stripe 4 KiB so tests stay fast.
pub fn run(scale: Scale) -> Result<FleetSweep, DeviceError> {
    let mut points = Vec::new();
    let (devices, threads, stripes): (&[usize], &[usize], &[u64]) = match scale {
        Scale::Quick => (&[1, 4], &[1, 2], &STRIPE_KIB[..1]),
        Scale::Paper => (&DEVICE_COUNTS, &THREAD_COUNTS, &STRIPE_KIB),
    };
    for &d in devices {
        for &t in threads {
            for &s in stripes {
                points.push(run_point(scale, d, t, s)?);
            }
        }
    }
    let mut rebuild = Vec::new();
    for (label, qos) in rebuild_budgets() {
        rebuild.push(run_rebuild(scale, label, qos)?);
    }
    Ok(FleetSweep { points, rebuild })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_scales_aggregate_bandwidth() {
        let one = run_point(Scale::Quick, 1, 1, 4).unwrap();
        let four = run_point(Scale::Quick, 4, 1, 4).unwrap();
        let scaling = four.bandwidth_mbps / one.bandwidth_mbps;
        assert!(
            scaling > 2.0,
            "4-wide striping scaled sim bandwidth only {scaling:.2}x \
             ({:.1} -> {:.1} MB/s)",
            one.bandwidth_mbps,
            four.bandwidth_mbps
        );
    }

    #[test]
    fn thread_count_does_not_change_sim_results() {
        let t1 = run_point(Scale::Quick, 4, 1, 4).unwrap();
        let t2 = run_point(Scale::Quick, 4, 2, 4).unwrap();
        assert_eq!(t1.bandwidth_mbps, t2.bandwidth_mbps);
        assert_eq!(t1.p50_ms, t2.p50_ms);
        assert_eq!(t1.p99_ms, t2.p99_ms);
    }

    #[test]
    fn rebuild_serves_degraded_with_zero_errors_and_makes_progress() {
        let point = run_rebuild(Scale::Quick, "unthrottled", RebuildQos::unthrottled()).unwrap();
        assert_eq!(point.host_errors, 0, "degraded serving surfaced errors");
        assert!(point.degraded_reads > 0, "no reads hit the failed member");
        assert!(point.rebuilt_mib > 0.0);
        assert!(point.rebuild_mbps > 0.0);
    }

    #[test]
    fn rebuild_budget_trades_copyback_bandwidth_against_survivor_tails() {
        let open = run_rebuild(Scale::Quick, "unthrottled", RebuildQos::unthrottled()).unwrap();
        let tight = run_rebuild(Scale::Quick, "1MBps", RebuildQos::limited(1024 * 1024)).unwrap();
        assert_eq!(open.host_errors + tight.host_errors, 0);
        assert!(
            open.rebuild_mbps > tight.rebuild_mbps,
            "unthrottled copy-back {:.2} MB/s not above throttled {:.2} MB/s",
            open.rebuild_mbps,
            tight.rebuild_mbps
        );
        assert!(
            open.degraded.p999_ms > tight.degraded.p999_ms,
            "unthrottled survivor p99.9 {:.3} ms not above throttled {:.3} ms",
            open.degraded.p999_ms,
            tight.degraded.p999_ms
        );
    }

    #[test]
    fn quick_sweep_covers_the_reduced_grid() {
        let sweep = run(Scale::Quick).unwrap();
        assert_eq!(sweep.points.len(), 4);
        for p in &sweep.points {
            assert!(p.bandwidth_mbps > 0.0);
            assert!(p.ops > 0);
        }
        assert_eq!(sweep.rebuild.len(), 4);
        for r in &sweep.rebuild {
            assert_eq!(r.host_errors, 0, "{}: host-visible errors", r.label);
        }
    }
}
