//! Fleet-scale sweep: aggregate throughput of a striped multi-device
//! array, and foreground latency under replica failure and rebuild.
//!
//! Two questions the single-device experiments cannot ask:
//!
//! 1. **Scale-out.**  How does aggregate bandwidth grow as the same device
//!    is striped 1→8 wide, per stripe unit, and how much wall-clock time do
//!    per-device engine threads save?  (Sim results are bit-identical for
//!    every thread count — that is the fleet determinism contract — so the
//!    thread axis only moves `wall_seconds`.)
//! 2. **Degraded mode.**  On a 3-way replicated fleet, what happens to
//!    survivor foreground latency while a failed replica is being rebuilt?
//!    Rebuild copy traffic occupies the source replica's and the
//!    replacement's flash elements (element busy state persists across
//!    sessions), so foreground requests queue behind it — the classic
//!    degraded-array p99 story.

use ossd_block::{
    BlockDevice, ByteRange, DeviceError, HostCommand, HostInterface, HostQueue, WriteHint,
};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_fleet::{Fleet, FleetConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{LatencyStats, SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, SsdConfig};

use super::Scale;

/// One measured grid point: a device count × thread count × stripe unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetPoint {
    /// Devices in the striped array.
    pub devices: usize,
    /// Worker threads serving the per-device engines.
    pub threads: usize,
    /// Stripe unit in KiB.
    pub stripe_kib: u64,
    /// Aggregate bandwidth over the churn phase, MB per simulated second.
    pub bandwidth_mbps: f64,
    /// Median foreground response time, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile foreground response time, milliseconds.
    pub p99_ms: f64,
    /// Host-visible wall-clock time of the churn phase, seconds.
    pub wall_seconds: f64,
    /// Churn commands served.
    pub ops: u64,
}

/// The replica-failure → rebuild scenario on a 3-way replicated fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebuildReport {
    /// Replicas in the fleet.
    pub replicas: usize,
    /// Healthy-phase foreground p99, milliseconds.
    pub healthy_p99_ms: f64,
    /// Healthy-phase foreground p99.9, milliseconds.
    pub healthy_p999_ms: f64,
    /// Foreground p99 while the rebuild is in flight, milliseconds.
    pub rebuild_p99_ms: f64,
    /// Foreground p99.9 while the rebuild is in flight, milliseconds.
    pub rebuild_p999_ms: f64,
    /// Bytes copied back to the replacement, MiB.
    pub rebuilt_mib: f64,
    /// Rebuild copy bandwidth, MB per simulated second.
    pub rebuild_mbps: f64,
}

/// Everything the sweep produces.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSweep {
    /// The scale-out grid.
    pub points: Vec<FleetPoint>,
    /// The degraded-mode scenario.
    pub rebuild: RebuildReport,
}

const SEED: u64 = 0xF1EE_CAFE;
const INITIATORS: usize = 4;

fn device_config(scale: Scale) -> SsdConfig {
    SsdConfig {
        name: "fleet-sweep".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.count(32, 64) as u32,
            pages_per_block: 32,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 8,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Sequentially fills the fleet with large (64-page) writes so churn runs
/// against a utilized array.  Returns the sim time the fill drained at.
fn prefill<D: HostInterface>(fleet: &mut D, capacity: u64) -> Result<SimTime, DeviceError> {
    let chunk = 64 * 4096u64;
    let mut queues = vec![HostQueue::new()];
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut offset = 0u64;
    while offset < capacity {
        let batch_end = (offset + 64 * chunk).min(capacity);
        while offset < batch_end {
            let len = chunk.min(capacity - offset);
            queues[0].submit(
                id,
                HostCommand::Write {
                    range: ByteRange::new(offset, len),
                    hint: WriteHint::default(),
                },
                at,
            );
            offset += len;
            id += 1;
        }
        fleet.serve(&mut queues)?;
        for c in queues[0].drain_completions() {
            at = at.max(c.finish);
        }
    }
    Ok(at)
}

/// One churn session: `ops` seeded random single-page commands (7/8
/// writes, 1/8 reads) spread over the initiators, arrivals paced
/// `pace_us` apart.  Returns the last completion finish and records
/// response times.
#[allow(clippy::too_many_arguments)]
fn churn_session<D: HostInterface>(
    fleet: &mut D,
    queues: &mut [HostQueue],
    rng: &mut SimRng,
    latency: &mut LatencyStats,
    logical_pages: u64,
    start: SimTime,
    ops: u64,
    id: &mut u64,
) -> Result<(SimTime, u64), DeviceError> {
    let page = 4096u64;
    let mut bytes = 0u64;
    for k in 0..ops {
        let lpn = rng.next_u64_below(logical_pages);
        let range = ByteRange::new(lpn * page, page);
        let command = if k % 8 == 7 {
            HostCommand::Read { range }
        } else {
            HostCommand::Write {
                range,
                hint: WriteHint::default(),
            }
        };
        bytes += page;
        queues[k as usize % INITIATORS].submit(*id, command, start + SimDuration::from_micros(k));
        *id += 1;
    }
    fleet.serve(queues)?;
    let mut last = start;
    for queue in queues.iter_mut() {
        for c in queue.drain_completions() {
            latency.record(c.response_time());
            last = last.max(c.finish);
        }
    }
    Ok((last, bytes))
}

fn run_point(
    scale: Scale,
    devices: usize,
    threads: usize,
    stripe_kib: u64,
) -> Result<FleetPoint, DeviceError> {
    let config = FleetConfig::striped(device_config(scale), devices, stripe_kib * 1024)
        .with_threads(threads)
        .with_seed(SEED)
        .with_name("sweep");
    let mut fleet = Fleet::new(config).map_err(DeviceError::from)?;
    let capacity = fleet.capacity_bytes();
    let logical_pages = capacity / 4096;
    let fill_end = prefill(&mut fleet, capacity)?;

    // Churn scales with the array so every device sees constant work.
    let ops_total = (scale.count(512, 2048) * devices) as u64;
    let session = 256u64;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut rng = SimRng::seed_from_u64(SEED ^ devices as u64);
    let mut latency = LatencyStats::new();
    let mut at = fill_end + SimDuration::from_micros(100);
    let first = at;
    let mut bytes = 0u64;
    let mut id = 1_000_000u64;
    let wall_start = std::time::Instant::now();
    let mut issued = 0u64;
    while issued < ops_total {
        let batch = session.min(ops_total - issued);
        let (last, b) = churn_session(
            &mut fleet,
            &mut queues,
            &mut rng,
            &mut latency,
            logical_pages,
            at,
            batch,
            &mut id,
        )?;
        bytes += b;
        at = last + SimDuration::from_micros(10);
        issued += batch;
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let elapsed = at.saturating_since(first);
    Ok(FleetPoint {
        devices,
        threads,
        stripe_kib,
        bandwidth_mbps: bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12),
        p50_ms: latency.percentile(50.0).as_millis_f64(),
        p99_ms: latency.percentile(99.0).as_millis_f64(),
        wall_seconds,
        ops: ops_total,
    })
}

/// The degraded-mode scenario: fill a 3-way replicated fleet, measure
/// healthy foreground tails, fail replica 1, replace it, then rebuild the
/// whole space chunk-by-chunk with foreground churn interleaved, measuring
/// survivor tails while the copy traffic holds the elements busy.
fn run_rebuild(scale: Scale) -> Result<RebuildReport, DeviceError> {
    let replicas = 3usize;
    let config = FleetConfig::replicated(device_config(scale), replicas)
        .with_threads(replicas)
        .with_seed(SEED)
        .with_name("rebuild");
    let mut fleet = Fleet::new(config).map_err(DeviceError::from)?;
    let capacity = fleet.capacity_bytes();
    let logical_pages = capacity / 4096;
    let fill_end = prefill(&mut fleet, capacity)?;

    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xDEAD);
    let mut id = 2_000_000u64;
    let session = 128u64;

    // Healthy phase.
    let mut healthy = LatencyStats::new();
    let mut at = fill_end + SimDuration::from_micros(100);
    for _ in 0..scale.count(4, 16) {
        let (last, _) = churn_session(
            &mut fleet,
            &mut queues,
            &mut rng,
            &mut healthy,
            logical_pages,
            at,
            session,
            &mut id,
        )?;
        at = last + SimDuration::from_micros(10);
    }

    // Failure and replacement.
    fleet.fail_device(1)?;
    fleet.replace_device(1)?;

    // Rebuild the whole exported space in 32-page chunks, a fixed number
    // of chunks between foreground sessions, measuring survivor latency
    // while the copy traffic is in flight.
    let chunk_pages = 32u64;
    let chunk = chunk_pages * 4096;
    let chunks = capacity / chunk;
    let chunks_per_session = scale.count(4, 8) as u64;
    let mut degraded = LatencyStats::new();
    let mut rebuild_busy = SimDuration::ZERO;
    let mut copied = 0u64;
    let mut next_chunk = 0u64;
    while next_chunk < chunks {
        let burst = chunks_per_session.min(chunks - next_chunk);
        let rebuild_start = at;
        for c in 0..burst {
            let offset = (next_chunk + c) * chunk;
            let (_, w) = fleet.rebuild_range(1, ByteRange::new(offset, chunk), at)?;
            at = w.finish;
            copied += chunk;
        }
        rebuild_busy += at.saturating_since(rebuild_start);
        // Foreground arrivals overlap the tail of the copy burst, so they
        // queue behind it on the shared elements.
        let fg_start = rebuild_start + SimDuration::from_micros(50);
        let (last, _) = churn_session(
            &mut fleet,
            &mut queues,
            &mut rng,
            &mut degraded,
            logical_pages,
            fg_start,
            session,
            &mut id,
        )?;
        at = at.max(last) + SimDuration::from_micros(10);
        next_chunk += burst;
    }

    Ok(RebuildReport {
        replicas,
        healthy_p99_ms: healthy.percentile(99.0).as_millis_f64(),
        healthy_p999_ms: healthy.percentile(99.9).as_millis_f64(),
        rebuild_p99_ms: degraded.percentile(99.0).as_millis_f64(),
        rebuild_p999_ms: degraded.percentile(99.9).as_millis_f64(),
        rebuilt_mib: copied as f64 / (1024.0 * 1024.0),
        rebuild_mbps: copied as f64 / 1e6 / rebuild_busy.as_secs_f64().max(1e-12),
    })
}

/// The device counts the sweep covers.
pub const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The worker-thread counts the sweep covers.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The stripe units the sweep covers, KiB.
pub const STRIPE_KIB: [u64; 2] = [4, 32];

/// Runs the full sweep: the scale-out grid plus the rebuild scenario.
///
/// At `Quick` scale the grid shrinks to devices {1, 4} × threads {1, 2} ×
/// stripe 4 KiB so tests stay fast.
pub fn run(scale: Scale) -> Result<FleetSweep, DeviceError> {
    let mut points = Vec::new();
    let (devices, threads, stripes): (&[usize], &[usize], &[u64]) = match scale {
        Scale::Quick => (&[1, 4], &[1, 2], &STRIPE_KIB[..1]),
        Scale::Paper => (&DEVICE_COUNTS, &THREAD_COUNTS, &STRIPE_KIB),
    };
    for &d in devices {
        for &t in threads {
            for &s in stripes {
                points.push(run_point(scale, d, t, s)?);
            }
        }
    }
    let rebuild = run_rebuild(scale)?;
    Ok(FleetSweep { points, rebuild })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_scales_aggregate_bandwidth() {
        let one = run_point(Scale::Quick, 1, 1, 4).unwrap();
        let four = run_point(Scale::Quick, 4, 1, 4).unwrap();
        let scaling = four.bandwidth_mbps / one.bandwidth_mbps;
        assert!(
            scaling > 2.0,
            "4-wide striping scaled sim bandwidth only {scaling:.2}x \
             ({:.1} -> {:.1} MB/s)",
            one.bandwidth_mbps,
            four.bandwidth_mbps
        );
    }

    #[test]
    fn thread_count_does_not_change_sim_results() {
        let t1 = run_point(Scale::Quick, 4, 1, 4).unwrap();
        let t2 = run_point(Scale::Quick, 4, 2, 4).unwrap();
        assert_eq!(t1.bandwidth_mbps, t2.bandwidth_mbps);
        assert_eq!(t1.p50_ms, t2.p50_ms);
        assert_eq!(t1.p99_ms, t2.p99_ms);
    }

    #[test]
    fn rebuild_degrades_survivor_tails_and_makes_progress() {
        let report = run_rebuild(Scale::Quick).unwrap();
        assert!(report.rebuilt_mib > 0.0);
        assert!(report.rebuild_mbps > 0.0);
        // Copy traffic holds elements busy, so the degraded tail cannot be
        // better than healthy.
        assert!(
            report.rebuild_p99_ms >= report.healthy_p99_ms * 0.9,
            "rebuild p99 {:.3} ms implausibly beats healthy p99 {:.3} ms",
            report.rebuild_p99_ms,
            report.healthy_p99_ms
        );
    }

    #[test]
    fn quick_sweep_covers_the_reduced_grid() {
        let sweep = run(Scale::Quick).unwrap();
        assert_eq!(sweep.points.len(), 4);
        for p in &sweep.points {
            assert!(p.bandwidth_mbps > 0.0);
            assert!(p.ops > 0);
        }
    }
}
