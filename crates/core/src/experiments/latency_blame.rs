//! Latency blame: where the p99.9 tail comes from, per request class.
//!
//! The paper's central claim is that SSD service times are bimodal — most
//! requests see bare flash latency, but the unlucky tail queues behind
//! cleaning, translation-page traffic and bus contention (§3.4–§3.6).  This
//! experiment quantifies that directly: it drives a GC-active, 4-initiator
//! TPC-C slice with the latency-attribution subsystem enabled and reports,
//! per class, the deep-tail percentiles (p50/p99/p99.9/p99.99) and the
//! share of tail latency *blamed on each component* — GC interference, map
//! I/O, fences, arbitration, bus transfer, ECC retries, the command's own
//! flash time.
//!
//! The sweep axis is the demand-paged map-cache budget: a resident mapping
//! table (no map I/O at all), a generous budget, and a starved one, at the
//! same GC-active watermark — so the report shows blame *shifting* (map
//! share rising, GC share diluting) while the workload stays fixed.
//!
//! Every point self-validates the subsystem's core invariant: one record
//! per completion and blame components summing exactly to each record's
//! end-to-end latency.

use ossd_block::{BlockDevice, BlockRequest, DeviceError, HostCommand, HostInterface, HostQueue};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{FtlConfig, MapCacheConfig};
use ossd_gc::BackgroundGcConfig;
use ossd_sim::{SimDuration, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_telemetry::{to_chrome_counters, BlameCat, TailReport};
use ossd_workload::TpccConfig;

use super::Scale;

/// Number of initiator queue pairs the workload drives.
pub const INITIATORS: usize = 4;

/// One swept map-budget configuration's blame report.
#[derive(Clone, Debug)]
pub struct LatencyBlamePoint {
    /// Human-readable sweep label (`"resident"` or `"budget <n>"`).
    pub label: String,
    /// Map-cache budget in cached entries (`None` = fully resident table).
    pub map_budget: Option<usize>,
    /// Commands completed across all initiators (records drained).
    pub completions: usize,
    /// Per-class deep-tail percentiles and blame shares.
    pub report: TailReport,
    /// The report rendered as CSV (one row per class).
    pub blame_csv: String,
    /// Cumulative per-category blame as Perfetto counter tracks.
    pub counters_json: String,
}

impl LatencyBlamePoint {
    /// Share of p99.9-tail latency blamed on `cat` across all classes.
    pub fn tail_share(&self, cat: BlameCat) -> f64 {
        self.report.class("all").map_or(0.0, |c| c.share(cat))
    }
}

/// The sweep: one [`LatencyBlamePoint`] per map budget.
#[derive(Clone, Debug)]
pub struct LatencyBlame {
    /// Points in sweep order (resident first, then shrinking budgets).
    pub points: Vec<LatencyBlamePoint>,
}

/// The GC-active device under test: 8 elements on two gang buses, with the
/// cleaning watermark raised above what the prefill leaves free so
/// foreground cleaning runs throughout the measured churn, and the
/// stressed wear-out fault model so ECC retries appear in the blame.
fn device_config(scale: Scale, map_budget: Option<usize>) -> SsdConfig {
    let mut ftl = FtlConfig::default()
        .with_overprovisioning(0.12)
        .with_watermarks(0.30, 0.15);
    if let Some(budget) = map_budget {
        ftl = ftl.with_map_cache(MapCacheConfig::default().with_budget(budget as u64));
    }
    SsdConfig {
        name: "latency-blame".to_string(),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.count(128, 512) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl,
        reliability: stressed_reliability(),
        background_gc: Some(BackgroundGcConfig::default()),
        gangs: 2,
        scheduler: SchedulerKind::Swtf,
        queue_depth: 8,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Same stressed fault model as the trace-capture experiment: the pristine
/// raw bit-error mean sits at the edge of the default ECC strength, so a
/// visible fraction of reads needs a shifted-threshold retry.
fn stressed_reliability() -> ReliabilityConfig {
    let mut reliability = ReliabilityConfig::wearout(0x7e1e);
    reliability.faults.raw_ber_base = 4.0;
    reliability
}

/// The swept map budgets for `scale` (entry counts; `None` = resident).
fn budgets(scale: Scale) -> Vec<Option<usize>> {
    vec![
        None,
        Some(scale.count(2048, 16384)),
        Some(scale.count(256, 2048)),
    ]
}

/// Runs one map-budget point: prefill, enable attribution, churn TPC-C
/// through four initiators, drain and aggregate the blame records.
fn run_point(scale: Scale, map_budget: Option<usize>) -> Result<LatencyBlamePoint, DeviceError> {
    let config = device_config(scale, map_budget);
    let mut ssd = Ssd::new(config).map_err(DeviceError::from)?;
    let capacity = ssd.capacity_bytes();
    let page = ssd.logical_page_bytes();
    let database_bytes = (capacity * 8 / 10) / page * page;
    let tpcc = TpccConfig {
        transactions: scale.count(400, 4000),
        database_bytes,
        log_bytes: (capacity / 10) / page * page,
        ..TpccConfig::default()
    };

    // Prefill before enabling attribution: the report should describe the
    // steady-state churn, not the sequential fill.
    let mut at = SimTime::ZERO;
    let chunk = 128 * page;
    let mut id = 1_000_000u64;
    let mut offset = 0u64;
    while offset < database_bytes {
        let len = chunk.min(database_bytes - offset);
        let c = ssd.submit(&BlockRequest::write(id, offset, len, at))?;
        at = c.finish;
        offset += len;
        id += 1;
    }
    ssd.enable_attribution();

    let base = at + SimDuration::from_millis(1);
    let requests = tpcc.generate().to_requests();
    let mut queues = vec![HostQueue::new(); INITIATORS];
    let mut last_arrival = base;
    for (i, r) in requests.iter().enumerate() {
        let mut request = *r;
        request.arrival = base + SimDuration::from_nanos(r.arrival.as_nanos());
        last_arrival = last_arrival.max(request.arrival);
        queues[i % INITIATORS].submit_request(&request);
    }
    // One closing Flush per initiator puts the fence path in the blame.
    for queue in &mut queues {
        queue.submit(u64::MAX, HostCommand::Flush, last_arrival);
    }
    ssd.serve(&mut queues)?;
    let completions: usize = queues.iter_mut().map(|q| q.drain_completions().len()).sum();

    let records = ssd.take_blame_records();
    let report = TailReport::from_records(&records);
    let point = LatencyBlamePoint {
        label: match map_budget {
            None => "resident".to_string(),
            Some(budget) => format!("budget {budget}"),
        },
        map_budget,
        completions,
        blame_csv: report.to_csv(),
        counters_json: to_chrome_counters(&records),
        report,
    };

    // Self-validate the subsystem's invariants on the way out.
    if records.len() != completions {
        return Err(validation_error(format!(
            "{}: {} blame records for {} completions",
            point.label,
            records.len(),
            completions
        )));
    }
    if let Some(bad) = records.iter().find(|r| !r.is_exact()) {
        return Err(validation_error(format!(
            "{}: command {} blame sums to {} ns over a {} ns latency",
            point.label,
            bad.id,
            bad.total_nanos(),
            bad.finish.saturating_since(bad.arrival).as_nanos()
        )));
    }
    Ok(point)
}

fn validation_error(what: String) -> DeviceError {
    DeviceError::Unsupported {
        what: Box::leak(what.into_boxed_str()),
    }
}

/// Runs the map-budget sweep and checks the headline result: under a
/// GC-active watermark some of the p99.9 tail is blamed on GC on every
/// point, and the demand-paged points blame map I/O where the resident
/// point cannot.
pub fn run(scale: Scale) -> Result<LatencyBlame, DeviceError> {
    let mut points = Vec::new();
    for map_budget in budgets(scale) {
        points.push(run_point(scale, map_budget)?);
    }
    for point in &points {
        if point.tail_share(BlameCat::GcWait) <= 0.0 {
            return Err(validation_error(format!(
                "{}: GC-active run blames no tail latency on GC",
                point.label
            )));
        }
        let map_blamed: f64 = point
            .report
            .class("all")
            .map_or(0.0, |c| c.blamed_us[BlameCat::Map.index()]);
        if point.map_budget.is_some() && map_blamed <= 0.0 {
            return Err(validation_error(format!(
                "{}: demand-paged run blames nothing on map I/O",
                point.label
            )));
        }
        if point.map_budget.is_none() && map_blamed > 0.0 {
            return Err(validation_error(format!(
                "{}: resident mapping cannot do map I/O yet map blame is nonzero",
                point.label
            )));
        }
    }
    Ok(LatencyBlame { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_blames_gc_and_map_exactly() {
        let blame = run(Scale::Quick).expect("latency blame sweep");
        assert_eq!(blame.points.len(), 3);
        for point in &blame.points {
            assert!(point.completions > 0);
            let all = point.report.class("all").expect("all row");
            assert_eq!(all.count as usize, point.completions);
            assert!(all.p50_us <= all.p99_us && all.p99_us <= all.p999_us);
            assert!(all.p999_us <= all.p9999_us);
            assert!(all.tail_count > 0);
            // run() already asserted GC shows up in the tail; the shares
            // must also be a distribution over the tail set.
            let share_sum: f64 = BlameCat::ALL.iter().map(|&c| point.tail_share(c)).sum();
            assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
            // Both artifacts render and the counters parse as JSON.
            assert!(point.blame_csv.lines().count() >= 2);
            ossd_telemetry::json::Value::parse(&point.counters_json).expect("counters parse");
        }
        // The starved budget must shift blame toward map I/O relative to
        // the generous one.
        let generous = &blame.points[1];
        let starved = &blame.points[2];
        let map_us = |p: &LatencyBlamePoint| {
            p.report
                .class("all")
                .map_or(0.0, |c| c.blamed_us[BlameCat::Map.index()])
        };
        assert!(
            map_us(starved) > map_us(generous),
            "starved budget blames less map time ({} us) than generous ({} us)",
            map_us(starved),
            map_us(generous)
        );
    }
}
