//! Device-lifetime experiment: write a device to end-of-life under a
//! seeded fault model and report TBW, lifetime, wear-out and error-rate
//! metrics per over-provisioning × cleaning policy × wear-leveling.
//!
//! The paper argues the device must hide flash's failure modes — bounded
//! erase endurance, grown bad blocks, raw bit errors — behind remapping
//! and ECC (§2).  This experiment measures the consequence: with the
//! reliability subsystem's wear-out fault model installed
//! ([`ossd_flash::FaultConfig::wearout`]), erase and program failures
//! accelerate as blocks pass their rated endurance, the bad-block manager
//! retires grown bad blocks, and the device dies when its spare blocks are
//! exhausted (writes can no longer allocate) or its uncorrectable
//! bit-error rate crosses the acceptance threshold.
//!
//! Write amplification is the exchange rate between host writes and
//! endurance consumption (Dayan et al., *Modelling and Managing SSD
//! Write-amplification*): more over-provisioning → lower WA → more total
//! bytes written (TBW) before the same erase budget runs out.  The sweep
//! makes that link measurable — TBW grows monotonically with
//! over-provisioning, and cleaning policies with different WA curves reach
//! end-of-life at measurably different TBW.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{CleaningPolicyKind, FtlConfig};
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

use super::Scale;

/// Why a lifetime run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EndOfLife {
    /// A write could no longer allocate: grown bad blocks consumed the
    /// spare pool.
    SparesExhausted,
    /// The cumulative uncorrectable bit-error rate crossed
    /// [`UBER_THRESHOLD`].
    UberExceeded,
    /// The write budget ran out before the device died (a healthy device
    /// at this fault rate).
    BudgetExhausted,
}

impl EndOfLife {
    /// Short name for CSV/report output.
    pub fn name(&self) -> &'static str {
        match self {
            EndOfLife::SparesExhausted => "spares",
            EndOfLife::UberExceeded => "uber",
            EndOfLife::BudgetExhausted => "budget",
        }
    }
}

/// Uncorrectable-bit-error-rate acceptance threshold (errors per bit
/// read).  Real datasheets quote 1e-15..1e-17; the experiment's fault
/// rates are compressed so a toy device dies in simulated minutes, and the
/// threshold is compressed to match.
pub const UBER_THRESHOLD: f64 = 1e-7;

/// One lifetime run: a device written to end-of-life.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimePoint {
    /// Over-provisioning fraction of the run.
    pub overprovisioning: f64,
    /// Cleaning policy of the run.
    pub policy: CleaningPolicyKind,
    /// Whether explicit wear-leveling was enabled.
    pub wear_leveling: bool,
    /// Why the run ended.
    pub end: EndOfLife,
    /// Total bytes written by the host before end-of-life (TBW).
    pub tbw_bytes: u64,
    /// Simulated lifetime in seconds (arrival of the first write to the
    /// last completion).
    pub lifetime_secs: f64,
    /// Write amplification over the whole life.
    pub write_amplification: f64,
    /// Blocks retired by the bad-block manager (grown + factory bad).
    pub retired_blocks: u64,
    /// Page programs the fault model failed.
    pub program_fails: u64,
    /// Block erases the fault model failed.
    pub erase_fails: u64,
    /// ECC read retries over the run.
    pub read_retries: u64,
    /// Reads that stayed uncorrectable after every retry.
    pub uncorrectable_reads: u64,
    /// Cumulative uncorrectable bit-error rate (errors per bit read).
    pub uber: f64,
}

/// The over-provisioning fractions the sweep visits, ascending.
pub fn overprovisionings() -> [f64; 3] {
    [0.10, 0.20, 0.30]
}

/// The cleaning policies the sweep compares.
pub fn policies() -> [CleaningPolicyKind; 2] {
    [CleaningPolicyKind::Greedy, CleaningPolicyKind::CostBenefit]
}

fn geometry(scale: Scale) -> FlashGeometry {
    FlashGeometry {
        packages: 2,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: scale.count(32, 96) as u32,
        pages_per_block: scale.count(16, 32) as u32,
        page_bytes: 4096,
    }
}

/// Rated endurance of the test part: low enough that the burn-in reaches
/// wear-out within the write budget.
fn endurance(scale: Scale) -> u32 {
    scale.count(32, 96) as u32
}

fn device_config(
    scale: Scale,
    overprovisioning: f64,
    policy: CleaningPolicyKind,
    wear_leveling: bool,
) -> SsdConfig {
    let mut ftl = FtlConfig::default()
        .with_overprovisioning(overprovisioning)
        .with_watermarks(0.05, 0.02)
        .with_cleaning_policy(policy);
    // A deeper GC reserve doubles as the spare pool: a single grown bad
    // block must not consume the only erased block cleaning relies on, or
    // the element wedges on the first failure instead of surviving until
    // the spares are genuinely gone.
    ftl.gc_reserved_blocks = 3;
    // With a rated endurance of only a few dozen cycles, the default
    // 32-cycle spread bound would never trigger; bound the spread to a
    // quarter of the rating so the wear-leveling dimension is measurable.
    ftl.wear_leveling = if wear_leveling {
        Some(ossd_ftl::WearLevelConfig {
            max_erase_spread: (endurance(scale) / 4).max(2),
        })
    } else {
        None
    };
    SsdConfig {
        name: format!(
            "lifetime-{}-op{overprovisioning:.2}-wl{wear_leveling}",
            policy.name()
        ),
        geometry: geometry(scale),
        timing: FlashTiming {
            endurance: endurance(scale),
            ..FlashTiming::slc()
        },
        mapping: MappingKind::PageMapped,
        ftl,
        // The same fault seed for every configuration: runs differ only in
        // the policy knobs under test, not in their random draws' seed.
        reliability: ReliabilityConfig::wearout(0x11FE_711E),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Runs one configuration to end-of-life.
pub fn run_one(
    scale: Scale,
    overprovisioning: f64,
    policy: CleaningPolicyKind,
    wear_leveling: bool,
) -> Result<LifetimePoint, DeviceError> {
    let config = device_config(scale, overprovisioning, policy, wear_leveling);
    let mut ssd = Ssd::new(config).map_err(DeviceError::from)?;
    let logical_pages = ssd.capacity_bytes() / 4096;
    // Enough budget that the wear-out model, not the cap, ends the run.
    let write_budget = logical_pages * endurance(scale) as u64 * 4;
    let mut rng = SimRng::seed_from_u64(0x7B3A_11FE ^ (overprovisioning * 1000.0) as u64);
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut tbw_bytes = 0u64;
    let mut bits_read = 0u64;
    let mut end = EndOfLife::BudgetExhausted;
    // Fill once so the device runs at steady-state utilization, then churn
    // skewed overwrites — 80% of writes land on the hottest 20% of the
    // space — interleaving reads so the UBER is continuously sampled.
    // Skew is what separates the cleaning policies (cost-benefit
    // segregates cold data greedy keeps re-copying) and what gives
    // explicit wear-leveling cold blocks worth migrating.
    let hot_pages = (logical_pages / 5).max(1);
    'life: for step in 0..write_budget {
        let write_lpn = if step < logical_pages {
            step
        } else if rng.chance(0.8) {
            rng.next_u64_below(hot_pages)
        } else {
            hot_pages + rng.next_u64_below((logical_pages - hot_pages).max(1))
        };
        match ssd.submit(&BlockRequest::write(id, write_lpn * 4096, 4096, at)) {
            Ok(c) => {
                at = c.finish;
                tbw_bytes += 4096;
            }
            Err(_) => {
                end = EndOfLife::SparesExhausted;
                break 'life;
            }
        }
        id += 1;
        // One read per four writes, over the already-written space.
        if step.is_multiple_of(4) && step > 0 {
            let read_lpn = rng.next_u64_below(logical_pages.min(step));
            let c = ssd.submit(&BlockRequest::read(id, read_lpn * 4096, 4096, at))?;
            at = c.finish;
            id += 1;
            bits_read += 4096 * 8;
        }
        // Periodic UBER acceptance check, once enough reads accumulated.
        if step.is_multiple_of(256) && bits_read >= 1_000_000 {
            let un = ssd.stats().reliability.uncorrectable_reads;
            if un as f64 / bits_read as f64 > UBER_THRESHOLD {
                end = EndOfLife::UberExceeded;
                break 'life;
            }
        }
    }
    let stats = ssd.stats();
    Ok(LifetimePoint {
        overprovisioning,
        policy,
        wear_leveling,
        end,
        tbw_bytes,
        lifetime_secs: at.as_nanos() as f64 / 1e9,
        write_amplification: stats.write_amplification(),
        retired_blocks: stats.reliability.retired_blocks,
        program_fails: stats.reliability.program_fails,
        erase_fails: stats.reliability.erase_fails,
        read_retries: stats.reliability.read_retries,
        uncorrectable_reads: stats.reliability.uncorrectable_reads,
        uber: if bits_read == 0 {
            0.0
        } else {
            stats.reliability.uncorrectable_reads as f64 / bits_read as f64
        },
    })
}

/// Runs the full sweep: over-provisioning × policy × wear-leveling, in
/// ascending over-provisioning order within each (policy, wear-leveling)
/// series.
pub fn run(scale: Scale) -> Result<Vec<LifetimePoint>, DeviceError> {
    let mut points = Vec::new();
    for policy in policies() {
        for wear_leveling in [true, false] {
            for op in overprovisionings() {
                points.push(run_one(scale, op, policy, wear_leveling)?);
            }
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_grows_monotonically_with_overprovisioning() {
        let points = run(Scale::Quick).unwrap();
        assert_eq!(points.len(), 12);
        for p in &points {
            assert!(p.tbw_bytes > 0, "no bytes written before EOL");
            assert!(p.lifetime_secs > 0.0);
            assert!(p.write_amplification >= 1.0);
            assert!(
                p.end != EndOfLife::BudgetExhausted,
                "{}-op{}-wl{}: the wear-out model must end the run",
                p.policy.name(),
                p.overprovisioning,
                p.wear_leveling
            );
            assert!(
                p.retired_blocks > 0 || p.program_fails > 0 || p.uncorrectable_reads > 0,
                "end-of-life without any recorded media failure"
            );
        }
        // The acceptance criterion: within each (policy, wear-leveling)
        // series, TBW increases monotonically with over-provisioning —
        // lower write amplification stretches the same erase budget.
        for series in points.chunks(3) {
            assert!(
                series[0].tbw_bytes < series[1].tbw_bytes
                    && series[1].tbw_bytes < series[2].tbw_bytes,
                "{}-wl{}: TBW not monotone: {} / {} / {}",
                series[0].policy.name(),
                series[0].wear_leveling,
                series[0].tbw_bytes,
                series[1].tbw_bytes,
                series[2].tbw_bytes
            );
            assert!(
                series[0].write_amplification > series[2].write_amplification,
                "WA should fall with over-provisioning"
            );
        }
        // Policies must be measurably different: at the lowest
        // over-provisioning (where cleaning works hardest) greedy and
        // cost-benefit reach different TBW.
        let greedy = &points[0];
        let cost_benefit = &points[6];
        assert_eq!(greedy.policy, CleaningPolicyKind::Greedy);
        assert_eq!(cost_benefit.policy, CleaningPolicyKind::CostBenefit);
        let rel = (greedy.tbw_bytes as f64 - cost_benefit.tbw_bytes as f64).abs()
            / greedy.tbw_bytes as f64;
        assert!(
            rel > 1e-3,
            "policies indistinguishable: greedy {} vs cost-benefit {}",
            greedy.tbw_bytes,
            cost_benefit.tbw_bytes
        );
    }
}
