//! Demand-paged mapping sweep: hit rate, write amplification, bandwidth and
//! tail latency vs. map-cache budget × workload skew.
//!
//! Both FTLs historically held the full logical-to-physical table in
//! controller SRAM, which caps the geometry a real controller could ship:
//! at TB-class capacity the table alone is gigabytes.  The demand-paged
//! mapping subsystem (`ossd-mapcache`, threaded through `PageFtl`) stores
//! translation pages on flash and caches a budgeted subset of entries, so
//! every cache miss on a materialized translation page costs a real map
//! read and every dirty eviction costs a translation-page writeback — both
//! timed through the same element/bus queues as host traffic.
//!
//! This experiment measures that cost.  A device is filled over a working
//! region, then churned with single-page writes drawn either uniformly or
//! Zipf-skewed; each (budget × skew) cell reports the churn-phase map-cache
//! hit rate, effective write amplification (host + GC + map programs per
//! host page), host bandwidth and p99 service time, with a fully resident
//! table as the baseline row.  At paper scale the geometry is TB-class
//! (≥ 1 TiB logical span) and every budget keeps map SRAM at or below
//! 1/64th of the resident-table footprint — the regime where demand paging
//! is the only option.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{FtlConfig, MapCacheConfig};
use ossd_sim::{LatencyStats, SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

use super::Scale;

/// One measured cell: one cache budget at one workload skew.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapCachePoint {
    /// Map-cache entry budget; `None` is the fully resident baseline.
    pub budget_entries: Option<u64>,
    /// Zipf skew of the churn phase (0 = uniform).
    pub skew: f64,
    /// Churn-phase map-cache hit rate (1.0 for the resident baseline).
    pub hit_rate: f64,
    /// Effective write amplification over the churn phase: host, GC *and*
    /// translation-page programs per host page written.
    pub write_amplification: f64,
    /// Host write bandwidth over the churn phase, MB/s of simulated time.
    pub bandwidth_mb_s: f64,
    /// 99th-percentile churn service time, milliseconds.
    pub p99_ms: f64,
    /// Translation-page reads issued during the churn phase.
    pub map_reads: u64,
    /// Translation-page programs issued during the churn phase.
    pub map_writes: u64,
    /// Mapping bytes resident in controller SRAM at end of run.
    pub map_bytes_resident: u64,
    /// Bytes a fully resident table would occupy.
    pub map_bytes_total: u64,
}

impl MapCachePoint {
    /// Resident mapping SRAM as a fraction of the full-table footprint.
    pub fn sram_fraction(&self) -> f64 {
        if self.map_bytes_total == 0 {
            return 1.0;
        }
        self.map_bytes_resident as f64 / self.map_bytes_total as f64
    }
}

/// The workload skews the sweep crosses with every budget.
pub fn skews() -> [f64; 2] {
    [0.0, 0.9]
}

/// The cache budgets swept for a working region of `region_pages`, smallest
/// first.  The largest (a quarter of the region) still keeps SRAM far below
/// the resident table at paper scale.
pub fn budgets(region_pages: u64) -> [u64; 3] {
    [
        (region_pages / 64).max(1),
        (region_pages / 16).max(1),
        (region_pages / 4).max(1),
    ]
}

struct Config {
    geometry: FlashGeometry,
    /// Pages of the working region the churn touches (the fill phase writes
    /// exactly this region).
    region_pages: u64,
    /// Churn operations per cell.
    churn_ops: u64,
    /// Pages per fill request (large requests keep the fill cheap).
    fill_pages_per_request: u64,
}

fn config_for(scale: Scale) -> Config {
    match scale {
        // TB-class: 16 elements x 20480 blocks x 256 pages x 16 KiB =
        // 1.25 TiB raw, ~1.1 TiB logical after over-provisioning and the
        // reserved map area.  A resident table would need ~0.5 GiB of SRAM;
        // the largest swept budget sits under 1/64th of that.
        Scale::Paper => Config {
            geometry: FlashGeometry {
                packages: 8,
                dies_per_package: 2,
                planes_per_die: 1,
                blocks_per_plane: 20480,
                pages_per_block: 256,
                page_bytes: 16384,
            },
            region_pages: 2 * 1024 * 1024,
            churn_ops: 40_000,
            fill_pages_per_request: 64,
        },
        Scale::Quick => Config {
            geometry: FlashGeometry {
                packages: 2,
                dies_per_package: 1,
                planes_per_die: 1,
                blocks_per_plane: 128,
                pages_per_block: 32,
                page_bytes: 4096,
            },
            region_pages: 2048,
            churn_ops: 4_000,
            fill_pages_per_request: 8,
        },
    }
}

fn device_config(config: &Config, budget: Option<u64>) -> SsdConfig {
    let mut ftl = FtlConfig::default();
    if let Some(entries) = budget {
        ftl = ftl.with_map_cache(MapCacheConfig::default().with_budget(entries));
    }
    SsdConfig {
        name: "map-cache".to_string(),
        geometry: config.geometry,
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl,
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 2,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn run_one(config: &Config, budget: Option<u64>, skew: f64) -> Result<MapCachePoint, DeviceError> {
    let mut ssd = Ssd::new(device_config(config, budget)).map_err(DeviceError::from)?;
    let page = ssd.logical_page_bytes();
    let logical_pages = ssd.capacity_bytes() / page;
    let region = config.region_pages.min(logical_pages);

    // Fill phase: write the working region once, in large requests, so the
    // churn phase overwrites mapped pages (and, with a finite budget, hits
    // materialized translation pages).
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    let mut lpn = 0u64;
    while lpn < region {
        let pages = config.fill_pages_per_request.min(region - lpn);
        let c = ssd.submit(&BlockRequest::write(id, lpn * page, pages * page, at))?;
        at = c.finish;
        id += 1;
        lpn += pages;
    }

    let base = ssd.stats();
    let churn_start = at;
    let mut service = LatencyStats::new();
    let mut rng = SimRng::seed_from_u64(0x0DF7_15EED ^ (skew * 100.0) as u64);
    for _ in 0..config.churn_ops {
        let lpn = rng.zipf_usize(region as usize, skew) as u64;
        let c = ssd.submit(&BlockRequest::write(id, lpn * page, page, at))?;
        service.record(c.service_time());
        at = c.finish;
        id += 1;
    }
    let end = ssd.stats();

    // Churn-phase deltas.
    let host_pages = end.ftl.host_writes - base.ftl.host_writes;
    let programs = (end.ftl.pages_programmed_host + end.ftl.gc_pages_moved + end.map.map_writes)
        - (base.ftl.pages_programmed_host + base.ftl.gc_pages_moved + base.map.map_writes);
    let accesses = (end.map.hits + end.map.misses) - (base.map.hits + base.map.misses);
    let hits = end.map.hits - base.map.hits;
    let hit_rate = if accesses == 0 {
        1.0
    } else {
        hits as f64 / accesses as f64
    };
    let elapsed = at.saturating_since(churn_start);
    let bytes = config.churn_ops * page;
    Ok(MapCachePoint {
        budget_entries: budget,
        skew,
        hit_rate,
        write_amplification: programs as f64 / host_pages as f64,
        bandwidth_mb_s: bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12),
        p99_ms: service.percentile(99.0).as_nanos() as f64 / 1e6,
        map_reads: end.map.map_reads - base.map.map_reads,
        map_writes: end.map.map_writes - base.map.map_writes,
        map_bytes_resident: end.map.bytes_resident,
        map_bytes_total: end.map.bytes_total,
    })
}

/// Runs the sweep: for each skew, a fully resident baseline followed by
/// every cache budget in ascending order.
pub fn run(scale: Scale) -> Result<Vec<MapCachePoint>, DeviceError> {
    let config = config_for(scale);
    let mut points = Vec::new();
    for skew in skews() {
        points.push(run_one(&config, None, skew)?);
        for budget in budgets(config.region_pages) {
            points.push(run_one(&config, Some(budget), skew)?);
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_hold_at_quick_scale() {
        let points = run(Scale::Quick).unwrap();
        // 2 skews x (resident baseline + 3 budgets).
        assert_eq!(points.len(), 8);
        for skew in skews() {
            let cells: Vec<&MapCachePoint> = points.iter().filter(|p| p.skew == skew).collect();
            assert_eq!(cells.len(), 4);
            let baseline = cells[0];
            assert_eq!(baseline.budget_entries, None);
            assert!((baseline.hit_rate - 1.0).abs() < 1e-12);
            assert_eq!(baseline.map_reads + baseline.map_writes, 0);
            assert_eq!(baseline.map_bytes_resident, baseline.map_bytes_total);

            // Finite budgets: real map traffic, partial SRAM residency, and
            // hit rate monotone in the budget.
            for pair in cells[1..].windows(2) {
                assert!(pair[0].budget_entries.unwrap() < pair[1].budget_entries.unwrap());
                assert!(
                    pair[0].hit_rate <= pair[1].hit_rate + 1e-9,
                    "skew {skew}: hit rate not monotone ({} vs {})",
                    pair[0].hit_rate,
                    pair[1].hit_rate
                );
            }
            for cell in &cells[1..] {
                assert!(cell.hit_rate < 1.0);
                assert!(cell.map_writes > 0, "no translation-page writebacks");
                assert!(cell.map_bytes_resident < cell.map_bytes_total);
                assert!(cell.sram_fraction() < 1.0);
                assert!(cell.write_amplification >= 1.0);
                assert!(cell.bandwidth_mb_s > 0.0);
                assert!(cell.p99_ms > 0.0);
            }
            // Map traffic costs bandwidth: the resident baseline is at
            // least as fast as the most constrained cache.
            assert!(
                cells[1].bandwidth_mb_s <= baseline.bandwidth_mb_s * 1.001,
                "skew {skew}: smallest budget ({} MB/s) outran the resident \
                 table ({} MB/s)",
                cells[1].bandwidth_mb_s,
                baseline.bandwidth_mb_s
            );
        }
    }
}
