//! Drivers that regenerate the paper's tables and figures.
//!
//! Every experiment is a pure function of a [`Scale`] (and, internally, of
//! fixed seeds), so the benchmark binaries in `ossd-bench`, the integration
//! tests and the documentation all report the same numbers.
//!
//! | Paper result | Module | Driver |
//! |---|---|---|
//! | Table 1 (unwritten contract) | [`crate::contract`] | [`table1::run`] |
//! | Table 2 (seq/rand bandwidth) | [`table2`] | [`table2::run`] |
//! | §3.2 (SWTF vs FCFS) | [`swtf`] | [`swtf::run`] |
//! | Figure 2 (write-amplification saw-tooth) | [`figure2`] | [`figure2::run`] |
//! | Table 3 (aligned vs unaligned writes) | [`table3`] | [`table3::run`] |
//! | Table 4 (macro benchmarks with alignment) | [`table4`] | [`table4::run`] |
//! | Table 5 (informed cleaning) | [`table5`] | [`table5::run`] |
//! | Figure 3 / Table 6 (priority-aware cleaning) | [`figure3`] | [`figure3::run`] |
//!
//! Beyond the paper, [`policy_compare`] sweeps the pluggable cleaning
//! policies (`ossd-gc`) across device utilizations and validates the greedy
//! curve against the analytical write-amplification model,
//! [`parallelism_sweep`] measures bandwidth/latency as a function of the
//! controller queue depth and the element count — the parallelism the
//! event-driven engine unlocked — and [`multi_host`] measures aggregate
//! bandwidth and Jain-fairness across N initiator queue pairs arbitrated
//! round-robin through the queue-pair host interface.  [`trace_capture`]
//! replays an instrumented TPC-C slice with the cross-layer telemetry
//! recorder (`ossd-telemetry`) attached and exports a Perfetto-loadable
//! Chrome trace plus a metrics-CSV time-series.  [`lifetime`] writes
//! a device to end-of-life under the seeded fault model
//! (`ossd-reliability`) and reports TBW/lifetime/UBER per
//! over-provisioning × cleaning policy × wear-leveling.
//! [`fleet_sweep`] scales out to a multi-device striped array
//! (`ossd-fleet`): aggregate bandwidth per devices × threads × stripe
//! unit, plus a replica-failure → rebuild scenario reporting survivor
//! tail latency and rebuild bandwidth.  [`map_cache`] sweeps the
//! demand-paged mapping subsystem (`ossd-mapcache`): map-cache hit rate,
//! effective write amplification, bandwidth and p99 vs. cache budget ×
//! workload skew, on a TB-class geometry at paper scale.
//! [`latency_blame`] turns the latency-attribution subsystem
//! (`ossd_telemetry::attribution`) on a GC-active multi-initiator TPC-C
//! slice and reports, per request class, the p50/p99/p99.9/p99.99 tail and
//! the share of p99.9 latency blamed on GC, map I/O, fences, arbitration,
//! bus transfer and ECC retries, swept across demand-paged map budgets.

pub mod figure2;
pub mod figure3;
pub mod fleet_sweep;
pub mod latency_blame;
pub mod lifetime;
pub mod map_cache;
pub mod multi_host;
pub mod parallelism_sweep;
pub mod policy_compare;
pub mod swtf;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod trace_capture;

/// How much work an experiment does.
///
/// The shapes the paper reports (ratios, orderings, crossovers) are already
/// visible at `Quick` scale; `Paper` scale uses larger devices, regions and
/// request counts and is what the benchmark binaries run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Small devices and short workloads; suitable for unit/integration
    /// tests (runs in seconds).
    Quick,
    /// The full experiment configuration used by the bench harness.
    #[default]
    Paper,
}

impl Scale {
    /// Scales a request/transaction count.
    pub fn count(&self, quick: usize, paper: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// Scales a byte size.
    pub fn bytes(&self, quick: u64, paper: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selectors() {
        assert_eq!(Scale::Quick.count(10, 100), 10);
        assert_eq!(Scale::Paper.count(10, 100), 100);
        assert_eq!(Scale::Quick.bytes(1, 2), 1);
        assert_eq!(Scale::Paper.bytes(1, 2), 2);
        assert_eq!(Scale::default(), Scale::Paper);
    }
}
