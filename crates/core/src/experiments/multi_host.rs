//! Multi-initiator bandwidth/fairness sweep over the queue-pair interface.
//!
//! The queue-pair redesign gives every initiator its own
//! submission/completion pair, arbitrated round-robin into the controller
//! ([`ossd_block::HostInterface::serve`]).  This experiment drives N
//! initiators, each submitting an identical open stream of small random
//! reads over its own slice of a prefilled device, and sweeps the initiator
//! count × the controller queue depth, reporting:
//!
//! * aggregate bandwidth and latency percentiles (p50/p95/p99),
//! * per-initiator bandwidth spread (min/max), and
//! * Jain's fairness index across the per-initiator bandwidths — 1.0 means
//!   every initiator got an equal share of the device.
//!
//! With round-robin arbitration and symmetric load the device has no way to
//! starve an initiator, so fairness stays near 1 while aggregate bandwidth
//! follows the same queue-depth curve as the single-host parallelism sweep.

use ossd_block::{BlockRequest, DeviceError, HostInterface, HostQueue, ReplayReport};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

use super::Scale;

/// One measured point: one initiator count at one queue depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiHostPoint {
    /// Number of initiators (independent queue pairs).
    pub initiators: u32,
    /// Controller queue depth.
    pub queue_depth: u32,
    /// Aggregate read bandwidth across all initiators, MB/s.
    pub total_bandwidth_mbps: f64,
    /// Slowest initiator's bandwidth, MB/s.
    pub min_initiator_mbps: f64,
    /// Fastest initiator's bandwidth, MB/s.
    pub max_initiator_mbps: f64,
    /// Jain's fairness index over per-initiator bandwidths (1.0 = equal).
    pub fairness: f64,
    /// Aggregate mean response time, milliseconds.
    pub mean_ms: f64,
    /// Aggregate median response time, milliseconds.
    pub p50_ms: f64,
    /// Aggregate 95th-percentile response time, milliseconds.
    pub p95_ms: f64,
    /// Aggregate 99th-percentile response time, milliseconds.
    pub p99_ms: f64,
}

/// The initiator counts the experiment sweeps.
pub const INITIATOR_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// The controller queue depths the experiment sweeps.
pub const QUEUE_DEPTHS: [u32; 3] = [1, 4, 16];

fn device_config(scale: Scale, queue_depth: u32) -> SsdConfig {
    SsdConfig {
        name: format!("multi-host-qd{queue_depth}"),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.count(64, 256) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        // Same modern-speed shared channel as the parallelism sweep: 4 KB
        // reads stay element-bound, so the per-element queues are the
        // contended resource the arbitration shares out.
        timing: FlashTiming {
            bus_bytes_per_sec: 1_000_000_000,
            ..FlashTiming::slc()
        },
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default(),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Per-initiator open request stream: bursts of random 4 KB reads inside
/// the initiator's own slice of the prefilled region.  Every initiator uses
/// the same arrival schedule, so simultaneous submissions collide at the
/// arbitration point constantly — the worst case for fairness.
fn initiator_requests(
    scale: Scale,
    initiator: u32,
    slice_offset: u64,
    slice_pages: u64,
    base: SimTime,
) -> Vec<BlockRequest> {
    let bursts = scale.count(24, 120) as u64;
    let burst = 8u64;
    let gap_micros = 200u64;
    let mut rng = SimRng::seed_from_u64(0xFA1E_0000 + initiator as u64);
    let mut out = Vec::new();
    for b in 0..bursts {
        let at = base + SimDuration::from_micros(b * gap_micros);
        for k in 0..burst {
            let page = rng.next_u64_below(slice_pages);
            out.push(BlockRequest::read(
                b * burst + k,
                slice_offset + page * 4096,
                4096,
                at,
            ));
        }
    }
    out
}

/// Jain's fairness index: `(Σx)² / (n · Σx²)`, 1.0 when all equal.
pub fn jain_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sq)
}

fn run_point(
    scale: Scale,
    initiators: u32,
    queue_depth: u32,
) -> Result<MultiHostPoint, DeviceError> {
    let mut ssd = Ssd::new(device_config(scale, queue_depth)).map_err(DeviceError::from)?;
    let region = (ossd_block::BlockDevice::capacity_bytes(&ssd) / 2).min(16 * 1024 * 1024);
    let chunk = 64 * 1024;
    // Closed-loop prefill so every initiator's reads find mapped data.
    let mut at = SimTime::ZERO;
    for i in 0..region / chunk {
        let c = ossd_block::BlockDevice::submit(
            &mut ssd,
            &BlockRequest::write(1_000_000 + i, i * chunk, chunk, at),
        )?;
        at = c.finish;
    }
    let base = at + SimDuration::from_millis(1);

    // One queue pair per initiator over a disjoint slice of the region.
    let slice_pages = (region / 4096) / initiators as u64;
    let mut queues = vec![HostQueue::new(); initiators as usize];
    let mut requests: Vec<Vec<BlockRequest>> = Vec::new();
    for i in 0..initiators {
        let reqs = initiator_requests(scale, i, i as u64 * slice_pages * 4096, slice_pages, base);
        for r in &reqs {
            queues[i as usize].submit_request(r);
        }
        requests.push(reqs);
    }
    ssd.serve(&mut queues)?;

    // Per-initiator reports from each completion queue.
    let mut aggregate = ReplayReport::default();
    let mut per_initiator_mbps = Vec::new();
    for (i, queue) in queues.iter_mut().enumerate() {
        let mut report = ReplayReport::default();
        for completion in queue.drain_completions() {
            let request = &requests[i][completion.request_id as usize];
            report.record(request, &completion);
            aggregate.record(request, &completion);
        }
        per_initiator_mbps.push(report.read_bandwidth_mbps());
    }
    let percentiles = aggregate.percentiles().all;
    Ok(MultiHostPoint {
        initiators,
        queue_depth,
        total_bandwidth_mbps: aggregate.read_bandwidth_mbps(),
        min_initiator_mbps: per_initiator_mbps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        max_initiator_mbps: per_initiator_mbps.iter().copied().fold(0.0, f64::max),
        fairness: jain_fairness(&per_initiator_mbps),
        mean_ms: aggregate.all.mean_millis(),
        p50_ms: percentiles.p50_ms,
        p95_ms: percentiles.p95_ms,
        p99_ms: percentiles.p99_ms,
    })
}

/// Runs the sweep: every initiator count at every queue depth.
pub fn run(scale: Scale) -> Result<Vec<MultiHostPoint>, DeviceError> {
    let mut out = Vec::new();
    for &initiators in &INITIATOR_COUNTS {
        for &depth in &QUEUE_DEPTHS {
            out.push(run_point(scale, initiators, depth)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_arbitration_is_fair_under_symmetric_load() {
        let p = run_point(Scale::Quick, 4, 4).unwrap();
        assert_eq!(p.initiators, 4);
        assert!(
            p.fairness > 0.95,
            "fairness {:.3} too low (min {:.1}, max {:.1} MB/s)",
            p.fairness,
            p.min_initiator_mbps,
            p.max_initiator_mbps
        );
        assert!(p.min_initiator_mbps > 0.0);
        assert!(p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms);
    }

    #[test]
    fn queue_depth_scales_aggregate_bandwidth() {
        let qd1 = run_point(Scale::Quick, 4, 1).unwrap();
        let qd16 = run_point(Scale::Quick, 4, 16).unwrap();
        let scaling = qd16.total_bandwidth_mbps / qd1.total_bandwidth_mbps;
        assert!(
            scaling > 1.5,
            "qd 1 -> 16 with 4 initiators scaled only {scaling:.2}x \
             ({:.1} -> {:.1} MB/s)",
            qd1.total_bandwidth_mbps,
            qd16.total_bandwidth_mbps
        );
    }

    #[test]
    fn full_sweep_covers_the_grid() {
        let points = run(Scale::Quick).unwrap();
        assert_eq!(points.len(), INITIATOR_COUNTS.len() * QUEUE_DEPTHS.len());
        for p in &points {
            assert!(p.total_bandwidth_mbps > 0.0);
            assert!(p.fairness > 0.0 && p.fairness <= 1.0 + 1e-9);
            assert!(p.max_initiator_mbps >= p.min_initiator_mbps);
        }
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One initiator hogging everything: index collapses towards 1/n.
        let skewed = jain_fairness(&[100.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
