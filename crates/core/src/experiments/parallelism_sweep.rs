//! Queue-depth × element-count parallelism sweep.
//!
//! The paper's §3.2 premise is that an SSD is a collection of parallel
//! elements with independent queues; the engine refactor makes that premise
//! measurable.  This experiment drives a page-mapped device with an open
//! stream of small random reads at saturating arrival rates and sweeps
//!
//! * the NCQ-style controller queue depth (`SsdConfig::queue_depth`,
//!   1–32), and
//! * the number of flash elements (packages) behind one shared gang bus,
//!
//! reporting bandwidth and response-time statistics per point.  At depth 1
//! the controller commits to one request at a time (the pre-engine
//! behaviour): whenever a burst request targets a busy die, the rest of the
//! burst — aimed at idle dies — waits behind it, and the offered load
//! outruns the dispatch pipeline.  As the depth grows, requests overlap
//! across elements and bandwidth climbs until the shared gang bus saturates
//! — more depth then only adds queueing delay, which is the classic
//! throughput/latency knee.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{LatencyStats, SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

use super::Scale;

/// One measured point: one element count at one queue depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelismPoint {
    /// Number of flash elements (dies) in the device.
    pub elements: u32,
    /// Controller queue depth.
    pub queue_depth: u32,
    /// Read bandwidth over the open phase, MB/s of simulated time.
    pub bandwidth_mbps: f64,
    /// Mean response time, milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile response time, milliseconds.
    pub p99_ms: f64,
    /// High-water mark of the busiest per-element dispatch queue.
    pub peak_element_queue: usize,
}

/// The queue depths the experiment sweeps (NCQ depths 1–32).
pub const QUEUE_DEPTHS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// The element counts the experiment sweeps.
pub const ELEMENT_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn device_config(scale: Scale, elements: u32, queue_depth: u32) -> SsdConfig {
    SsdConfig {
        name: format!("sweep-e{elements}-qd{queue_depth}"),
        geometry: FlashGeometry {
            packages: elements,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.count(64, 256) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        // A modern-speed shared channel (ONFI/Toggle-class, 1 GB/s) keeps
        // 4 KB reads element-bound (25 µs array vs ~4 µs transfer): the
        // contended resource is the die, which is what per-element queues
        // arbitrate.  All elements still share the one bus, so it remains
        // the ceiling the sweep saturates at high depth.
        timing: FlashTiming {
            bus_bytes_per_sec: 1_000_000_000,
            ..FlashTiming::slc()
        },
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default(),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// Bursty open-arrival random reads over a prefilled region, starting at
/// `base`: batches of 32 simultaneous requests (an NCQ-style command burst)
/// arriving faster than a depth-1 controller can dispatch them.  Within a
/// burst several requests inevitably target the same element; at queue
/// depth 1 the controller commits to each request until it starts on that
/// element, so the rest of the burst — aimed at idle elements — waits
/// behind it and the controller queue grows without bound.  Deeper queues
/// dispatch the whole burst, let the per-element queues arbitrate, and keep
/// up with the offered load until the shared bus saturates.
fn read_trace(scale: Scale, region: u64, base: SimTime) -> Vec<BlockRequest> {
    let bursts = scale.count(48, 250) as u64;
    let burst = 32u64;
    let gap_micros = 150u64;
    let pages = region / 4096;
    let mut rng = SimRng::seed_from_u64(0x5CA1_AB1E);
    let mut out = Vec::new();
    for b in 0..bursts {
        let at = base + SimDuration::from_micros(b * gap_micros);
        for k in 0..burst {
            let page = rng.next_u64_below(pages);
            out.push(BlockRequest::read(b * burst + k, page * 4096, 4096, at));
        }
    }
    out
}

fn run_point(
    scale: Scale,
    elements: u32,
    queue_depth: u32,
) -> Result<ParallelismPoint, DeviceError> {
    let mut ssd =
        Ssd::new(device_config(scale, elements, queue_depth)).map_err(DeviceError::from)?;
    let region = (ssd.capacity_bytes() / 2).min(16 * 1024 * 1024);
    let chunk = 64 * 1024;
    // Closed-loop prefill so the measured phase starts on a drained device.
    let mut at = SimTime::ZERO;
    for i in 0..region / chunk {
        let c = ssd.submit(&BlockRequest::write(100_000 + i, i * chunk, chunk, at))?;
        at = c.finish;
    }
    let requests = read_trace(scale, region, at + SimDuration::from_millis(1));
    let completions = ssd
        .simulate_open(&requests, SchedulerKind::Fcfs)
        .map_err(DeviceError::from)?;

    let mut latency = LatencyStats::new();
    let mut first = SimTime::MAX;
    let mut last = SimTime::ZERO;
    for c in &completions {
        latency.record(c.response_time());
        first = first.min(c.arrival);
        last = last.max(c.finish);
    }
    let bytes = requests.len() as u64 * 4096;
    let elapsed = last.saturating_since(first);
    let peak = ssd
        .element_queues()
        .iter()
        .map(|q| q.peak_queued())
        .max()
        .unwrap_or(0);
    Ok(ParallelismPoint {
        elements,
        queue_depth,
        bandwidth_mbps: bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12),
        mean_ms: latency.mean_millis(),
        p99_ms: latency.percentile(99.0).as_millis_f64(),
        peak_element_queue: peak,
    })
}

/// Runs the sweep: every element count at every queue depth.
pub fn run(scale: Scale) -> Result<Vec<ParallelismPoint>, DeviceError> {
    let mut out = Vec::new();
    for &elements in &ELEMENT_COUNTS {
        for &depth in &QUEUE_DEPTHS {
            out.push(run_point(scale, elements, depth)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(points: &[ParallelismPoint], elements: u32, depth: u32) -> ParallelismPoint {
        *points
            .iter()
            .find(|p| p.elements == elements && p.queue_depth == depth)
            .unwrap()
    }

    #[test]
    fn queue_depth_scales_bandwidth_on_a_multi_element_device() {
        let points: Vec<ParallelismPoint> = QUEUE_DEPTHS
            .iter()
            .map(|&d| run_point(Scale::Quick, 8, d).unwrap())
            .collect();
        let qd1 = points.iter().find(|p| p.queue_depth == 1).unwrap();
        let qd8 = points.iter().find(|p| p.queue_depth == 8).unwrap();
        // The acceptance criterion of the engine refactor: depth 8 must beat
        // depth 1 by a clear margin on an 8-element device.
        let scaling = qd8.bandwidth_mbps / qd1.bandwidth_mbps;
        assert!(
            scaling > 1.5,
            "queue depth 1 -> 8 scaled bandwidth only {scaling:.2}x \
             ({:.1} -> {:.1} MB/s)",
            qd1.bandwidth_mbps,
            qd8.bandwidth_mbps
        );
        // Under this offered load the depth-1 pipeline falls behind, so the
        // whole latency distribution improves with depth: head-of-line
        // blocking is a latency problem too.
        assert!(qd8.mean_ms < qd1.mean_ms);
        assert!(qd8.p99_ms < qd1.p99_ms);
        // Deeper dispatch windows push more ops into the element queues.
        assert!(qd8.peak_element_queue >= qd1.peak_element_queue);
    }

    #[test]
    fn single_element_devices_gain_little_from_depth() {
        let points: Vec<ParallelismPoint> = [1u32, 8]
            .iter()
            .map(|&d| run_point(Scale::Quick, 1, d).unwrap())
            .collect();
        let ratio = points[1].bandwidth_mbps / points[0].bandwidth_mbps;
        // One element serializes everything; depth can only pipeline the
        // controller overhead, not the flash array.
        assert!(
            ratio < 2.0,
            "single-element device should not scale with depth, got {ratio:.2}x"
        );
    }

    #[test]
    fn full_sweep_covers_the_grid() {
        let points = run(Scale::Quick).unwrap();
        assert_eq!(points.len(), QUEUE_DEPTHS.len() * ELEMENT_COUNTS.len());
        for p in &points {
            assert!(p.bandwidth_mbps > 0.0);
            assert!(p.mean_ms > 0.0);
            assert!(p.p99_ms >= p.mean_ms * 0.5);
        }
        // More elements help at high depth.
        let wide = point(&points, 8, 8);
        let narrow = point(&points, 1, 8);
        assert!(wide.bandwidth_mbps > narrow.bandwidth_mbps);
    }
}
