//! Cleaning-policy comparison: write amplification and bandwidth vs.
//! device utilization, per policy.
//!
//! The paper argues cleaning belongs in the device (§2, §3.5) but evaluates
//! only one cleaner.  This experiment runs the same page-mapped device
//! across every [`CleaningPolicyKind`] — greedy, cost-benefit, cost-age and
//! windowed-greedy — at several device utilizations (live fraction of
//! physical space, i.e. `1 − over-provisioning` once the device is full),
//! under steady uniform-random overwrite churn.
//!
//! Uniform random churn is the regime the analytical write-amplification
//! models cover (Desnoyers; Dayan et al., *Modelling and Managing SSD
//! Write-amplification*): greedy cleaning converges to
//! `WA ≈ 1 / (2·(1 − u))`.  Each measured greedy point is validated against
//! that curve ([`analytic_greedy_wa`]); the other policies report their own
//! curves, which differ because victim selection weighs block age and wear,
//! not just staleness.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::{CleaningPolicyKind, FtlConfig};
use ossd_gc::{analytic_greedy_wa, WriteAmpAccounting};
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};

use super::Scale;

/// One measured point: one policy at one device utilization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyComparePoint {
    /// Device utilization (live fraction of physical pages).
    pub utilization: f64,
    /// Measured write amplification over the steady-state churn phase.
    pub write_amplification: f64,
    /// The analytical greedy prediction at this utilization (reference
    /// curve; meaningful as a validation target for the greedy policy).
    pub analytic_greedy: f64,
    /// Host write bandwidth over the churn phase, in MB/s of simulated
    /// time.
    pub bandwidth_mb_s: f64,
    /// Host-visible cleaning stall during the churn phase, in milliseconds
    /// of simulated time.
    pub cleaning_stall_ms: f64,
    /// Blocks erased during the churn phase.
    pub blocks_erased: u64,
    /// The full ledger for the churn phase.
    pub accounting: WriteAmpAccounting,
}

/// The measured curve of one policy across all utilizations.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyCurve {
    /// The policy.
    pub policy: CleaningPolicyKind,
    /// One point per utilization, in ascending utilization order.
    pub points: Vec<PolicyComparePoint>,
}

/// The device utilizations the experiment sweeps.
pub fn utilizations() -> [f64; 3] {
    [0.70, 0.80, 0.90]
}

fn geometry(scale: Scale) -> FlashGeometry {
    FlashGeometry {
        packages: 2,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: scale.count(64, 256) as u32,
        pages_per_block: scale.count(32, 64) as u32,
        page_bytes: 4096,
    }
}

fn device_config(scale: Scale, policy: CleaningPolicyKind, utilization: f64) -> SsdConfig {
    SsdConfig {
        name: format!("policy-compare-{}-{utilization:.2}", policy.name()),
        geometry: geometry(scale),
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        // Utilization is fixed by over-provisioning: once the whole logical
        // space has been written, the live fraction of physical space stays
        // at 1 − OP.  Wear-leveling is disabled so the curves isolate the
        // cleaning policy (its migrations would blur the comparison).
        ftl: FtlConfig::default()
            .with_overprovisioning(1.0 - utilization)
            .with_watermarks(0.05, 0.02)
            .with_cleaning_policy(policy)
            .without_wear_leveling(),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn run_one(
    scale: Scale,
    policy: CleaningPolicyKind,
    utilization: f64,
) -> Result<PolicyComparePoint, DeviceError> {
    let mut ssd = Ssd::new(device_config(scale, policy, utilization)).map_err(DeviceError::from)?;
    let logical_pages = ssd.capacity_bytes() / 4096;
    let mut id = 0u64;
    let mut at = SimTime::ZERO;
    // Fill phase: write the whole logical space once so the device reaches
    // its steady-state utilization.
    for lpn in 0..logical_pages {
        let c = ssd.submit(&BlockRequest::write(id, lpn * 4096, 4096, at))?;
        id += 1;
        at = c.finish;
    }
    let base = ssd.stats();
    let churn_start = at;
    // Churn phase: closed-loop uniform random overwrites, several times the
    // logical space, so cleaning reaches steady state and dominates.
    let churn_writes = logical_pages * scale.count(3, 5) as u64;
    let mut rng = SimRng::seed_from_u64(0x9C11_C0DE ^ (utilization * 100.0) as u64);
    for _ in 0..churn_writes {
        let lpn = rng.next_u64_below(logical_pages);
        let c = ssd.submit(&BlockRequest::write(id, lpn * 4096, 4096, at))?;
        id += 1;
        at = c.finish;
    }
    let end = ssd.stats();

    // Churn-phase deltas.
    let host_writes = end.ftl.host_writes - base.ftl.host_writes;
    let programs = (end.ftl.pages_programmed_host + end.ftl.gc_pages_moved)
        - (base.ftl.pages_programmed_host + base.ftl.gc_pages_moved);
    let write_amplification = programs as f64 / host_writes as f64;
    let stall = end.cleaning_busy.saturating_sub(base.cleaning_busy);
    let elapsed = at.saturating_since(churn_start);
    let bytes = churn_writes * 4096;
    let bandwidth_mb_s = bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12);

    let mut accounting = end.accounting();
    let base_acct = base.accounting();
    accounting.host_pages -= base_acct.host_pages;
    accounting.host_programs -= base_acct.host_programs;
    accounting.cleaning_moves -= base_acct.cleaning_moves;
    accounting.cleaning_erases -= base_acct.cleaning_erases;
    accounting.stall_nanos -= base_acct.stall_nanos;

    Ok(PolicyComparePoint {
        utilization,
        write_amplification,
        analytic_greedy: analytic_greedy_wa(utilization),
        bandwidth_mb_s,
        cleaning_stall_ms: stall.as_secs_f64() * 1e3,
        blocks_erased: end.ftl.gc_blocks_erased - base.ftl.gc_blocks_erased,
        accounting,
    })
}

/// Runs the comparison: every policy at every utilization.
pub fn run(scale: Scale) -> Result<Vec<PolicyCurve>, DeviceError> {
    CleaningPolicyKind::all()
        .into_iter()
        .map(|policy| {
            let points = utilizations()
                .into_iter()
                .map(|u| run_one(scale, policy, u))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(PolicyCurve { policy, points })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_curves_are_distinct_monotonic_and_match_theory() {
        let curves = run(Scale::Quick).unwrap();
        assert_eq!(curves.len(), 4);
        for curve in &curves {
            assert_eq!(curve.points.len(), 3);
            for p in &curve.points {
                assert!(
                    p.write_amplification >= 1.0,
                    "{}@{}: WA {} below 1",
                    curve.policy.name(),
                    p.utilization,
                    p.write_amplification
                );
                assert!(p.bandwidth_mb_s > 0.0);
                assert!(p.blocks_erased > 0, "cleaning never ran");
            }
            // Write amplification grows with utilization for every policy.
            assert!(
                curve.points[0].write_amplification < curve.points[2].write_amplification,
                "{}: WA not increasing with utilization",
                curve.policy.name()
            );
            // More cleaning means less bandwidth at high utilization.
            assert!(
                curve.points[2].bandwidth_mb_s < curve.points[0].bandwidth_mb_s,
                "{}: bandwidth not decreasing with utilization",
                curve.policy.name()
            );
        }

        // The measured greedy curve tracks the analytical model within a
        // factor of two (the closed form is exact only in the large-block,
        // exact-steady-state limit).
        let greedy = curves
            .iter()
            .find(|c| c.policy == CleaningPolicyKind::Greedy)
            .unwrap();
        for p in &greedy.points {
            let ratio = p.write_amplification / p.analytic_greedy;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "greedy@{}: measured {} vs analytic {} (ratio {ratio})",
                p.utilization,
                p.write_amplification,
                p.analytic_greedy
            );
        }

        // At the highest utilization at least three policies must report
        // distinct write-amplification values (the acceptance criterion of
        // the policy subsystem: the experiment separates policies).
        let mut high: Vec<f64> = curves
            .iter()
            .map(|c| c.points[2].write_amplification)
            .collect();
        high.sort_by(|a, b| a.partial_cmp(b).unwrap());
        high.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(
            high.len() >= 3,
            "fewer than 3 distinct WA values at u=0.9: {high:?}"
        );
    }
}
