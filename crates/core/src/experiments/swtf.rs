//! §3.2: shortest-wait-time-first scheduling versus FCFS.
//!
//! The paper's preliminary analysis runs a synthetic random workload with
//! two-thirds reads and one-third writes and reports that SWTF improves the
//! average response time by about 8% over FCFS.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{improvement_percent, SimDuration, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_workload::SyntheticConfig;

use super::Scale;

/// Result of the scheduler comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwtfResult {
    /// Mean response time under FCFS, in milliseconds.
    pub fcfs_mean_ms: f64,
    /// Mean response time under SWTF, in milliseconds.
    pub swtf_mean_ms: f64,
}

impl SwtfResult {
    /// Response-time improvement of SWTF over FCFS, in percent.
    pub fn improvement_pct(&self) -> f64 {
        improvement_percent(self.fcfs_mean_ms, self.swtf_mean_ms)
    }
}

/// A page-mapped SSD with several independently schedulable elements — the
/// configuration where per-element queue-wait knowledge pays off.
fn device_config(scale: Scale) -> SsdConfig {
    SsdConfig {
        name: "swtf-testbed".to_string(),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.bytes(64, 256) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming {
            bus_bytes_per_sec: 100_000_000,
            ..FlashTiming::slc()
        },
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default(),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 4,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn prefill(ssd: &mut Ssd, region: u64) -> Result<(), DeviceError> {
    let chunk = 256 * 1024;
    for i in 0..region / chunk {
        ssd.submit(&BlockRequest::write(i, i * chunk, chunk, SimTime::ZERO))?;
    }
    Ok(())
}

/// Runs the FCFS vs SWTF comparison.
pub fn run(scale: Scale) -> Result<SwtfResult, DeviceError> {
    let region = scale.bytes(16 * 1024 * 1024, 48 * 1024 * 1024);
    let count = scale.count(4000, 20_000);
    let workload = SyntheticConfig::swtf_workload(count, region, SimDuration::from_micros(55));
    let requests = workload.generate().to_requests();

    let mut mean_ms = [0.0f64; 2];
    for (i, scheduler) in [SchedulerKind::Fcfs, SchedulerKind::Swtf]
        .iter()
        .enumerate()
    {
        let mut ssd = Ssd::new(device_config(scale)).map_err(DeviceError::from)?;
        prefill(&mut ssd, region)?;
        let completions = ssd
            .simulate_open(&requests, *scheduler)
            .map_err(DeviceError::from)?;
        let total: f64 = completions
            .iter()
            .map(|c| c.response_time().as_millis_f64())
            .sum();
        mean_ms[i] = total / completions.len() as f64;
    }
    Ok(SwtfResult {
        fcfs_mean_ms: mean_ms[0],
        swtf_mean_ms: mean_ms[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swtf_improves_over_fcfs() {
        let result = run(Scale::Quick).unwrap();
        assert!(result.fcfs_mean_ms > 0.0);
        assert!(result.swtf_mean_ms > 0.0);
        let improvement = result.improvement_pct();
        // The paper reports ≈8%; accept anything clearly positive and not
        // absurdly large.
        assert!(
            improvement > 1.0,
            "SWTF should improve response time, got {improvement:.2}%"
        );
        assert!(
            improvement < 60.0,
            "improvement {improvement:.2}% implausible"
        );
    }
}
