//! Table 1: the unwritten contract, evaluated against a disk and an SSD.
//!
//! This driver wraps [`crate::contract`] so the bench harness and tests can
//! regenerate the Disk and SSD columns of Table 1 (the RAID and MEMS
//! columns of the paper are literature summaries, not measurements, and are
//! out of scope).

use ossd_block::DeviceError;
use ossd_flash::FlashGeometry;
use ossd_ftl::FtlConfig;
use ossd_hdd::HddConfig;
use ossd_ssd::{MappingKind, SsdConfig};

use crate::contract::{evaluate_hdd, evaluate_ssd, ContractReport};

use super::Scale;

/// The Disk and SSD columns of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Result {
    /// Contract evaluation for the simulated disk.
    pub hdd: ContractReport,
    /// Contract evaluation for a page-mapped SSD.
    pub ssd_page_mapped: ContractReport,
    /// Contract evaluation for a low-end stripe-mapped SSD (shows the
    /// write-amplification violation most clearly).
    pub ssd_stripe_mapped: ContractReport,
}

fn ssd_config(scale: Scale, mapping: MappingKind) -> SsdConfig {
    let mut config = SsdConfig::tiny_page_mapped();
    config.geometry = FlashGeometry {
        packages: 4,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: scale.bytes(128, 256) as u32,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    config.gangs = 2;
    config.mapping = mapping;
    config.ftl = FtlConfig::default();
    config.name = match mapping {
        MappingKind::PageMapped => "SSD (page-mapped)".to_string(),
        MappingKind::StripeMapped { .. } => "SSD (stripe-mapped)".to_string(),
    };
    config
}

/// Runs the Table 1 evaluation.
pub fn run(scale: Scale) -> Result<Table1Result, DeviceError> {
    let hdd = evaluate_hdd(HddConfig::barracuda_7200())?;
    let ssd_page_mapped = evaluate_ssd(ssd_config(scale, MappingKind::PageMapped))?;
    let ssd_stripe_mapped = evaluate_ssd(ssd_config(
        scale,
        MappingKind::StripeMapped {
            stripe_bytes: 64 * 1024,
            coalesce: true,
        },
    ))?;
    Ok(Table1Result {
        hdd,
        ssd_page_mapped,
        ssd_stripe_mapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::ContractTerm;

    #[test]
    fn disk_mostly_satisfies_ssd_mostly_violates() {
        let result = run(Scale::Quick).unwrap();
        assert!(result.hdd.satisfied_count() >= 5);
        assert!(result.ssd_page_mapped.satisfied_count() <= 4);
        // The headline violations the paper highlights:
        assert!(
            !result
                .ssd_page_mapped
                .verdict(ContractTerm::SequentialFasterThanRandom)
                .unwrap()
                .holds
        );
        assert!(
            !result
                .ssd_page_mapped
                .verdict(ContractTerm::MediaDoesNotWear)
                .unwrap()
                .holds
        );
        assert!(
            !result
                .ssd_stripe_mapped
                .verdict(ContractTerm::NoWriteAmplification)
                .unwrap()
                .holds
        );
    }
}
