//! Table 2: ratio of sequential to random bandwidth for an HDD and the five
//! SSD device profiles.

use ossd_block::{replay_closed, BlockRequest, DeviceError, HostInterface};
use ossd_hdd::{Hdd, HddConfig};
use ossd_sim::SimTime;
use ossd_ssd::{DeviceProfile, Ssd};

use super::Scale;

/// One row of Table 2 (all bandwidths in MB/s).
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Device name as in the paper.
    pub device: String,
    /// Sequential read bandwidth.
    pub seq_read: f64,
    /// Random read bandwidth.
    pub rand_read: f64,
    /// Sequential write bandwidth.
    pub seq_write: f64,
    /// Random write bandwidth.
    pub rand_write: f64,
}

impl Table2Row {
    /// Sequential/random read ratio.
    pub fn read_ratio(&self) -> f64 {
        if self.rand_read > 0.0 {
            self.seq_read / self.rand_read
        } else {
            f64::INFINITY
        }
    }

    /// Sequential/random write ratio.
    pub fn write_ratio(&self) -> f64 {
        if self.rand_write > 0.0 {
            self.seq_write / self.rand_write
        } else {
            f64::INFINITY
        }
    }
}

/// Request size used for both the sequential and the random measurements.
/// The paper's S4slc_sim row (≈30 MB/s for both sequential and random
/// reads) is consistent with closed-loop 4 KB requests, so the same size is
/// used for every cell to keep the ratios comparable.
const IO_BYTES: u64 = 4096;

fn sequential(count: u64, size: u64, write: bool) -> Vec<BlockRequest> {
    (0..count)
        .map(|i| {
            if write {
                BlockRequest::write(i, i * size, size, SimTime::ZERO)
            } else {
                BlockRequest::read(i, i * size, size, SimTime::ZERO)
            }
        })
        .collect()
}

fn scattered(count: u64, size: u64, span: u64, write: bool) -> Vec<BlockRequest> {
    let slots = (span / size).max(1);
    (0..count)
        .map(|i| {
            let offset = ((i * 2_654_435_761) % slots) * size;
            if write {
                BlockRequest::write(i, offset, size, SimTime::ZERO)
            } else {
                BlockRequest::read(i, offset, size, SimTime::ZERO)
            }
        })
        .collect()
}

/// Measures one device.  The measurement order is: sequential write (which
/// also serves as the prefill so later reads hit real data), sequential
/// read, random read, random write.
fn measure<D: HostInterface>(
    device: &mut D,
    name: &str,
    region: u64,
) -> Result<Table2Row, DeviceError> {
    let seq_ops = region / IO_BYTES;
    let rand_ops = (region / IO_BYTES).min(16 * 1024);
    let seq_write =
        replay_closed(device, &sequential(seq_ops, IO_BYTES, true))?.write_bandwidth_mbps();
    let seq_read =
        replay_closed(device, &sequential(seq_ops, IO_BYTES, false))?.read_bandwidth_mbps();
    let rand_read =
        replay_closed(device, &scattered(rand_ops, IO_BYTES, region, false))?.read_bandwidth_mbps();
    let rand_write =
        replay_closed(device, &scattered(rand_ops, IO_BYTES, region, true))?.write_bandwidth_mbps();
    Ok(Table2Row {
        device: name.to_string(),
        seq_read,
        rand_read,
        seq_write,
        rand_write,
    })
}

/// Runs the Table 2 experiment: the HDD row followed by S1slc–S5mlc.
pub fn run(scale: Scale) -> Result<Vec<Table2Row>, DeviceError> {
    let region = scale.bytes(8 * 1024 * 1024, 64 * 1024 * 1024);
    let mut rows = Vec::new();

    let mut hdd = Hdd::new(HddConfig::barracuda_7200());
    rows.push(measure(&mut hdd, "HDD", region)?);

    for profile in DeviceProfile::table2_devices() {
        let mut ssd = Ssd::new(profile.config()).map_err(DeviceError::from)?;
        rows.push(measure(&mut ssd, profile.name(), region)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_match_the_paper() {
        let rows = run(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            eprintln!(
                "{:<10} seqR {:8.1} randR {:8.2} (x{:6.1})  seqW {:8.1} randW {:8.2} (x{:6.1})",
                r.device,
                r.seq_read,
                r.rand_read,
                r.read_ratio(),
                r.seq_write,
                r.rand_write,
                r.write_ratio()
            );
        }
        let by_name = |name: &str| rows.iter().find(|r| r.device == name).unwrap();

        // The disk: both ratios are enormous compared with any SSD.
        let hdd = by_name("HDD");
        assert!(
            hdd.read_ratio() > 30.0,
            "HDD read ratio {}",
            hdd.read_ratio()
        );
        assert!(
            hdd.write_ratio() > 5.0,
            "HDD write ratio {}",
            hdd.write_ratio()
        );

        // The paper's simulated page-mapped SSD: sequential and random are
        // nearly interchangeable.
        let s4 = by_name("S4slc_sim");
        assert!(s4.read_ratio() < 2.0, "S4 read ratio {}", s4.read_ratio());
        assert!(
            s4.write_ratio() < 2.5,
            "S4 write ratio {}",
            s4.write_ratio()
        );
        assert!(hdd.read_ratio() > 10.0 * s4.read_ratio());

        // The low-end stripe-mapped devices: random writes collapse.
        let s2 = by_name("S2slc");
        assert!(
            s2.write_ratio() > 40.0,
            "S2 write ratio {}",
            s2.write_ratio()
        );
        let s3 = by_name("S3slc");
        assert!(
            s3.write_ratio() > 20.0,
            "S3 write ratio {}",
            s3.write_ratio()
        );

        // Read ratios on SSDs stay modest (a few times, not a hundred).
        for row in &rows[1..] {
            assert!(
                row.read_ratio() < 30.0,
                "{} read ratio {} too disk-like",
                row.device,
                row.read_ratio()
            );
            assert!(row.seq_read > 0.0 && row.rand_read > 0.0);
        }

        // MLC is slower to write than the comparable SLC device.
        let s5 = by_name("S5mlc");
        let s1 = by_name("S1slc");
        assert!(s5.seq_write < s1.seq_write);
    }
}
