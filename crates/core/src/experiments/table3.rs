//! Table 3: response time of 4 KB writes, unaligned vs. merged-and-aligned
//! to the device's 32 KB logical page, for varying degrees of sequentiality.
//!
//! The paper simulates a 32 GB SSD built from one gang of eight 4 GB
//! packages with a single 32 KB logical page spanning the gang, and compares
//! "issuing the writes as they arrive" with "merging and aligning writes on
//! logical page boundaries".  On a fully random stream both behave the same;
//! as sequentiality grows, alignment wins by more than 50%.

use ossd_block::{BlockDevice, BlockRequest, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::{SimDuration, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_workload::{InterArrival, SyntheticConfig};

use super::Scale;

/// The logical page (stripe) size of the simulated device.
pub const LOGICAL_PAGE: u64 = 32 * 1024;

/// One row of Table 3 (one sequentiality setting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table3Row {
    /// Probability of sequential access.
    pub sequential_prob: f64,
    /// Mean response time when writes are issued as they arrive (ms).
    pub unaligned_ms: f64,
    /// Mean response time when the device merges and aligns writes (ms).
    pub aligned_ms: f64,
}

impl Table3Row {
    /// Improvement of the aligned scheme over the unaligned one, in percent.
    pub fn improvement_pct(&self) -> f64 {
        ossd_sim::improvement_percent(self.unaligned_ms, self.aligned_ms)
    }
}

/// The simulated striped device used by both alignment studies (Tables 3
/// and 4): eight packages in one gang, 32 KB logical page, with the
/// device-side merge-and-align scheme switchable via `coalesce`.
pub fn device_config_for_alignment(scale: Scale, coalesce: bool) -> SsdConfig {
    SsdConfig {
        name: format!("table3-{}", if coalesce { "aligned" } else { "unaligned" }),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.bytes(64, 256) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::StripeMapped {
            stripe_bytes: LOGICAL_PAGE,
            coalesce,
        },
        ftl: FtlConfig::default(),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn run_one(
    scale: Scale,
    sequential_prob: f64,
    coalesce: bool,
    working_set: u64,
    count: usize,
) -> Result<f64, DeviceError> {
    let mut ssd =
        Ssd::new(device_config_for_alignment(scale, coalesce)).map_err(DeviceError::from)?;
    // Prefill the working set with stripe-aligned writes so partial-stripe
    // overwrites pay the read-modify-write.
    let mut arrival = SimTime::ZERO;
    for (i, offset) in (0..working_set).step_by(LOGICAL_PAGE as usize).enumerate() {
        let c = ssd.submit(&BlockRequest::write(
            i as u64,
            offset,
            LOGICAL_PAGE,
            arrival,
        ))?;
        arrival = c.finish;
    }
    let start = ssd.flush(arrival).map_err(DeviceError::from)?;

    let workload = SyntheticConfig {
        name: format!("table3-p{sequential_prob}"),
        request_count: count,
        request_bytes: 4096,
        read_fraction: 0.0,
        sequential_prob,
        working_set_bytes: working_set,
        align_bytes: 4096,
        inter_arrival: InterArrival::Uniform {
            lo: SimDuration::ZERO,
            hi: SimDuration::from_millis_f64(4.0),
        },
        priority_fraction: 0.0,
        seed: 42,
    };
    let requests: Vec<BlockRequest> = workload
        .generate()
        .to_requests()
        .into_iter()
        .map(|mut r| {
            // Shift the measured phase to start after the prefill finished.
            r.arrival += start.saturating_since(SimTime::ZERO);
            r
        })
        .collect();
    let completions = ssd
        .simulate_open(&requests, SchedulerKind::Fcfs)
        .map_err(DeviceError::from)?;
    let total: f64 = completions
        .iter()
        .map(|c| c.response_time().as_millis_f64())
        .sum();
    Ok(total / completions.len() as f64)
}

/// Runs the Table 3 sweep over sequentiality 0–0.8.
pub fn run(scale: Scale) -> Result<Vec<Table3Row>, DeviceError> {
    let working_set = scale.bytes(8 * 1024 * 1024, 32 * 1024 * 1024);
    let count = scale.count(1500, 8000);
    let mut rows = Vec::new();
    for &p in &[0.0, 0.2, 0.4, 0.6, 0.8] {
        let unaligned_ms = run_one(scale, p, false, working_set, count)?;
        let aligned_ms = run_one(scale, p, true, working_set, count)?;
        rows.push(Table3Row {
            sequential_prob: p,
            unaligned_ms,
            aligned_ms,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helps_more_as_sequentiality_grows() {
        let rows = run(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 5);
        // At p=0 both schemes are within noise of each other.
        let p0 = &rows[0];
        assert!(
            p0.improvement_pct().abs() < 25.0,
            "at p=0 improvement should be small, got {:.1}%",
            p0.improvement_pct()
        );
        // At p=0.8 alignment wins substantially (the paper reports >45%).
        let p08 = &rows[4];
        assert!(
            p08.improvement_pct() > 25.0,
            "at p=0.8 improvement should be large, got {:.1}%",
            p08.improvement_pct()
        );
        // The unaligned scheme stays roughly flat across sequentiality while
        // the aligned scheme improves monotonically (within noise).
        assert!(rows[4].aligned_ms < rows[1].aligned_ms);
        let unaligned_spread = rows
            .iter()
            .map(|r| r.unaligned_ms)
            .fold(f64::NEG_INFINITY, f64::max)
            / rows
                .iter()
                .map(|r| r.unaligned_ms)
                .fold(f64::INFINITY, f64::min);
        assert!(
            unaligned_spread < 2.0,
            "unaligned responses should not vary wildly, spread {unaligned_spread:.2}"
        );
    }
}
