//! Table 4: response-time improvement from device-side stripe-aligned write
//! merging under four macro-benchmark workload models.
//!
//! The paper reports Postmark 1.15%, TPC-C 3.08%, Exchange 4.89% and IOzone
//! 36.54%: the larger and more sequential a workload's writes, the more the
//! device-side merge-and-align scheme helps.  The workload models here are
//! synthetic reconstructions (see `ossd-workload`), so the reproduced
//! numbers match in *ordering and magnitude class*, not to two decimals.

use ossd_block::{BlockRequest, DeviceError, Trace};
use ossd_sim::improvement_percent;
use ossd_ssd::{SchedulerKind, Ssd};
use ossd_workload::{ExchangeConfig, IozoneConfig, PostmarkConfig, TpccConfig};

use super::table3::{device_config_for_alignment, LOGICAL_PAGE};
use super::Scale;

/// One row of Table 4.
#[derive(Clone, Debug, PartialEq)]
pub struct Table4Row {
    /// Workload name.
    pub workload: String,
    /// Mean response time without merging/alignment (ms).
    pub unaligned_ms: f64,
    /// Mean response time with device-side merging/alignment (ms).
    pub aligned_ms: f64,
}

impl Table4Row {
    /// Improvement of the aligned scheme, in percent.
    pub fn improvement_pct(&self) -> f64 {
        improvement_percent(self.unaligned_ms, self.aligned_ms)
    }
}

/// Byte offset added to every workload address, emulating the file-system
/// metadata area that precedes the data region on a real volume.  The area
/// is a whole number of logical pages, so workloads whose writes are
/// naturally stripe-sized (Exchange's 32 KB database pages) stay aligned.
const FS_METADATA_OFFSET: u64 = LOGICAL_PAGE;

/// Maximum size of an individual block-layer request for *file-system
/// buffered* workloads (Postmark, IOzone).  The page cache of the paper's
/// era wrote large files back in requests of a few tens of kilobytes, so a
/// 1 MB IOzone record reaches the device as a train of sequential
/// sub-stripe writes — exactly the pattern device-side merging reassembles.
/// Database workloads (TPC-C, Exchange) issue their page-sized requests
/// directly and are not split.
const BLOCK_LAYER_MAX_IO: u64 = 16 * 1024;

fn shifted_requests(trace: &Trace, shift: u64, max_io: Option<u64>) -> Vec<BlockRequest> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for req in trace.to_requests() {
        let mut offset = req.range.offset + shift;
        let mut remaining = req.range.len;
        while remaining > 0 {
            let chunk = remaining.min(max_io.unwrap_or(u64::MAX));
            let mut piece = req;
            piece.id = id;
            id += 1;
            piece.range = ossd_block::ByteRange::new(offset, chunk);
            out.push(piece);
            offset += chunk;
            remaining -= chunk;
        }
    }
    out
}

fn mean_response_ms(
    scale: Scale,
    requests: &[BlockRequest],
    coalesce: bool,
) -> Result<f64, DeviceError> {
    let mut ssd =
        Ssd::new(device_config_for_alignment(scale, coalesce)).map_err(DeviceError::from)?;
    let completions = ssd
        .simulate_open(requests, SchedulerKind::Fcfs)
        .map_err(DeviceError::from)?;
    if completions.is_empty() {
        return Ok(0.0);
    }
    let total: f64 = completions
        .iter()
        .map(|c| c.response_time().as_millis_f64())
        .sum();
    Ok(total / completions.len() as f64)
}

fn run_workload(
    scale: Scale,
    name: &str,
    trace: &Trace,
    max_io: Option<u64>,
) -> Result<Table4Row, DeviceError> {
    let requests = shifted_requests(trace, FS_METADATA_OFFSET, max_io);
    let unaligned_ms = mean_response_ms(scale, &requests, false)?;
    let aligned_ms = mean_response_ms(scale, &requests, true)?;
    Ok(Table4Row {
        workload: name.to_string(),
        unaligned_ms,
        aligned_ms,
    })
}

/// Runs the Table 4 experiment over the four workload models.
pub fn run(scale: Scale) -> Result<Vec<Table4Row>, DeviceError> {
    // The gaps are sized so the device is moderately loaded but not
    // saturated under the unaligned scheme; the paper's traces likewise ran
    // against a device far faster than their mean arrival rate.
    let postmark = PostmarkConfig {
        transactions: scale.count(800, 5000),
        initial_files: scale.count(200, 1000),
        volume_bytes: scale.bytes(24 * 1024 * 1024, 128 * 1024 * 1024),
        mean_gap_micros: 4000,
        ..PostmarkConfig::default()
    }
    .generate();
    let tpcc = TpccConfig {
        transactions: scale.count(600, 4000),
        database_bytes: scale.bytes(24 * 1024 * 1024, 128 * 1024 * 1024),
        log_bytes: scale.bytes(4 * 1024 * 1024, 16 * 1024 * 1024),
        mean_gap_micros: 8000,
        ..TpccConfig::default()
    }
    .generate();
    let exchange = ExchangeConfig {
        operations: scale.count(800, 5000),
        database_bytes: scale.bytes(24 * 1024 * 1024, 128 * 1024 * 1024),
        log_bytes: scale.bytes(4 * 1024 * 1024, 16 * 1024 * 1024),
        mean_gap_micros: 10_000,
        ..ExchangeConfig::default()
    }
    .generate();
    let iozone = IozoneConfig {
        file_bytes: scale.bytes(24 * 1024 * 1024, 128 * 1024 * 1024),
        record_bytes: 1024 * 1024,
        random_ops: scale.count(16, 64),
        mean_gap_micros: 20_000,
        ..IozoneConfig::default()
    }
    .generate();

    Ok(vec![
        run_workload(scale, "Postmark", &postmark, Some(BLOCK_LAYER_MAX_IO))?,
        run_workload(scale, "TPCC", &tpcc, None)?,
        run_workload(scale, "Exchange", &exchange, None)?,
        run_workload(scale, "IOzone", &iozone, Some(BLOCK_LAYER_MAX_IO))?,
    ])
}

/// Sanity helper used by tests and the bench harness: the device capacity
/// must exceed the largest workload footprint plus the metadata shift.
pub fn required_capacity(scale: Scale) -> u64 {
    scale.bytes(24 * 1024 * 1024, 128 * 1024 * 1024)
        + scale.bytes(4 * 1024 * 1024, 16 * 1024 * 1024)
        + FS_METADATA_OFFSET
        + LOGICAL_PAGE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iozone_benefits_most_postmark_least() {
        let rows = run(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            eprintln!(
                "{:<10} unaligned {:8.2} ms  aligned {:8.2} ms  improvement {:6.2}%",
                r.workload,
                r.unaligned_ms,
                r.aligned_ms,
                r.improvement_pct()
            );
        }
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.workload == name)
                .unwrap()
                .improvement_pct()
        };
        let postmark = get("Postmark");
        let iozone = get("IOzone");
        let exchange = get("Exchange");
        let tpcc = get("TPCC");
        // IOzone (large sequential writes) must dominate every other
        // workload, and by a wide margin over Postmark (small scattered
        // writes) — the paper's 36.5% vs 1.15%.
        assert!(
            iozone > 15.0,
            "IOzone improvement {iozone:.1}% should be large"
        );
        assert!(
            iozone > postmark + 10.0,
            "IOzone ({iozone:.1}%) must far exceed Postmark ({postmark:.1}%)"
        );
        assert!(iozone > tpcc, "IOzone must beat TPCC ({tpcc:.1}%)");
        assert!(
            iozone > exchange,
            "IOzone must beat Exchange ({exchange:.1}%)"
        );
        // Small-write workloads see only modest improvement (and never a
        // large regression).
        for (name, v) in [
            ("Postmark", postmark),
            ("TPCC", tpcc),
            ("Exchange", exchange),
        ] {
            assert!(v > -10.0, "{name} regressed by {v:.1}%");
            assert!(v < 30.0, "{name} improvement {v:.1}% implausibly large");
        }
    }

    #[test]
    fn device_fits_the_workloads() {
        let config = device_config_for_alignment(Scale::Quick, true);
        let capacity = (config.geometry.capacity_bytes() as f64 * 0.9) as u64;
        assert!(capacity > required_capacity(Scale::Quick));
    }
}
