//! Table 5: informed cleaning with free-page information.
//!
//! The paper replays Postmark block traces (5 000–8 000 transactions,
//! collected beneath Ext3 with a pseudo-driver that reports freed sectors)
//! against an 8 GB SSD twice: once on the default SSD that ignores
//! free-page information and once with cleaning/wear-leveling modified to
//! disregard flash pages whose logical pages the file system has freed.
//! Informed cleaning moves 50–75% fewer pages and cuts cleaning time by
//! 30–40%.
//!
//! The reproduction scales the device and trace down together (documented
//! in EXPERIMENTS.md) so that the trace overwrites the device several times
//! and garbage collection is active, which is the regime the paper measures.

use ossd_block::{replay_open, DeviceError};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_sim::SimDuration;
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_workload::PostmarkConfig;

use super::Scale;

/// One row of Table 5 (one transaction count).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table5Row {
    /// Number of Postmark transactions in the trace.
    pub transactions: usize,
    /// Pages moved by cleaning on the default (uninformed) SSD.
    pub default_pages_moved: u64,
    /// Pages moved by cleaning with free-page information.
    pub informed_pages_moved: u64,
    /// Cleaning time on the default SSD, in seconds.
    pub default_cleaning_secs: f64,
    /// Cleaning time with free-page information, in seconds.
    pub informed_cleaning_secs: f64,
}

impl Table5Row {
    /// Pages moved with free-page information relative to the default SSD
    /// (the paper's "relative pages moved", 0.25–0.50).
    pub fn relative_pages_moved(&self) -> f64 {
        if self.default_pages_moved == 0 {
            0.0
        } else {
            self.informed_pages_moved as f64 / self.default_pages_moved as f64
        }
    }

    /// Cleaning time with free-page information relative to the default SSD
    /// (the paper's "relative cleaning time", 0.60–0.69).
    pub fn relative_cleaning_time(&self) -> f64 {
        if self.default_cleaning_secs <= 0.0 {
            0.0
        } else {
            self.informed_cleaning_secs / self.default_cleaning_secs
        }
    }
}

/// The page-mapped SSD the traces are replayed against.  The raw capacity is
/// chosen so the Postmark trace overwrites the device between one and two
/// times over (the paper's 8 GB device saw the same relationship with its
/// multi-gigabyte traces).
fn device_config(scale: Scale, honor_free: bool) -> SsdConfig {
    SsdConfig {
        name: format!("table5-{}", if honor_free { "informed" } else { "default" }),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.bytes(32, 96) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.08)
            .with_honor_free(honor_free),
        reliability: ReliabilityConfig::none(),
        background_gc: None,
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 1,
        controller_overhead: SimDuration::from_micros(20),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

fn postmark_config(scale: Scale, transactions: usize) -> PostmarkConfig {
    PostmarkConfig {
        transactions,
        initial_files: scale.count(800, 2500),
        volume_bytes: scale.bytes(14 * 1024 * 1024, 42 * 1024 * 1024),
        min_file_bytes: 512,
        max_file_bytes: 16 * 1024,
        ..PostmarkConfig::default()
    }
}

/// Transaction counts for the four columns of Table 5.
pub fn transaction_counts(scale: Scale) -> [usize; 4] {
    match scale {
        Scale::Quick => [2000, 2500, 3000, 3500],
        Scale::Paper => [5000, 6000, 7000, 8000],
    }
}

fn run_one(scale: Scale, transactions: usize) -> Result<Table5Row, DeviceError> {
    let trace = postmark_config(scale, transactions).generate();
    let mut results = [(0u64, 0.0f64); 2];
    for (i, honor_free) in [false, true].iter().enumerate() {
        let mut ssd = Ssd::new(device_config(scale, *honor_free)).map_err(DeviceError::from)?;
        // The default SSD never receives the free notifications at all (the
        // block interface has no way to convey them); the informed SSD does.
        let requests = if *honor_free {
            trace.to_requests()
        } else {
            trace.without_frees().to_requests()
        };
        replay_open(&mut ssd, &requests)?;
        // Drain any open buffers so both runs account identical host work.
        let stats = ssd.stats();
        results[i] = (
            stats.cleaning_pages_moved(),
            stats.cleaning_busy.as_secs_f64(),
        );
    }
    Ok(Table5Row {
        transactions,
        default_pages_moved: results[0].0,
        informed_pages_moved: results[1].0,
        default_cleaning_secs: results[0].1,
        informed_cleaning_secs: results[1].1,
    })
}

/// Runs the Table 5 experiment for all four transaction counts.
pub fn run(scale: Scale) -> Result<Vec<Table5Row>, DeviceError> {
    transaction_counts(scale)
        .into_iter()
        .map(|t| run_one(scale, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informed_cleaning_moves_fewer_pages_and_cleans_faster() {
        let rows = run(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.default_pages_moved > 0,
                "{} transactions: cleaning never ran on the default SSD",
                row.transactions
            );
            let rel_pages = row.relative_pages_moved();
            let rel_time = row.relative_cleaning_time();
            assert!(
                rel_pages < 0.9,
                "{} transactions: relative pages moved {rel_pages:.2} shows no benefit",
                row.transactions
            );
            assert!(
                rel_time < 0.95,
                "{} transactions: relative cleaning time {rel_time:.2} shows no benefit",
                row.transactions
            );
            // Informed cleaning can never move more pages than the default.
            assert!(row.informed_pages_moved <= row.default_pages_moved);
        }
        // More transactions means more absolute cleaning work on the default
        // device.
        assert!(rows[3].default_pages_moved >= rows[0].default_pages_moved);
    }
}
