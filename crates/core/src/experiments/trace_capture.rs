//! Cross-layer trace capture: one instrumented TPC-C run exported as a
//! Perfetto-loadable Chrome trace plus a metrics-CSV time-series.
//!
//! This is the telemetry subsystem's end-to-end driver: it attaches an
//! [`ossd_telemetry::Recorder`] to an 8-element page-mapped device, replays
//! a TPC-C slice through four initiator queue pairs of the queue-pair host
//! interface, and exports everything the recorder saw — the command
//! lifecycle on per-initiator tracks, every flash array/bus operation on
//! per-element and per-bus tracks, garbage-collection and reliability
//! instants, and the sampled metrics series (write amplification, free
//! space, GC backlog, queue depths, utilisations).
//!
//! The result self-validates with the crate's own vendored JSON codec: the
//! exported trace must parse, and every element and initiator track must
//! carry at least one complete (`"ph":"X"`) span.  The `trace_capture`
//! binary writes the two artifacts to disk and fails on any validation
//! error, which is what the CI smoke step runs.

use ossd_block::{BlockDevice, BlockRequest, DeviceError, HostCommand, HostInterface, HostQueue};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_ftl::FtlConfig;
use ossd_gc::BackgroundGcConfig;
use ossd_sim::{SimDuration, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, Ssd, SsdConfig};
use ossd_telemetry::{json, to_chrome_trace, Recorder, RecorderConfig};
use ossd_workload::TpccConfig;

use super::Scale;

/// Number of initiator queue pairs the capture drives.
pub const INITIATORS: usize = 4;

/// The capture artifacts plus the summary numbers the binary prints and the
/// tests assert on.
#[derive(Clone, Debug)]
pub struct TraceCapture {
    /// The Chrome-trace-event JSON document (open it in Perfetto).
    pub trace_json: String,
    /// The metrics time-series as CSV.
    pub metrics_csv: String,
    /// Trace events recorded (spans and instants).
    pub events: usize,
    /// Events dropped by the bounded ring (0 unless the ring overflowed).
    pub dropped_events: usize,
    /// Metrics samples on the time-series.
    pub samples: usize,
    /// Distinct series per sample (columns after the timestamp).
    pub series: usize,
    /// Flash elements of the captured device.
    pub elements: u32,
    /// Commands completed across all initiators.
    pub completions: usize,
    /// Final write amplification of the run.
    pub write_amplification: f64,
}

/// The 8-element page-mapped device the capture instruments: one die per
/// package on two gang buses, small enough that the quick slice finishes in
/// well under a second but busy enough that GC and queueing show up on the
/// trace.  The stressed wear-out fault model is installed so ECC retries
/// and (late in life) block retirements appear as reliability instants.
fn device_config(scale: Scale) -> SsdConfig {
    SsdConfig {
        name: "trace-capture".to_string(),
        geometry: FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: scale.count(128, 512) as u32,
            pages_per_block: 64,
            page_bytes: 4096,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        // The low watermark sits above the free fraction the prefill
        // leaves behind, so foreground cleaning runs throughout the
        // captured churn and GC spans/instants land on the trace.
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.30, 0.15),
        reliability: stressed_reliability(),
        background_gc: Some(BackgroundGcConfig::default()),
        gangs: 2,
        scheduler: SchedulerKind::Swtf,
        queue_depth: 8,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    }
}

/// The wear-out fault model with the pristine-block raw bit-error mean
/// raised to the edge of the default ECC strength (8 correctable bits), so
/// a small but visible fraction of reads needs a shifted-threshold retry
/// even at low wear and the `EccRetry`/`FlashReadRetry` hooks show up on
/// the trace.
fn stressed_reliability() -> ReliabilityConfig {
    let mut reliability = ReliabilityConfig::wearout(0x7e1e);
    reliability.faults.raw_ber_base = 4.0;
    reliability
}

/// Runs the capture and validates the artifacts.
pub fn run(scale: Scale) -> Result<TraceCapture, DeviceError> {
    let config = device_config(scale);
    let elements = config.elements();
    let mut ssd = Ssd::new(config).map_err(DeviceError::from)?;
    let capacity = ssd.capacity_bytes();

    // The TPC-C database and log are sized to the device so the paper and
    // quick scales stress it equally: the prefilled database plus the
    // wrapping log keep the FTL near its cleaning watermark.
    let page = ssd.logical_page_bytes();
    let database_bytes = (capacity * 8 / 10) / page * page;
    let tpcc = TpccConfig {
        transactions: scale.count(400, 4000),
        database_bytes,
        log_bytes: (capacity / 10) / page * page,
        ..TpccConfig::default()
    };

    // Prefill the database region *before* attaching the recorder: the
    // capture should show the steady-state workload, not the fill, and the
    // bounded ring keeps the earliest events when it overflows.
    let mut at = SimTime::ZERO;
    let chunk = 128 * page;
    let mut id = 1_000_000u64;
    let mut offset = 0u64;
    while offset < database_bytes {
        let len = chunk.min(database_bytes - offset);
        let c = ssd.submit(&BlockRequest::write(id, offset, len, at))?;
        at = c.finish;
        offset += len;
        id += 1;
    }

    let (handle, recorder) = Recorder::shared(RecorderConfig::default());
    ssd.set_telemetry(handle);

    // Arbitrate the TPC-C stream round-robin across the initiators, each
    // with its own queue pair, closing with one Flush per initiator so the
    // fence path is on the trace too.
    let base = at + SimDuration::from_millis(1);
    let requests = tpcc.generate().to_requests();
    let mut queues = vec![HostQueue::new(); INITIATORS];
    let mut last_arrival = base;
    for (i, r) in requests.iter().enumerate() {
        let mut request = *r;
        request.arrival = base + SimDuration::from_nanos(r.arrival.as_nanos());
        last_arrival = last_arrival.max(request.arrival);
        queues[i % INITIATORS].submit_request(&request);
    }
    for queue in &mut queues {
        queue.submit(u64::MAX, HostCommand::Flush, last_arrival);
    }
    ssd.serve(&mut queues)?;

    let completions: usize = queues.iter_mut().map(|q| q.drain_completions().len()).sum();

    // Stamp the final device state onto the series so even a capture
    // shorter than one sampling interval exports a non-empty CSV.
    let end = {
        let r = recorder.lock().unwrap();
        r.events().iter().map(|e| e.end).max().unwrap_or(base)
    };
    ssd.sample_telemetry(end);

    let r = recorder.lock().unwrap();
    let capture = TraceCapture {
        trace_json: to_chrome_trace(r.events()),
        metrics_csv: r.series().to_csv(),
        events: r.events().len(),
        dropped_events: r.dropped_events() as usize,
        samples: r.series().samples().len(),
        series: r.series().series_count(),
        elements,
        completions,
        write_amplification: ssd.ftl_stats().write_amplification(),
    };
    validate(&capture).map_err(|what| DeviceError::Unsupported {
        what: Box::leak(what.into_boxed_str()),
    })?;
    Ok(capture)
}

/// Checks the exported artifacts with the vendored JSON codec: the trace
/// must parse, every element track and every initiator track must carry at
/// least one complete (`"ph":"X"`) span, and the CSV must hold at least
/// five sampled series.  Returns a description of the first violation.
pub fn validate(capture: &TraceCapture) -> Result<(), String> {
    let doc = json::Value::parse(&capture.trace_json)
        .map_err(|e| format!("trace JSON does not parse: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("trace JSON has no traceEvents array")?;
    // Complete spans per thread-track id (see `ossd_telemetry::chrome` for
    // the tid layout: elements at 1.., initiators at 2001..).
    let mut span_tids = Vec::new();
    for event in events {
        let ph = event.get("ph").and_then(|v| v.as_str());
        let tid = event.get("tid").and_then(|v| v.as_f64());
        if let (Some("X"), Some(tid)) = (ph, tid) {
            span_tids.push(tid as u64);
        }
    }
    for element in 0..capture.elements as u64 {
        if !span_tids.contains(&(1 + element)) {
            return Err(format!("element {element} has no complete spans"));
        }
    }
    for initiator in 0..INITIATORS as u64 {
        if !span_tids.contains(&(2001 + initiator)) {
            return Err(format!("initiator {initiator} has no complete spans"));
        }
    }
    if capture.series < 5 {
        return Err(format!(
            "metrics CSV has only {} series (expected at least 5)",
            capture.series
        ));
    }
    if capture.samples == 0 {
        return Err("metrics CSV has no samples".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_capture_is_perfetto_valid_and_sampled() {
        let capture = run(Scale::Quick).expect("capture");
        assert!(capture.events > 0);
        assert!(capture.completions > 0);
        assert!(capture.samples >= 1);
        assert!(capture.series >= 5);
        // run() already validated; re-validate to pin the helper itself.
        validate(&capture).expect("valid capture");
    }

    #[test]
    fn validation_rejects_garbage() {
        let capture = TraceCapture {
            trace_json: "not json".to_string(),
            metrics_csv: String::new(),
            events: 0,
            dropped_events: 0,
            samples: 0,
            series: 0,
            elements: 1,
            completions: 0,
            write_amplification: 0.0,
        };
        assert!(validate(&capture).is_err());
    }
}
