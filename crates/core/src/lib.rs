//! Object-based block management for solid-state devices.
//!
//! This crate is the constructive part of *Block Management in Solid-State
//! Devices* (Rajimwale, Prabhakaran, Davis; USENIX ATC 2009): once block
//! management is delegated to the device — ideally behind an object-based
//! (OSD) interface — the device can do things the narrow block interface
//! makes impossible:
//!
//! * [`osd`] — an object store ([`OsdDevice`]) layered on the SSD simulator:
//!   the device performs allocation and layout for objects, object deletion
//!   immediately releases pages to the FTL (informed cleaning without TRIM),
//!   and object attributes carry priorities that the device's cleaning
//!   respects.
//! * [`contract`] — an executable version of the paper's Table 1: probes
//!   that test each term of the "unwritten contract" against a simulated
//!   disk and a simulated SSD.
//! * [`experiments`] — drivers that regenerate every table and figure of the
//!   paper's evaluation (Tables 2–6, Figures 2–3, §3.2's scheduler study),
//!   shared by the benchmark binaries and the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod experiments;
pub mod osd;

pub use contract::{ContractReport, ContractTerm, TermVerdict};
pub use experiments::Scale;
pub use osd::{ObjectAttributes, ObjectId, OsdDevice, OsdError, Temperature};
