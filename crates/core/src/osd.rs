//! Object-based storage on top of the SSD simulator.
//!
//! §3.7 of the paper argues that the file system should "operate on objects
//! and let the device handle the logical to physical mapping,
//! sequential-random accesses to (parts of) objects, and stripe-aligned
//! accesses", that the device should "manage the space for objects
//! (including the allocation and release of pages to objects) in order to
//! implement informed cleaning", and that object attributes should convey
//! priorities and read-only (cold) data.  [`OsdDevice`] implements exactly
//! that contract over [`ossd_ssd::Ssd`]:
//!
//! * the device owns allocation: object bytes are mapped to device byte
//!   ranges by an internal extent allocator;
//! * deleting or truncating an object immediately issues free notifications
//!   to the FTL, so cleaning never migrates dead object data;
//! * the `priority` attribute of an object is attached to every I/O the
//!   object generates, feeding priority-aware cleaning;
//! * the `temperature`/`read_only` attributes travel to the device as
//!   stream-temperature write hints on every object write.
//!
//! Since the queue-pair redesign, [`OsdDevice`] is a thin *command
//! translator* over the [`ossd_block::host`] protocol: its object API (and
//! the object-management commands it accepts through
//! [`OsdDevice::submit_command`]) are translated into block commands and
//! served over the identical [`HostInterface`] transport the raw block
//! experiments use — there is no private side door into the SSD, so
//! block-vs-object comparisons measure the interface, not the plumbing.

use std::collections::BTreeMap;

use ossd_block::{Completion, HostCommand, HostInterface, HostQueue, Priority, WriteHint};
use ossd_ftl::FtlConfig;
use ossd_sim::SimTime;
use ossd_ssd::{Ssd, SsdConfig, SsdError, SsdStats};
use ossd_workload::fslite::{FsError, FsLite};

pub use ossd_block::{ObjectAttrs as ObjectAttributes, StreamTemperature as Temperature};

/// Identifier of an object stored on an [`OsdDevice`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

/// Errors the object store can report.
#[derive(Clone, Debug, PartialEq)]
pub enum OsdError {
    /// The object does not exist.
    NoSuchObject {
        /// The missing object.
        object: ObjectId,
    },
    /// An [`HostCommand::ObjectCreate`] named an id that is already live.
    ObjectExists {
        /// The conflicting object.
        object: ObjectId,
    },
    /// A command kind the object store does not accept (device-addressed
    /// block commands: the host of an OSD addresses objects, not LBNs).
    UnsupportedCommand {
        /// Description of the rejected command.
        what: &'static str,
    },
    /// A read or write addressed bytes beyond the end of the object.
    OutOfRange {
        /// The object.
        object: ObjectId,
        /// Requested end offset.
        requested_end: u64,
        /// Current object size.
        size: u64,
    },
    /// A write targeted a read-only object.
    ReadOnly {
        /// The object.
        object: ObjectId,
    },
    /// The device has no space left for the requested allocation.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
    },
    /// The underlying SSD reported an error.
    Ssd(SsdError),
}

impl std::fmt::Display for OsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsdError::NoSuchObject { object } => write!(f, "no such object: {}", object.0),
            OsdError::ObjectExists { object } => {
                write!(f, "object {} already exists", object.0)
            }
            OsdError::UnsupportedCommand { what } => {
                write!(f, "unsupported command: {what}")
            }
            OsdError::OutOfRange {
                object,
                requested_end,
                size,
            } => write!(
                f,
                "object {} access to byte {requested_end} beyond size {size}",
                object.0
            ),
            OsdError::ReadOnly { object } => write!(f, "object {} is read-only", object.0),
            OsdError::OutOfSpace { requested } => {
                write!(f, "device out of space for {requested} bytes")
            }
            OsdError::Ssd(e) => write!(f, "ssd error: {e}"),
        }
    }
}

impl std::error::Error for OsdError {}

impl From<SsdError> for OsdError {
    fn from(e: SsdError) -> Self {
        OsdError::Ssd(e)
    }
}

#[derive(Clone, Debug)]
struct ObjectState {
    /// File id inside the internal allocator.
    file: ossd_workload::fslite::FileId,
    size: u64,
    attrs: ObjectAttributes,
}

/// An object-based storage device backed by a simulated SSD.
pub struct OsdDevice {
    ssd: Ssd,
    allocator: FsLite,
    objects: BTreeMap<ObjectId, ObjectState>,
    next_object: u64,
    next_request: u64,
    clock: SimTime,
}

impl OsdDevice {
    /// Builds an object store over an SSD with the given configuration.
    ///
    /// The FTL is switched to *informed* mode (free notifications honoured)
    /// because delegating allocation to the device is precisely what makes
    /// that information available (§3.5, §3.7).
    pub fn new(config: SsdConfig) -> Result<Self, OsdError> {
        let config = SsdConfig {
            ftl: FtlConfig {
                honor_free: true,
                ..config.ftl
            },
            ..config
        };
        let ssd = Ssd::new(config)?;
        let capacity = ossd_block::BlockDevice::capacity_bytes(&ssd);
        let block = ssd.config().geometry.page_bytes as u64;
        Ok(OsdDevice {
            ssd,
            allocator: FsLite::new(capacity, block),
            objects: BTreeMap::new(),
            next_object: 1,
            next_request: 0,
            clock: SimTime::ZERO,
        })
    }

    /// The current simulated time (completion of the last operation).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Device statistics (FTL, cleaning, wear).
    pub fn device_stats(&self) -> SsdStats {
        self.ssd.stats()
    }

    /// Total bytes the device can store for objects.
    pub fn capacity_bytes(&self) -> u64 {
        self.allocator.capacity_bytes()
    }

    /// Bytes currently allocated to objects.
    pub fn used_bytes(&self) -> u64 {
        self.allocator.used_bytes()
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Lists all live objects.
    pub fn list_objects(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Current size of an object in bytes.
    pub fn object_size(&self, object: ObjectId) -> Result<u64, OsdError> {
        Ok(self.state(object)?.size)
    }

    /// The attributes of an object.
    pub fn get_attributes(&self, object: ObjectId) -> Result<ObjectAttributes, OsdError> {
        Ok(self.state(object)?.attrs)
    }

    /// Replaces the attributes of an object.
    pub fn set_attributes(
        &mut self,
        object: ObjectId,
        attrs: ObjectAttributes,
    ) -> Result<(), OsdError> {
        let state = self
            .objects
            .get_mut(&object)
            .ok_or(OsdError::NoSuchObject { object })?;
        state.attrs = attrs;
        Ok(())
    }

    fn state(&self, object: ObjectId) -> Result<&ObjectState, OsdError> {
        self.objects
            .get(&object)
            .ok_or(OsdError::NoSuchObject { object })
    }

    fn next_request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// Creates an empty object with the given attributes, letting the
    /// device assign the id.
    pub fn create_object(&mut self, attrs: ObjectAttributes) -> ObjectId {
        let id = ObjectId(self.next_object);
        self.insert_object(id, attrs);
        id
    }

    /// Creates an empty object under a host-chosen id (the
    /// [`HostCommand::ObjectCreate`] path).
    pub fn create_object_with_id(
        &mut self,
        object: ObjectId,
        attrs: ObjectAttributes,
    ) -> Result<(), OsdError> {
        if self.objects.contains_key(&object) {
            return Err(OsdError::ObjectExists { object });
        }
        self.insert_object(object, attrs);
        Ok(())
    }

    fn insert_object(&mut self, id: ObjectId, attrs: ObjectAttributes) {
        self.next_object = self.next_object.max(id.0 + 1);
        // Zero-byte objects own no extents yet; the allocator file is
        // created lazily on first write.
        let file = self
            .allocator
            .create(0)
            .map(|(f, _)| f)
            .unwrap_or_else(|_| {
                // A zero-byte create can only fail on a zero-capacity device;
                // fall back to an empty placeholder id that the first write
                // will replace.
                ossd_workload::fslite::FileId(u64::MAX)
            });
        self.objects.insert(
            id,
            ObjectState {
                file,
                size: 0,
                attrs,
            },
        );
    }

    /// Maps `offset..offset+len` of an object onto device byte ranges.
    fn map_extents(
        &self,
        object: ObjectId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<ossd_block::ByteRange>, OsdError> {
        let state = self.state(object)?;
        let extents = self
            .allocator
            .extents(state.file)
            .map_err(|_| OsdError::NoSuchObject { object })?;
        let mut out = Vec::new();
        let mut skip = offset;
        let mut remaining = len;
        for extent in extents {
            if remaining == 0 {
                break;
            }
            if skip >= extent.len {
                skip -= extent.len;
                continue;
            }
            let start = extent.offset + skip;
            let avail = extent.len - skip;
            let take = avail.min(remaining);
            out.push(ossd_block::ByteRange::new(start, take));
            remaining -= take;
            skip = 0;
        }
        Ok(out)
    }

    /// Sends one block command to the SSD through its queue pair and polls
    /// the completion back: the object store's entire data path crosses the
    /// same transport as raw block traffic.
    fn transport(
        &mut self,
        command: HostCommand,
        priority: Priority,
        at: SimTime,
    ) -> Result<Completion, OsdError> {
        let arrival = at.max(self.clock);
        let id = self.next_request_id();
        let mut queue = HostQueue::new();
        queue.submit_with_priority(id, command, arrival, priority);
        self.ssd
            .serve(std::slice::from_mut(&mut queue))
            .map_err(|e| OsdError::Ssd(SsdError::Device(e)))?;
        let completion = queue.poll().expect("one command, one completion");
        self.clock = self.clock.max(completion.finish);
        Ok(completion)
    }

    fn submit_ranges(
        &mut self,
        ranges: &[ossd_block::ByteRange],
        write: Option<WriteHint>,
        priority: Priority,
        at: SimTime,
    ) -> Result<Vec<Completion>, OsdError> {
        let mut completions = Vec::new();
        let mut arrival = at.max(self.clock);
        for range in ranges {
            let command = match write {
                Some(hint) => HostCommand::Write {
                    range: *range,
                    hint,
                },
                None => HostCommand::Read { range: *range },
            };
            let completion = self.transport(command, priority, arrival)?;
            arrival = completion.finish;
            completions.push(completion);
        }
        Ok(completions)
    }

    /// Collapses a multi-range operation into one host-visible completion:
    /// the timing of the last device request, carrying the *worst* status
    /// of the batch — a media error on any range must not be masked by a
    /// later range completing cleanly.
    fn collapse(completions: &[Completion]) -> Completion {
        let mut out = *completions.last().expect("at least one range");
        if let Some(failed) = completions.iter().find(|c| !c.is_ok()) {
            out.status = failed.status;
        }
        out
    }

    /// Writes `len` bytes at `offset` within the object, extending it (and
    /// allocating device space) as needed.  Returns the completion of the
    /// last device request the write generated.
    pub fn write(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<Completion, OsdError> {
        let (size, attrs, file) = {
            let s = self.state(object)?;
            (s.size, s.attrs, s.file)
        };
        if attrs.read_only {
            return Err(OsdError::ReadOnly { object });
        }
        if len == 0 {
            return Ok(Completion::ok(self.next_request_id(), at, at, at));
        }
        let end = offset + len;
        if end > size {
            // Grow the object: allocate the missing bytes.
            let grow = end - size;
            self.allocator.append(file, grow).map_err(|e| match e {
                FsError::OutOfSpace { requested, .. } => OsdError::OutOfSpace { requested },
                FsError::NoSuchFile { .. } => OsdError::NoSuchObject { object },
            })?;
            self.objects
                .get_mut(&object)
                .expect("state() checked existence")
                .size = end;
        }
        let ranges = self.map_extents(object, offset, len)?;
        // The object's temperature attribute rides along as a write hint:
        // exactly the placement information §3.7 says the device should get.
        let hint = WriteHint::with_temperature(attrs.temperature);
        let completions = self.submit_ranges(&ranges, Some(hint), attrs.priority, at)?;
        Ok(Self::collapse(&completions))
    }

    /// Reads `len` bytes at `offset` within the object.
    pub fn read(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<Completion, OsdError> {
        let (size, attrs) = {
            let s = self.state(object)?;
            (s.size, s.attrs)
        };
        let end = offset + len;
        if end > size {
            return Err(OsdError::OutOfRange {
                object,
                requested_end: end,
                size,
            });
        }
        if len == 0 {
            return Ok(Completion::ok(self.next_request_id(), at, at, at));
        }
        let ranges = self.map_extents(object, offset, len)?;
        let completions = self.submit_ranges(&ranges, None, attrs.priority, at)?;
        Ok(Self::collapse(&completions))
    }

    /// Deletes an object.  Every byte range it occupied is reported to the
    /// device as one batch of `Free` commands over the queue pair — the
    /// informed-cleaning path the paper advocates.
    pub fn delete_object(&mut self, object: ObjectId, at: SimTime) -> Result<(), OsdError> {
        let state = self
            .objects
            .remove(&object)
            .ok_or(OsdError::NoSuchObject { object })?;
        let freed = self
            .allocator
            .delete(state.file)
            .map_err(|_| OsdError::NoSuchObject { object })?;
        let arrival = at.max(self.clock);
        let mut queue = HostQueue::new();
        for range in freed {
            if range.is_empty() {
                continue;
            }
            let id = self.next_request_id();
            queue.submit(id, HostCommand::Free { range }, arrival);
        }
        if queue.pending_submissions() == 0 {
            return Ok(());
        }
        self.ssd
            .serve(std::slice::from_mut(&mut queue))
            .map_err(|e| OsdError::Ssd(SsdError::Device(e)))?;
        for completion in queue.drain_completions() {
            self.clock = self.clock.max(completion.finish);
        }
        Ok(())
    }

    /// Flushes device-side buffers (open stripes) to flash, as a `Flush`
    /// command over the queue pair.
    pub fn flush(&mut self) -> Result<(), OsdError> {
        self.transport(HostCommand::Flush, Priority::Normal, self.clock)?;
        Ok(())
    }

    /// Accepts one protocol command addressed to the object store and
    /// translates it: object-management commands mutate the object table
    /// (deletes free device space through the block transport), fences
    /// order trivially between calls, and device-addressed block commands
    /// are rejected — the host of an object store addresses objects, not
    /// LBNs (§3.7).
    pub fn submit_command(
        &mut self,
        command: HostCommand,
        at: SimTime,
    ) -> Result<Completion, OsdError> {
        let arrival = at.max(self.clock);
        let metadata_completion = |dev: &mut Self| {
            let id = dev.next_request_id();
            dev.clock = dev.clock.max(arrival);
            Completion::ok(id, arrival, arrival, arrival)
        };
        match command {
            HostCommand::ObjectCreate { object, attrs } => {
                self.create_object_with_id(ObjectId(object), attrs)?;
                Ok(metadata_completion(self))
            }
            HostCommand::ObjectSetAttr { object, attrs } => {
                self.set_attributes(ObjectId(object), attrs)?;
                Ok(metadata_completion(self))
            }
            HostCommand::ObjectDelete { object } => {
                self.delete_object(ObjectId(object), arrival)?;
                let id = self.next_request_id();
                Ok(Completion::ok(
                    id,
                    arrival,
                    arrival,
                    self.clock.max(arrival),
                ))
            }
            HostCommand::Flush => self.transport(HostCommand::Flush, Priority::Normal, arrival),
            HostCommand::Barrier => {
                // The store serves commands to completion between calls, so
                // a barrier is already drained when it arrives.
                Ok(metadata_completion(self))
            }
            HostCommand::Read { .. } | HostCommand::Write { .. } | HostCommand::Free { .. } => {
                Err(OsdError::UnsupportedCommand {
                    what: "device-addressed block commands on an object store",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osd() -> OsdDevice {
        OsdDevice::new(SsdConfig::tiny_page_mapped()).unwrap()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        assert_eq!(dev.object_size(obj).unwrap(), 0);
        let w = dev.write(obj, 0, 16 * 1024, SimTime::ZERO).unwrap();
        assert!(w.finish > SimTime::ZERO);
        assert_eq!(dev.object_size(obj).unwrap(), 16 * 1024);
        let r = dev.read(obj, 4096, 8192, dev.now()).unwrap();
        assert!(r.finish >= w.finish);
        assert_eq!(dev.object_count(), 1);
        assert!(dev.used_bytes() >= 16 * 1024);
    }

    #[test]
    fn reads_beyond_object_size_are_rejected() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        dev.write(obj, 0, 4096, SimTime::ZERO).unwrap();
        assert!(matches!(
            dev.read(obj, 0, 8192, SimTime::ZERO),
            Err(OsdError::OutOfRange { .. })
        ));
        let missing = ObjectId(999);
        assert!(matches!(
            dev.read(missing, 0, 1, SimTime::ZERO),
            Err(OsdError::NoSuchObject { .. })
        ));
    }

    #[test]
    fn read_only_objects_reject_writes() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        dev.write(obj, 0, 4096, SimTime::ZERO).unwrap();
        dev.set_attributes(obj, ObjectAttributes::cold_read_only())
            .unwrap();
        assert!(matches!(
            dev.write(obj, 0, 4096, dev.now()),
            Err(OsdError::ReadOnly { .. })
        ));
        // Reads still work.
        dev.read(obj, 0, 4096, dev.now()).unwrap();
        assert_eq!(
            dev.get_attributes(obj).unwrap().temperature,
            Temperature::Cold
        );
    }

    #[test]
    fn delete_releases_space_and_informs_the_ftl() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        dev.write(obj, 0, 32 * 1024, SimTime::ZERO).unwrap();
        let used_before = dev.used_bytes();
        assert!(used_before >= 32 * 1024);
        dev.delete_object(obj, dev.now()).unwrap();
        assert_eq!(dev.object_count(), 0);
        assert!(dev.used_bytes() < used_before);
        let stats = dev.device_stats();
        assert!(
            stats.ftl.frees_accepted > 0,
            "object deletion must reach the FTL as free notifications"
        );
        assert!(matches!(
            dev.delete_object(obj, dev.now()),
            Err(OsdError::NoSuchObject { .. })
        ));
    }

    #[test]
    fn high_priority_objects_issue_high_priority_requests() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::high_priority());
        assert_eq!(dev.get_attributes(obj).unwrap().priority, Priority::High);
        dev.write(obj, 0, 4096, SimTime::ZERO).unwrap();
        // The write succeeded; priority is carried per-request (observable
        // through priority-aware cleaning in the experiments).
        assert_eq!(dev.device_stats().host_writes, 1);
    }

    #[test]
    fn growing_writes_extend_objects_incrementally() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        for i in 0..8u64 {
            dev.write(obj, i * 4096, 4096, dev.now()).unwrap();
        }
        assert_eq!(dev.object_size(obj).unwrap(), 8 * 4096);
        // Overwrites inside the existing size do not grow the object.
        dev.write(obj, 0, 4096, dev.now()).unwrap();
        assert_eq!(dev.object_size(obj).unwrap(), 8 * 4096);
    }

    #[test]
    fn many_objects_until_out_of_space() {
        let mut dev = osd();
        let capacity = dev.capacity_bytes();
        let mut created = Vec::new();
        let mut wrote = 0u64;
        loop {
            let obj = dev.create_object(ObjectAttributes::default());
            match dev.write(obj, 0, 16 * 4096, dev.now()) {
                Ok(_) => {
                    created.push(obj);
                    wrote += 16 * 4096;
                }
                Err(OsdError::OutOfSpace { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(wrote <= capacity, "wrote more than capacity");
        }
        assert!(!created.is_empty());
        // Deleting everything returns the space.
        for obj in created {
            dev.delete_object(obj, dev.now()).unwrap();
        }
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn object_commands_translate_through_the_protocol() {
        let mut dev = osd();
        // Create under a host-chosen id, write, set attributes, delete —
        // all as protocol commands.
        dev.submit_command(
            HostCommand::ObjectCreate {
                object: 42,
                attrs: ObjectAttributes::default(),
            },
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(dev.object_count(), 1);
        dev.write(ObjectId(42), 0, 16 * 1024, dev.now()).unwrap();
        dev.submit_command(
            HostCommand::ObjectSetAttr {
                object: 42,
                attrs: ObjectAttributes::high_priority(),
            },
            dev.now(),
        )
        .unwrap();
        assert_eq!(
            dev.get_attributes(ObjectId(42)).unwrap().priority,
            Priority::High
        );
        // Creating the same id again fails loudly.
        assert!(matches!(
            dev.submit_command(
                HostCommand::ObjectCreate {
                    object: 42,
                    attrs: ObjectAttributes::default(),
                },
                dev.now(),
            ),
            Err(OsdError::ObjectExists { .. })
        ));
        // Auto-assigned ids skip past host-chosen ones.
        let auto = dev.create_object(ObjectAttributes::default());
        assert!(auto.0 > 42);
        let delete = dev
            .submit_command(HostCommand::ObjectDelete { object: 42 }, dev.now())
            .unwrap();
        assert!(delete.finish >= delete.arrival);
        assert_eq!(dev.object_count(), 1);
        assert!(dev.device_stats().ftl.frees_accepted > 0);
        // Device-addressed block commands cannot cross the object boundary.
        assert!(matches!(
            dev.submit_command(
                HostCommand::Read {
                    range: ossd_block::ByteRange::new(0, 4096)
                },
                dev.now(),
            ),
            Err(OsdError::UnsupportedCommand { .. })
        ));
        // Fences are accepted and drain trivially between calls.
        let barrier = dev.submit_command(HostCommand::Barrier, dev.now()).unwrap();
        assert_eq!(barrier.start, barrier.finish);
    }

    #[test]
    fn object_temperature_reaches_the_device_as_write_hints() {
        let mut dev = osd();
        let hot = dev.create_object(ObjectAttributes {
            temperature: Temperature::Hot,
            ..ObjectAttributes::default()
        });
        dev.write(hot, 0, 8 * 4096, SimTime::ZERO).unwrap();
        let warm = dev.create_object(ObjectAttributes::default());
        dev.write(warm, 0, 4096, dev.now()).unwrap();
        let stats = dev.device_stats();
        assert!(
            stats.hinted_hot_writes > 0,
            "hot object writes must carry the hot stream hint"
        );
        // Warm (default) objects are unhinted.
        assert_eq!(stats.hinted_cold_writes, 0);
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        let w = dev.write(obj, 0, 0, SimTime::from_micros(5)).unwrap();
        assert_eq!(w.arrival, SimTime::from_micros(5));
        let r = dev.read(obj, 0, 0, SimTime::from_micros(6)).unwrap();
        assert_eq!(r.finish, SimTime::from_micros(6));
        assert_eq!(dev.object_size(obj).unwrap(), 0);
    }
}
