//! Object-based storage on top of the SSD simulator.
//!
//! §3.7 of the paper argues that the file system should "operate on objects
//! and let the device handle the logical to physical mapping,
//! sequential-random accesses to (parts of) objects, and stripe-aligned
//! accesses", that the device should "manage the space for objects
//! (including the allocation and release of pages to objects) in order to
//! implement informed cleaning", and that object attributes should convey
//! priorities and read-only (cold) data.  [`OsdDevice`] implements exactly
//! that contract over [`ossd_ssd::Ssd`]:
//!
//! * the device owns allocation: object bytes are mapped to device byte
//!   ranges by an internal extent allocator;
//! * deleting or truncating an object immediately issues free notifications
//!   to the FTL, so cleaning never migrates dead object data;
//! * the `priority` attribute of an object is attached to every I/O the
//!   object generates, feeding priority-aware cleaning;
//! * the `temperature`/`read_only` attributes are available to placement
//!   policies (cold data is a wear-leveling hint).

use std::collections::BTreeMap;

use ossd_block::{BlockRequest, Completion, Priority};
use ossd_ftl::FtlConfig;
use ossd_sim::SimTime;
use ossd_ssd::{Ssd, SsdConfig, SsdError, SsdStats};
use ossd_workload::fslite::{FsError, FsLite};

/// Identifier of an object stored on an [`OsdDevice`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

/// How frequently the host expects the object to change; a placement and
/// wear-leveling hint (§3.7: read-only attributes mark cold data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Frequently rewritten.
    Hot,
    /// Default.
    #[default]
    Warm,
    /// Rarely or never rewritten.
    Cold,
}

/// Host-visible attributes of an object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectAttributes {
    /// Priority attached to every I/O this object generates.
    pub priority: Priority,
    /// Expected update frequency.
    pub temperature: Temperature,
    /// Whether the object is read-only (its pages are candidates for cold
    /// placement during wear-leveling).
    pub read_only: bool,
}

impl ObjectAttributes {
    /// Attributes of a latency-sensitive (foreground) object.
    pub fn high_priority() -> Self {
        ObjectAttributes {
            priority: Priority::High,
            ..ObjectAttributes::default()
        }
    }

    /// Attributes of cold, read-only data.
    pub fn cold_read_only() -> Self {
        ObjectAttributes {
            temperature: Temperature::Cold,
            read_only: true,
            ..ObjectAttributes::default()
        }
    }
}

/// Errors the object store can report.
#[derive(Clone, Debug, PartialEq)]
pub enum OsdError {
    /// The object does not exist.
    NoSuchObject {
        /// The missing object.
        object: ObjectId,
    },
    /// A read or write addressed bytes beyond the end of the object.
    OutOfRange {
        /// The object.
        object: ObjectId,
        /// Requested end offset.
        requested_end: u64,
        /// Current object size.
        size: u64,
    },
    /// A write targeted a read-only object.
    ReadOnly {
        /// The object.
        object: ObjectId,
    },
    /// The device has no space left for the requested allocation.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
    },
    /// The underlying SSD reported an error.
    Ssd(SsdError),
}

impl std::fmt::Display for OsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsdError::NoSuchObject { object } => write!(f, "no such object: {}", object.0),
            OsdError::OutOfRange {
                object,
                requested_end,
                size,
            } => write!(
                f,
                "object {} access to byte {requested_end} beyond size {size}",
                object.0
            ),
            OsdError::ReadOnly { object } => write!(f, "object {} is read-only", object.0),
            OsdError::OutOfSpace { requested } => {
                write!(f, "device out of space for {requested} bytes")
            }
            OsdError::Ssd(e) => write!(f, "ssd error: {e}"),
        }
    }
}

impl std::error::Error for OsdError {}

impl From<SsdError> for OsdError {
    fn from(e: SsdError) -> Self {
        OsdError::Ssd(e)
    }
}

#[derive(Clone, Debug)]
struct ObjectState {
    /// File id inside the internal allocator.
    file: ossd_workload::fslite::FileId,
    size: u64,
    attrs: ObjectAttributes,
}

/// An object-based storage device backed by a simulated SSD.
pub struct OsdDevice {
    ssd: Ssd,
    allocator: FsLite,
    objects: BTreeMap<ObjectId, ObjectState>,
    next_object: u64,
    next_request: u64,
    clock: SimTime,
}

impl OsdDevice {
    /// Builds an object store over an SSD with the given configuration.
    ///
    /// The FTL is switched to *informed* mode (free notifications honoured)
    /// because delegating allocation to the device is precisely what makes
    /// that information available (§3.5, §3.7).
    pub fn new(config: SsdConfig) -> Result<Self, OsdError> {
        let config = SsdConfig {
            ftl: FtlConfig {
                honor_free: true,
                ..config.ftl
            },
            ..config
        };
        let ssd = Ssd::new(config)?;
        let capacity = ossd_block::BlockDevice::capacity_bytes(&ssd);
        let block = ssd.config().geometry.page_bytes as u64;
        Ok(OsdDevice {
            ssd,
            allocator: FsLite::new(capacity, block),
            objects: BTreeMap::new(),
            next_object: 1,
            next_request: 0,
            clock: SimTime::ZERO,
        })
    }

    /// The current simulated time (completion of the last operation).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Device statistics (FTL, cleaning, wear).
    pub fn device_stats(&self) -> SsdStats {
        self.ssd.stats()
    }

    /// Total bytes the device can store for objects.
    pub fn capacity_bytes(&self) -> u64 {
        self.allocator.capacity_bytes()
    }

    /// Bytes currently allocated to objects.
    pub fn used_bytes(&self) -> u64 {
        self.allocator.used_bytes()
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Lists all live objects.
    pub fn list_objects(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Current size of an object in bytes.
    pub fn object_size(&self, object: ObjectId) -> Result<u64, OsdError> {
        Ok(self.state(object)?.size)
    }

    /// The attributes of an object.
    pub fn get_attributes(&self, object: ObjectId) -> Result<ObjectAttributes, OsdError> {
        Ok(self.state(object)?.attrs)
    }

    /// Replaces the attributes of an object.
    pub fn set_attributes(
        &mut self,
        object: ObjectId,
        attrs: ObjectAttributes,
    ) -> Result<(), OsdError> {
        let state = self
            .objects
            .get_mut(&object)
            .ok_or(OsdError::NoSuchObject { object })?;
        state.attrs = attrs;
        Ok(())
    }

    fn state(&self, object: ObjectId) -> Result<&ObjectState, OsdError> {
        self.objects
            .get(&object)
            .ok_or(OsdError::NoSuchObject { object })
    }

    fn next_request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// Creates an empty object with the given attributes.
    pub fn create_object(&mut self, attrs: ObjectAttributes) -> ObjectId {
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        // Zero-byte objects own no extents yet; the allocator file is
        // created lazily on first write.
        let file = self
            .allocator
            .create(0)
            .map(|(f, _)| f)
            .unwrap_or_else(|_| {
                // A zero-byte create can only fail on a zero-capacity device;
                // fall back to an empty placeholder id that the first write
                // will replace.
                ossd_workload::fslite::FileId(u64::MAX)
            });
        self.objects.insert(
            id,
            ObjectState {
                file,
                size: 0,
                attrs,
            },
        );
        id
    }

    /// Maps `offset..offset+len` of an object onto device byte ranges.
    fn map_extents(
        &self,
        object: ObjectId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<ossd_block::ByteRange>, OsdError> {
        let state = self.state(object)?;
        let extents = self
            .allocator
            .extents(state.file)
            .map_err(|_| OsdError::NoSuchObject { object })?;
        let mut out = Vec::new();
        let mut skip = offset;
        let mut remaining = len;
        for extent in extents {
            if remaining == 0 {
                break;
            }
            if skip >= extent.len {
                skip -= extent.len;
                continue;
            }
            let start = extent.offset + skip;
            let avail = extent.len - skip;
            let take = avail.min(remaining);
            out.push(ossd_block::ByteRange::new(start, take));
            remaining -= take;
            skip = 0;
        }
        Ok(out)
    }

    fn submit_ranges(
        &mut self,
        ranges: &[ossd_block::ByteRange],
        write: bool,
        priority: Priority,
        at: SimTime,
    ) -> Result<Vec<Completion>, OsdError> {
        let mut completions = Vec::new();
        let mut arrival = at.max(self.clock);
        for range in ranges {
            let id = self.next_request_id();
            let req = if write {
                BlockRequest::write(id, range.offset, range.len, arrival)
            } else {
                BlockRequest::read(id, range.offset, range.len, arrival)
            }
            .with_priority(priority);
            let completion = self
                .ssd
                .service_request(&req, arrival, priority.is_high())?;
            arrival = completion.finish;
            self.clock = self.clock.max(completion.finish);
            completions.push(completion);
        }
        Ok(completions)
    }

    /// Writes `len` bytes at `offset` within the object, extending it (and
    /// allocating device space) as needed.  Returns the completion of the
    /// last device request the write generated.
    pub fn write(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<Completion, OsdError> {
        let (size, attrs, file) = {
            let s = self.state(object)?;
            (s.size, s.attrs, s.file)
        };
        if attrs.read_only {
            return Err(OsdError::ReadOnly { object });
        }
        if len == 0 {
            return Ok(Completion {
                request_id: self.next_request_id(),
                arrival: at,
                start: at,
                finish: at,
            });
        }
        let end = offset + len;
        if end > size {
            // Grow the object: allocate the missing bytes.
            let grow = end - size;
            self.allocator.append(file, grow).map_err(|e| match e {
                FsError::OutOfSpace { requested, .. } => OsdError::OutOfSpace { requested },
                FsError::NoSuchFile { .. } => OsdError::NoSuchObject { object },
            })?;
            self.objects
                .get_mut(&object)
                .expect("state() checked existence")
                .size = end;
        }
        let ranges = self.map_extents(object, offset, len)?;
        let completions = self.submit_ranges(&ranges, true, attrs.priority, at)?;
        Ok(*completions.last().expect("len > 0 so at least one range"))
    }

    /// Reads `len` bytes at `offset` within the object.
    pub fn read(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
        at: SimTime,
    ) -> Result<Completion, OsdError> {
        let (size, attrs) = {
            let s = self.state(object)?;
            (s.size, s.attrs)
        };
        let end = offset + len;
        if end > size {
            return Err(OsdError::OutOfRange {
                object,
                requested_end: end,
                size,
            });
        }
        if len == 0 {
            return Ok(Completion {
                request_id: self.next_request_id(),
                arrival: at,
                start: at,
                finish: at,
            });
        }
        let ranges = self.map_extents(object, offset, len)?;
        let completions = self.submit_ranges(&ranges, false, attrs.priority, at)?;
        Ok(*completions.last().expect("len > 0 so at least one range"))
    }

    /// Deletes an object.  Every byte range it occupied is reported to the
    /// FTL as free — the informed-cleaning path the paper advocates.
    pub fn delete_object(&mut self, object: ObjectId, at: SimTime) -> Result<(), OsdError> {
        let state = self
            .objects
            .remove(&object)
            .ok_or(OsdError::NoSuchObject { object })?;
        let freed = self
            .allocator
            .delete(state.file)
            .map_err(|_| OsdError::NoSuchObject { object })?;
        let arrival = at.max(self.clock);
        for range in freed {
            if range.is_empty() {
                continue;
            }
            let id = self.next_request_id();
            let req = BlockRequest::free(id, range.offset, range.len, arrival);
            let completion = self.ssd.service_request(&req, arrival, false)?;
            self.clock = self.clock.max(completion.finish);
        }
        Ok(())
    }

    /// Flushes device-side buffers (open stripes) to flash.
    pub fn flush(&mut self) -> Result<(), OsdError> {
        let finish = self.ssd.flush(self.clock)?;
        self.clock = self.clock.max(finish);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osd() -> OsdDevice {
        OsdDevice::new(SsdConfig::tiny_page_mapped()).unwrap()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        assert_eq!(dev.object_size(obj).unwrap(), 0);
        let w = dev.write(obj, 0, 16 * 1024, SimTime::ZERO).unwrap();
        assert!(w.finish > SimTime::ZERO);
        assert_eq!(dev.object_size(obj).unwrap(), 16 * 1024);
        let r = dev.read(obj, 4096, 8192, dev.now()).unwrap();
        assert!(r.finish >= w.finish);
        assert_eq!(dev.object_count(), 1);
        assert!(dev.used_bytes() >= 16 * 1024);
    }

    #[test]
    fn reads_beyond_object_size_are_rejected() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        dev.write(obj, 0, 4096, SimTime::ZERO).unwrap();
        assert!(matches!(
            dev.read(obj, 0, 8192, SimTime::ZERO),
            Err(OsdError::OutOfRange { .. })
        ));
        let missing = ObjectId(999);
        assert!(matches!(
            dev.read(missing, 0, 1, SimTime::ZERO),
            Err(OsdError::NoSuchObject { .. })
        ));
    }

    #[test]
    fn read_only_objects_reject_writes() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        dev.write(obj, 0, 4096, SimTime::ZERO).unwrap();
        dev.set_attributes(obj, ObjectAttributes::cold_read_only())
            .unwrap();
        assert!(matches!(
            dev.write(obj, 0, 4096, dev.now()),
            Err(OsdError::ReadOnly { .. })
        ));
        // Reads still work.
        dev.read(obj, 0, 4096, dev.now()).unwrap();
        assert_eq!(
            dev.get_attributes(obj).unwrap().temperature,
            Temperature::Cold
        );
    }

    #[test]
    fn delete_releases_space_and_informs_the_ftl() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        dev.write(obj, 0, 32 * 1024, SimTime::ZERO).unwrap();
        let used_before = dev.used_bytes();
        assert!(used_before >= 32 * 1024);
        dev.delete_object(obj, dev.now()).unwrap();
        assert_eq!(dev.object_count(), 0);
        assert!(dev.used_bytes() < used_before);
        let stats = dev.device_stats();
        assert!(
            stats.ftl.frees_accepted > 0,
            "object deletion must reach the FTL as free notifications"
        );
        assert!(matches!(
            dev.delete_object(obj, dev.now()),
            Err(OsdError::NoSuchObject { .. })
        ));
    }

    #[test]
    fn high_priority_objects_issue_high_priority_requests() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::high_priority());
        assert_eq!(dev.get_attributes(obj).unwrap().priority, Priority::High);
        dev.write(obj, 0, 4096, SimTime::ZERO).unwrap();
        // The write succeeded; priority is carried per-request (observable
        // through priority-aware cleaning in the experiments).
        assert_eq!(dev.device_stats().host_writes, 1);
    }

    #[test]
    fn growing_writes_extend_objects_incrementally() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        for i in 0..8u64 {
            dev.write(obj, i * 4096, 4096, dev.now()).unwrap();
        }
        assert_eq!(dev.object_size(obj).unwrap(), 8 * 4096);
        // Overwrites inside the existing size do not grow the object.
        dev.write(obj, 0, 4096, dev.now()).unwrap();
        assert_eq!(dev.object_size(obj).unwrap(), 8 * 4096);
    }

    #[test]
    fn many_objects_until_out_of_space() {
        let mut dev = osd();
        let capacity = dev.capacity_bytes();
        let mut created = Vec::new();
        let mut wrote = 0u64;
        loop {
            let obj = dev.create_object(ObjectAttributes::default());
            match dev.write(obj, 0, 16 * 4096, dev.now()) {
                Ok(_) => {
                    created.push(obj);
                    wrote += 16 * 4096;
                }
                Err(OsdError::OutOfSpace { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(wrote <= capacity, "wrote more than capacity");
        }
        assert!(!created.is_empty());
        // Deleting everything returns the space.
        for obj in created {
            dev.delete_object(obj, dev.now()).unwrap();
        }
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut dev = osd();
        let obj = dev.create_object(ObjectAttributes::default());
        let w = dev.write(obj, 0, 0, SimTime::from_micros(5)).unwrap();
        assert_eq!(w.arrival, SimTime::from_micros(5));
        let r = dev.read(obj, 0, 0, SimTime::from_micros(6)).unwrap();
        assert_eq!(r.finish, SimTime::from_micros(6));
        assert_eq!(dev.object_size(obj).unwrap(), 0);
    }
}
