//! The whole flash array: every element plus aggregate wear statistics.

use crate::element::{ElementCounters, FlashElement};
use crate::error::FlashError;
use crate::geometry::{ElementId, FlashGeometry, PhysPageAddr};
use crate::timing::FlashTiming;

/// Aggregate wear statistics across all blocks of the array.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WearSummary {
    /// Lowest per-block erase count.
    pub min_erases: u32,
    /// Highest per-block erase count.
    pub max_erases: u32,
    /// Mean per-block erase count.
    pub mean_erases: f64,
    /// Total block erases performed.
    pub total_erases: u64,
    /// Number of blocks whose erase count exceeds the part's endurance.
    pub worn_out_blocks: u64,
}

impl WearSummary {
    /// Difference between the most- and least-worn blocks; the quantity
    /// wear-leveling tries to bound.
    pub fn spread(&self) -> u32 {
        self.max_erases - self.min_erases
    }
}

/// The complete flash array of an SSD.
#[derive(Clone, Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    elements: Vec<FlashElement>,
}

impl FlashArray {
    /// Builds an erased array for the given geometry and timing.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Result<Self, FlashError> {
        geometry.validate()?;
        let elements = (0..geometry.elements())
            .map(|i| {
                FlashElement::new(
                    ElementId(i),
                    geometry.blocks_per_element(),
                    geometry.pages_per_block,
                )
            })
            .collect();
        Ok(FlashArray {
            geometry,
            timing,
            elements,
        })
    }

    /// The array geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The flash timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Number of elements.
    pub fn element_count(&self) -> u32 {
        self.elements.len() as u32
    }

    /// Immutable access to an element.
    pub fn element(&self, id: ElementId) -> Result<&FlashElement, FlashError> {
        self.elements.get(id.index()).ok_or(FlashError::OutOfRange {
            what: "element",
            index: id.0 as u64,
            bound: self.elements.len() as u64,
        })
    }

    /// Mutable access to an element.
    pub fn element_mut(&mut self, id: ElementId) -> Result<&mut FlashElement, FlashError> {
        let bound = self.elements.len() as u64;
        self.elements
            .get_mut(id.index())
            .ok_or(FlashError::OutOfRange {
                what: "element",
                index: id.0 as u64,
                bound,
            })
    }

    /// Reads the page at `addr`.
    pub fn read(&mut self, addr: PhysPageAddr) -> Result<(), FlashError> {
        self.geometry.check_addr(addr)?;
        self.element_mut(addr.element)?.read(addr.block, addr.page)
    }

    /// Programs the next sequential page of `block` on `element`.
    pub fn program(&mut self, element: ElementId, block: u32) -> Result<PhysPageAddr, FlashError> {
        self.element_mut(element)?.program(block)
    }

    /// Invalidates the page at `addr`.
    pub fn invalidate(&mut self, addr: PhysPageAddr) -> Result<(), FlashError> {
        self.geometry.check_addr(addr)?;
        self.element_mut(addr.element)?
            .invalidate(addr.block, addr.page)
    }

    /// Erases `block` on `element`.
    pub fn erase(&mut self, element: ElementId, block: u32) -> Result<(), FlashError> {
        self.element_mut(element)?.erase(block)
    }

    /// Total free pages across the array.
    pub fn free_pages(&self) -> u64 {
        self.elements.iter().map(|e| e.free_pages()).sum()
    }

    /// Total valid pages across the array.
    pub fn valid_pages(&self) -> u64 {
        self.elements.iter().map(|e| e.valid_pages()).sum()
    }

    /// Total stale pages across the array.
    pub fn invalid_pages(&self) -> u64 {
        self.elements.iter().map(|e| e.invalid_pages()).sum()
    }

    /// Total physical pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.geometry.total_pages()
    }

    /// Sums the per-element operation counters.
    pub fn counters(&self) -> ElementCounters {
        let mut total = ElementCounters::default();
        for e in &self.elements {
            let c = e.counters();
            total.page_reads += c.page_reads;
            total.page_programs += c.page_programs;
            total.block_erases += c.block_erases;
        }
        total
    }

    /// Computes aggregate wear statistics.
    pub fn wear_summary(&self) -> WearSummary {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut total = 0u64;
        let mut count = 0u64;
        let mut worn = 0u64;
        for e in &self.elements {
            for c in e.erase_counts() {
                min = min.min(c);
                max = max.max(c);
                total += c as u64;
                count += 1;
                if c >= self.timing.endurance {
                    worn += 1;
                }
            }
        }
        if count == 0 {
            return WearSummary::default();
        }
        WearSummary {
            min_erases: min,
            max_erases: max,
            mean_erases: total as f64 / count as f64,
            total_erases: total,
            worn_out_blocks: worn,
        }
    }

    /// Iterates over all elements.
    pub fn iter_elements(&self) -> impl Iterator<Item = &FlashElement> + '_ {
        self.elements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTiming;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::tiny(), FlashTiming::slc()).unwrap()
    }

    #[test]
    fn new_array_matches_geometry() {
        let a = array();
        assert_eq!(a.element_count(), 2);
        assert_eq!(a.total_pages(), 128);
        assert_eq!(a.free_pages(), 128);
        assert_eq!(a.valid_pages(), 0);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let mut g = FlashGeometry::tiny();
        g.blocks_per_plane = 0;
        assert!(FlashArray::new(g, FlashTiming::slc()).is_err());
    }

    #[test]
    fn cross_element_operations() {
        let mut a = array();
        let p0 = a.program(ElementId(0), 0).unwrap();
        let p1 = a.program(ElementId(1), 3).unwrap();
        assert_eq!(p0.element, ElementId(0));
        assert_eq!(p1.element, ElementId(1));
        a.read(p0).unwrap();
        a.read(p1).unwrap();
        a.invalidate(p0).unwrap();
        a.erase(ElementId(0), 0).unwrap();
        let c = a.counters();
        assert_eq!(c.page_programs, 2);
        assert_eq!(c.page_reads, 2);
        assert_eq!(c.block_erases, 1);
        assert_eq!(a.valid_pages(), 1);
    }

    #[test]
    fn addresses_are_validated() {
        let mut a = array();
        let bad = PhysPageAddr {
            element: ElementId(5),
            block: 0,
            page: 0,
        };
        assert!(a.read(bad).is_err());
        assert!(a.invalidate(bad).is_err());
        assert!(a.program(ElementId(5), 0).is_err());
        assert!(a.erase(ElementId(0), 99).is_err());
        assert!(a.element(ElementId(9)).is_err());
    }

    #[test]
    fn wear_summary_tracks_spread() {
        let mut a = array();
        // Erase block 0 of element 0 three times, block 1 once.
        for _ in 0..3 {
            a.erase(ElementId(0), 0).unwrap();
        }
        a.erase(ElementId(0), 1).unwrap();
        let w = a.wear_summary();
        assert_eq!(w.min_erases, 0);
        assert_eq!(w.max_erases, 3);
        assert_eq!(w.total_erases, 4);
        assert_eq!(w.spread(), 3);
        assert_eq!(w.worn_out_blocks, 0);
        assert!(w.mean_erases > 0.0);
    }

    #[test]
    fn page_accounting_sums_across_elements() {
        let mut a = array();
        for _ in 0..5 {
            a.program(ElementId(0), 2).unwrap();
        }
        for _ in 0..3 {
            a.program(ElementId(1), 2).unwrap();
        }
        assert_eq!(a.valid_pages(), 8);
        assert_eq!(a.free_pages(), 120);
        assert_eq!(
            a.valid_pages() + a.invalid_pages() + a.free_pages(),
            a.total_pages()
        );
    }
}
