//! The whole flash array: every element, the optional reliability model,
//! and aggregate wear statistics.
//!
//! When a [`ReliabilityModel`] is installed
//! ([`FlashArray::with_reliability`]), every program, erase and read
//! consults it in deterministic operation order: programs and erases can
//! fail (with probability accelerating in the block's wear), failed erases
//! retire the block as a *grown bad block*, and reads return a
//! [`ReadStatus`] describing the ECC retries the controller needed — or an
//! uncorrectable outcome the device surfaces to the host.  The default
//! constructor installs no model; fault-free arrays make no random draws
//! and behave bit-for-bit like the pre-reliability simulator.

use ossd_reliability::{ReadStatus, ReliabilityConfig, ReliabilityModel};

use crate::element::{ElementCounters, FlashElement};
use crate::error::FlashError;
use crate::geometry::{ElementId, FlashGeometry, PhysPageAddr};
use crate::timing::FlashTiming;

/// Aggregate wear statistics across all blocks of the array.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WearSummary {
    /// Lowest per-block erase count.
    pub min_erases: u32,
    /// Highest per-block erase count.
    pub max_erases: u32,
    /// Mean per-block erase count.
    pub mean_erases: f64,
    /// Total block erases performed.
    pub total_erases: u64,
    /// Number of blocks out of service: past the part's rated endurance
    /// *or* retired (grown/factory bad).  A block that is both is counted
    /// exactly once.
    pub worn_out_blocks: u64,
    /// Number of retired (bad) blocks — the grown-bad-block population the
    /// bad-block manager tracks, plus any factory-marked blocks.
    pub retired_blocks: u64,
    /// Blocks still in service (not retired).
    pub spare_blocks: u64,
}

impl WearSummary {
    /// Difference between the most- and least-worn blocks; the quantity
    /// wear-leveling tries to bound.
    pub fn spread(&self) -> u32 {
        self.max_erases - self.min_erases
    }
}

/// Cumulative media-reliability counters of one array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliabilityCounters {
    /// Page programs the fault model failed (the page is burned and the
    /// FTL re-programmed the data elsewhere).
    pub program_fails: u64,
    /// Block erases the fault model failed (each retires the block).
    pub erase_fails: u64,
    /// Blocks retired: grown bad (erase failure or post-program-failure
    /// retirement by the FTL) plus factory-marked bad blocks.
    pub retired_blocks: u64,
    /// Extra read-retry attempts the ECC decode loop needed.
    pub read_retries: u64,
    /// Reads that stayed uncorrectable after every retry.
    pub uncorrectable_reads: u64,
    /// Raw bit errors the ECC corrected transparently.
    pub corrected_bits: u64,
}

/// The complete flash array of an SSD.
#[derive(Clone, Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    elements: Vec<FlashElement>,
    /// The fault/ECC model; `None` (the default) means the array is
    /// perfect and no random draws are ever made.
    reliability: Option<ReliabilityModel>,
    counters: ReliabilityCounters,
}

impl FlashArray {
    /// Builds an erased, fault-free array for the given geometry and timing.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Result<Self, FlashError> {
        Self::with_reliability(geometry, timing, ReliabilityConfig::none())
    }

    /// Builds an array with the given reliability configuration.  A
    /// non-trivial `factory_bad_prob` marks blocks bad up front (in
    /// element/block order, deterministically from the seed); the FTL
    /// excludes them from its allocation pools at construction.
    pub fn with_reliability(
        geometry: FlashGeometry,
        timing: FlashTiming,
        reliability: ReliabilityConfig,
    ) -> Result<Self, FlashError> {
        geometry.validate()?;
        let elements: Vec<FlashElement> = (0..geometry.elements())
            .map(|i| {
                FlashElement::new(
                    ElementId(i),
                    geometry.blocks_per_element(),
                    geometry.pages_per_block,
                )
            })
            .collect();
        let mut array = FlashArray {
            geometry,
            timing,
            elements,
            reliability: None,
            counters: ReliabilityCounters::default(),
        };
        if !reliability.is_none() {
            let mut model = ReliabilityModel::new(&reliability);
            if reliability.faults.factory_bad_prob > 0.0 {
                for element in 0..geometry.elements() {
                    for block in 0..geometry.blocks_per_element() {
                        if model.factory_bad() {
                            array
                                .element_mut(ElementId(element))?
                                .retire(block)
                                .expect("fresh blocks hold no valid pages");
                            array.counters.retired_blocks += 1;
                        }
                    }
                }
            }
            array.reliability = Some(model);
        }
        Ok(array)
    }

    /// The array geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The flash timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Whether a fault model is installed.
    pub fn has_reliability_model(&self) -> bool {
        self.reliability.is_some()
    }

    /// Cumulative reliability counters (fault and recovery events).
    pub fn reliability_counters(&self) -> ReliabilityCounters {
        self.counters
    }

    /// Number of elements.
    pub fn element_count(&self) -> u32 {
        self.elements.len() as u32
    }

    /// Immutable access to an element.
    pub fn element(&self, id: ElementId) -> Result<&FlashElement, FlashError> {
        self.elements.get(id.index()).ok_or(FlashError::OutOfRange {
            what: "element",
            index: id.0 as u64,
            bound: self.elements.len() as u64,
        })
    }

    /// Mutable access to an element.
    pub fn element_mut(&mut self, id: ElementId) -> Result<&mut FlashElement, FlashError> {
        let bound = self.elements.len() as u64;
        self.elements
            .get_mut(id.index())
            .ok_or(FlashError::OutOfRange {
                what: "element",
                index: id.0 as u64,
                bound,
            })
    }

    /// Wear of a block as a fraction of the rated endurance.
    fn wear_of(&self, element: ElementId, block: u32) -> Result<f64, FlashError> {
        let erases = self.element(element)?.block(block)?.erase_count();
        Ok(erases as f64 / self.timing.endurance.max(1) as f64)
    }

    /// Reads the page at `addr`, returning the reliability outcome: how
    /// many ECC read-retries the controller needed and whether the data was
    /// ultimately uncorrectable.  Fault-free arrays always return
    /// [`ReadStatus::clean`].
    pub fn read(&mut self, addr: PhysPageAddr) -> Result<ReadStatus, FlashError> {
        self.geometry.check_addr(addr)?;
        if self.reliability.is_none() {
            // Fault-free fast path (the default everywhere): no wear
            // lookup, no draws.
            self.element_mut(addr.element)?
                .read(addr.block, addr.page)?;
            return Ok(ReadStatus::clean());
        }
        let (wear, reads) = {
            let block = self.element(addr.element)?.block(addr.block)?;
            (
                block.erase_count() as f64 / self.timing.endurance.max(1) as f64,
                block.reads_since_erase(),
            )
        };
        self.element_mut(addr.element)?
            .read(addr.block, addr.page)?;
        let status = self
            .reliability
            .as_mut()
            .expect("checked above")
            .read_outcome(wear, reads);
        self.counters.read_retries += status.retries as u64;
        self.counters.corrected_bits += status.corrected_bits as u64;
        if status.uncorrectable {
            self.counters.uncorrectable_reads += 1;
        }
        Ok(status)
    }

    /// Programs the next sequential page of `block` on `element`.
    ///
    /// With a fault model installed the program can fail
    /// ([`FlashError::ProgramFailed`]): the target page is consumed as
    /// stale (burned) and the caller must re-program the data elsewhere and
    /// schedule the block for retirement.
    pub fn program(&mut self, element: ElementId, block: u32) -> Result<PhysPageAddr, FlashError> {
        if self.reliability.is_some() {
            if self.element(element)?.block(block)?.is_bad() {
                return Err(FlashError::BadBlock {
                    element: element.0,
                    block,
                });
            }
            let wear = self.wear_of(element, block)?;
            let fails = self
                .reliability
                .as_mut()
                .expect("checked above")
                .program_fails(wear);
            if fails {
                let addr = self.element_mut(element)?.skip_page(block)?;
                self.counters.program_fails += 1;
                return Err(FlashError::ProgramFailed { addr });
            }
        }
        self.element_mut(element)?.program(block)
    }

    /// Consumes the next sequential page of `block` as stale without
    /// programming it (lockstep padding after a sibling's program failure).
    pub fn skip_page(
        &mut self,
        element: ElementId,
        block: u32,
    ) -> Result<PhysPageAddr, FlashError> {
        self.element_mut(element)?.skip_page(block)
    }

    /// Invalidates the page at `addr`, reporting the block-state change so
    /// the FTL can maintain incremental indexes (e.g. the victim-selection
    /// index) without re-reading block state.
    pub fn invalidate(
        &mut self,
        addr: PhysPageAddr,
    ) -> Result<crate::BlockStateChange, FlashError> {
        self.geometry.check_addr(addr)?;
        self.element_mut(addr.element)?
            .invalidate(addr.block, addr.page)
    }

    /// Erases `block` on `element` (which must hold no valid pages).
    ///
    /// With a fault model installed the erase can fail
    /// ([`FlashError::EraseFailed`]): the block is retired on the spot as a
    /// grown bad block and must never be allocated again.
    pub fn erase(&mut self, element: ElementId, block: u32) -> Result<(), FlashError> {
        if self.reliability.is_some() {
            let (bad, valid) = {
                let b = self.element(element)?.block(block)?;
                (b.is_bad(), b.valid_count())
            };
            if bad {
                return Err(FlashError::BadBlock {
                    element: element.0,
                    block,
                });
            }
            if valid == 0 {
                // Only a legal erase may fail; illegal erases keep their
                // contract error below.
                let wear = self.wear_of(element, block)?;
                let fails = self
                    .reliability
                    .as_mut()
                    .expect("checked above")
                    .erase_fails(wear);
                if fails {
                    self.element_mut(element)?
                        .retire(block)
                        .expect("no valid pages");
                    self.counters.erase_fails += 1;
                    self.counters.retired_blocks += 1;
                    return Err(FlashError::EraseFailed {
                        element: element.0,
                        block,
                    });
                }
            }
        }
        self.element_mut(element)?.erase(block)
    }

    /// Permanently retires `block` on `element` (the bad-block manager's
    /// explicit path, used after program failures once live data has been
    /// migrated out).  Idempotent on already-retired blocks.
    pub fn retire(&mut self, element: ElementId, block: u32) -> Result<(), FlashError> {
        if self.element(element)?.block(block)?.is_bad() {
            return Ok(());
        }
        self.element_mut(element)?.retire(block)?;
        self.counters.retired_blocks += 1;
        Ok(())
    }

    /// Total free pages across the array (retired blocks excluded).
    pub fn free_pages(&self) -> u64 {
        self.elements.iter().map(|e| e.free_pages()).sum()
    }

    /// Total valid pages across the array.
    pub fn valid_pages(&self) -> u64 {
        self.elements.iter().map(|e| e.valid_pages()).sum()
    }

    /// Total stale pages across the array.
    pub fn invalid_pages(&self) -> u64 {
        self.elements.iter().map(|e| e.invalid_pages()).sum()
    }

    /// Total physical pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.geometry.total_pages()
    }

    /// Sums the per-element operation counters.
    pub fn counters(&self) -> ElementCounters {
        let mut total = ElementCounters::default();
        for e in &self.elements {
            let c = e.counters();
            total.page_reads += c.page_reads;
            total.page_programs += c.page_programs;
            total.block_erases += c.block_erases;
        }
        total
    }

    /// Computes aggregate wear statistics.
    pub fn wear_summary(&self) -> WearSummary {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut total = 0u64;
        let mut count = 0u64;
        let mut worn = 0u64;
        let mut retired = 0u64;
        for e in &self.elements {
            for (_, block) in e.iter_blocks() {
                let c = block.erase_count();
                min = min.min(c);
                max = max.max(c);
                total += c as u64;
                count += 1;
                // A block is out of service when worn past the rating or
                // retired; the union is counted once per block.
                if c >= self.timing.endurance || block.is_bad() {
                    worn += 1;
                }
                if block.is_bad() {
                    retired += 1;
                }
            }
        }
        if count == 0 {
            return WearSummary::default();
        }
        WearSummary {
            min_erases: min,
            max_erases: max,
            mean_erases: total as f64 / count as f64,
            total_erases: total,
            worn_out_blocks: worn,
            retired_blocks: retired,
            spare_blocks: count - retired,
        }
    }

    /// Iterates over all elements.
    pub fn iter_elements(&self) -> impl Iterator<Item = &FlashElement> + '_ {
        self.elements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTiming;
    use ossd_reliability::FaultConfig;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::tiny(), FlashTiming::slc()).unwrap()
    }

    fn faulty_array(faults: FaultConfig) -> FlashArray {
        let config = ReliabilityConfig {
            faults,
            ..ReliabilityConfig::none()
        };
        FlashArray::with_reliability(FlashGeometry::tiny(), FlashTiming::slc(), config).unwrap()
    }

    #[test]
    fn new_array_matches_geometry() {
        let a = array();
        assert_eq!(a.element_count(), 2);
        assert_eq!(a.total_pages(), 128);
        assert_eq!(a.free_pages(), 128);
        assert_eq!(a.valid_pages(), 0);
        assert!(!a.has_reliability_model());
        assert_eq!(a.reliability_counters(), ReliabilityCounters::default());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let mut g = FlashGeometry::tiny();
        g.blocks_per_plane = 0;
        assert!(FlashArray::new(g, FlashTiming::slc()).is_err());
    }

    #[test]
    fn cross_element_operations() {
        let mut a = array();
        let p0 = a.program(ElementId(0), 0).unwrap();
        let p1 = a.program(ElementId(1), 3).unwrap();
        assert_eq!(p0.element, ElementId(0));
        assert_eq!(p1.element, ElementId(1));
        assert_eq!(a.read(p0).unwrap(), ReadStatus::clean());
        assert_eq!(a.read(p1).unwrap(), ReadStatus::clean());
        a.invalidate(p0).unwrap();
        a.erase(ElementId(0), 0).unwrap();
        let c = a.counters();
        assert_eq!(c.page_programs, 2);
        assert_eq!(c.page_reads, 2);
        assert_eq!(c.block_erases, 1);
        assert_eq!(a.valid_pages(), 1);
    }

    #[test]
    fn addresses_are_validated() {
        let mut a = array();
        let bad = PhysPageAddr {
            element: ElementId(5),
            block: 0,
            page: 0,
        };
        assert!(a.read(bad).is_err());
        assert!(a.invalidate(bad).is_err());
        assert!(a.program(ElementId(5), 0).is_err());
        assert!(a.erase(ElementId(0), 99).is_err());
        assert!(a.element(ElementId(9)).is_err());
    }

    #[test]
    fn wear_summary_tracks_spread() {
        let mut a = array();
        // Erase block 0 of element 0 three times, block 1 once.
        for _ in 0..3 {
            a.erase(ElementId(0), 0).unwrap();
        }
        a.erase(ElementId(0), 1).unwrap();
        let w = a.wear_summary();
        assert_eq!(w.min_erases, 0);
        assert_eq!(w.max_erases, 3);
        assert_eq!(w.total_erases, 4);
        assert_eq!(w.spread(), 3);
        assert_eq!(w.worn_out_blocks, 0);
        assert_eq!(w.retired_blocks, 0);
        assert_eq!(w.spare_blocks, 16);
        assert!(w.mean_erases > 0.0);
    }

    #[test]
    fn page_accounting_sums_across_elements() {
        let mut a = array();
        for _ in 0..5 {
            a.program(ElementId(0), 2).unwrap();
        }
        for _ in 0..3 {
            a.program(ElementId(1), 2).unwrap();
        }
        assert_eq!(a.valid_pages(), 8);
        assert_eq!(a.free_pages(), 120);
        assert_eq!(
            a.valid_pages() + a.invalid_pages() + a.free_pages(),
            a.total_pages()
        );
    }

    #[test]
    fn retirement_is_counted_once_in_worn_out() {
        let mut a = array();
        a.retire(ElementId(0), 0).unwrap();
        // Idempotent: retiring again does not double-count.
        a.retire(ElementId(0), 0).unwrap();
        let w = a.wear_summary();
        assert_eq!(w.retired_blocks, 1);
        assert_eq!(w.worn_out_blocks, 1);
        assert_eq!(w.spare_blocks, 15);
        assert_eq!(a.reliability_counters().retired_blocks, 1);
        // Retired pages no longer count as free.
        assert_eq!(a.free_pages(), 120);
        assert!(matches!(
            a.program(ElementId(0), 0),
            Err(FlashError::BadBlock { .. })
        ));
    }

    #[test]
    fn factory_bad_blocks_are_marked_deterministically() {
        let faults = FaultConfig {
            seed: 11,
            factory_bad_prob: 0.25,
            ..FaultConfig::none()
        };
        let a = faulty_array(faults);
        let b = faulty_array(faults);
        let marked: Vec<bool> = a
            .iter_elements()
            .flat_map(|e| e.iter_blocks().map(|(_, b)| b.is_bad()).collect::<Vec<_>>())
            .collect();
        let marked_b: Vec<bool> = b
            .iter_elements()
            .flat_map(|e| e.iter_blocks().map(|(_, b)| b.is_bad()).collect::<Vec<_>>())
            .collect();
        assert_eq!(marked, marked_b, "factory marking must be deterministic");
        let count = marked.iter().filter(|&&m| m).count() as u64;
        assert!(count > 0, "with p=0.25 over 16 blocks some should be bad");
        assert_eq!(a.reliability_counters().retired_blocks, count);
        assert_eq!(a.wear_summary().retired_blocks, count);
    }

    #[test]
    fn program_failures_burn_the_page() {
        let faults = FaultConfig {
            seed: 5,
            program_fail_base: 1.0, // every program fails
            ..FaultConfig::none()
        };
        let mut a = faulty_array(faults);
        let err = a.program(ElementId(0), 0).unwrap_err();
        assert!(matches!(err, FlashError::ProgramFailed { .. }));
        let block = a.element(ElementId(0)).unwrap().block(0).unwrap();
        assert_eq!(block.invalid_count(), 1, "the failed page is consumed");
        assert_eq!(block.valid_count(), 0);
        assert_eq!(a.reliability_counters().program_fails, 1);
    }

    #[test]
    fn erase_failures_retire_the_block() {
        let faults = FaultConfig {
            seed: 5,
            erase_fail_base: 1.0, // every erase fails
            ..FaultConfig::none()
        };
        let mut a = faulty_array(faults);
        let err = a.erase(ElementId(0), 0).unwrap_err();
        assert!(matches!(err, FlashError::EraseFailed { .. }));
        assert!(a.element(ElementId(0)).unwrap().block(0).unwrap().is_bad());
        let c = a.reliability_counters();
        assert_eq!(c.erase_fails, 1);
        assert_eq!(c.retired_blocks, 1);
        // A second erase of the now-bad block reports BadBlock, not a
        // second failure.
        assert!(matches!(
            a.erase(ElementId(0), 0),
            Err(FlashError::BadBlock { .. })
        ));
        // Illegal erases keep their contract error even under p=1.
        a.program(ElementId(1), 0).unwrap();
        assert!(matches!(
            a.erase(ElementId(1), 0),
            Err(FlashError::EraseWithValidPages { .. })
        ));
    }

    #[test]
    fn heavy_ber_forces_retries_and_uncorrectable_reads() {
        let faults = FaultConfig {
            seed: 5,
            raw_ber_base: 200.0, // far beyond the 8-bit ECC even after retries
            ..FaultConfig::none()
        };
        let mut a = faulty_array(faults);
        let addr = a.program(ElementId(0), 0).unwrap();
        let mut retries = 0u64;
        let mut uncorrectable = 0u64;
        for _ in 0..50 {
            let s = a.read(addr).unwrap();
            retries += s.retries as u64;
            uncorrectable += s.uncorrectable as u64;
        }
        assert!(retries > 0, "a 200-bit mean must trigger retries");
        assert!(uncorrectable > 0, "a 200-bit mean must defeat retries");
        let c = a.reliability_counters();
        assert_eq!(c.read_retries, retries);
        assert_eq!(c.uncorrectable_reads, uncorrectable);
        assert!(c.corrected_bits > 0);
    }
}
