//! Per-block page state tracking.
//!
//! A block is the erase unit.  Pages inside a block must be programmed
//! sequentially (a constraint of real NAND that log-structured FTLs rely
//! on), may be invalidated when the logical data they hold is overwritten
//! or freed, and all return to the free state when the block is erased.

use crate::error::FlashError;
use crate::geometry::{ElementId, PhysPageAddr};

/// The block-state delta reported by a page invalidation.
///
/// Mutating flash operations report the state change they caused so an FTL
/// can maintain incremental structures — above all `ossd-gc`'s
/// `VictimIndex` — without re-reading block state after every operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockStateChange {
    /// Whether the page transitioned `Valid` → `Invalid` (false when it was
    /// already stale; invalidation is idempotent).
    pub newly_stale: bool,
    /// The block's stale-page count after the operation.
    pub invalid_pages: u32,
    /// The block's live-page count after the operation.
    pub valid_pages: u32,
}

/// The lifecycle state of one physical page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageState {
    /// Erased and ready to be programmed.
    Free,
    /// Programmed and holding live data.
    Valid,
    /// Programmed but holding stale data (superseded or freed).
    Invalid,
}

/// One erase block: a vector of page states plus a sequential write pointer
/// and an erase counter.
#[derive(Clone, Debug)]
pub struct Block {
    states: Vec<PageState>,
    write_ptr: u32,
    erase_count: u32,
    valid: u32,
    /// Retired (grown or factory bad): the block is permanently out of
    /// service — programs and erases are rejected.
    bad: bool,
    /// Page reads absorbed since the last erase; the reliability model's
    /// retention/read-disturb term scales with it.
    reads_since_erase: u64,
}

impl Block {
    /// Creates an erased block with `pages_per_block` free pages.
    pub fn new(pages_per_block: u32) -> Self {
        Block {
            states: vec![PageState::Free; pages_per_block as usize],
            write_ptr: 0,
            erase_count: 0,
            valid: 0,
            bad: false,
            reads_since_erase: 0,
        }
    }

    /// Number of pages in the block.
    pub fn pages(&self) -> u32 {
        self.states.len() as u32
    }

    /// State of page `page`, or an out-of-range error.
    pub fn state(&self, page: u32) -> Result<PageState, FlashError> {
        self.states
            .get(page as usize)
            .copied()
            .ok_or(FlashError::OutOfRange {
                what: "page",
                index: page as u64,
                bound: self.states.len() as u64,
            })
    }

    /// Programs the next free page in sequence and returns its index.
    ///
    /// Fails with [`FlashError::BlockFull`] when all pages are programmed.
    /// The `element`/`block` coordinates are only used to build error values.
    pub fn program_next(&mut self, element: ElementId, block: u32) -> Result<u32, FlashError> {
        if self.bad {
            return Err(FlashError::BadBlock {
                element: element.0,
                block,
            });
        }
        if self.write_ptr as usize >= self.states.len() {
            return Err(FlashError::BlockFull {
                element: element.0,
                block,
            });
        }
        let page = self.write_ptr;
        debug_assert_eq!(self.states[page as usize], PageState::Free);
        self.states[page as usize] = PageState::Valid;
        self.write_ptr += 1;
        self.valid += 1;
        Ok(page)
    }

    /// Consumes the next sequential page as stale without programming data
    /// into it.  Used when the fault model fails a program (the page is
    /// burned) and by lockstep FTLs that must pad sibling blocks past a
    /// failed row.
    pub fn skip_next(&mut self, element: ElementId, block: u32) -> Result<u32, FlashError> {
        if self.bad {
            return Err(FlashError::BadBlock {
                element: element.0,
                block,
            });
        }
        if self.write_ptr as usize >= self.states.len() {
            return Err(FlashError::BlockFull {
                element: element.0,
                block,
            });
        }
        let page = self.write_ptr;
        debug_assert_eq!(self.states[page as usize], PageState::Free);
        self.states[page as usize] = PageState::Invalid;
        self.write_ptr += 1;
        Ok(page)
    }

    /// Marks a previously programmed page as stale, reporting the
    /// [`BlockStateChange`] so callers can maintain incremental indexes.
    pub fn invalidate(
        &mut self,
        element: ElementId,
        block: u32,
        page: u32,
    ) -> Result<BlockStateChange, FlashError> {
        let addr = PhysPageAddr {
            element,
            block,
            page,
        };
        let newly_stale = match self.state(page)? {
            PageState::Free => return Err(FlashError::InvalidateFreePage { addr }),
            PageState::Invalid => false, // Idempotent: already stale.
            PageState::Valid => {
                self.states[page as usize] = PageState::Invalid;
                self.valid -= 1;
                true
            }
        };
        Ok(BlockStateChange {
            newly_stale,
            invalid_pages: self.invalid_count(),
            valid_pages: self.valid,
        })
    }

    /// Checks that reading `page` would return defined data.
    pub fn check_readable(
        &self,
        element: ElementId,
        block: u32,
        page: u32,
    ) -> Result<(), FlashError> {
        let addr = PhysPageAddr {
            element,
            block,
            page,
        };
        match self.state(page)? {
            PageState::Free => Err(FlashError::ReadFreePage { addr }),
            _ => Ok(()),
        }
    }

    /// Erases the block, returning all pages to the free state.
    ///
    /// Fails if valid pages remain (`force` is deliberately not offered: an
    /// FTL that erases live data has a bug the simulator should expose).
    pub fn erase(&mut self, element: ElementId, block: u32) -> Result<(), FlashError> {
        if self.bad {
            return Err(FlashError::BadBlock {
                element: element.0,
                block,
            });
        }
        if self.valid > 0 {
            return Err(FlashError::EraseWithValidPages {
                element: element.0,
                block,
                valid: self.valid,
            });
        }
        for s in &mut self.states {
            *s = PageState::Free;
        }
        self.write_ptr = 0;
        self.erase_count += 1;
        self.reads_since_erase = 0;
        Ok(())
    }

    /// Permanently retires the block (marks it bad).  Like an erase, this
    /// requires that no valid pages remain — the FTL migrates live data
    /// before retiring.  Idempotent on already-bad blocks.
    pub fn retire(&mut self, element: ElementId, block: u32) -> Result<(), FlashError> {
        if self.valid > 0 {
            return Err(FlashError::EraseWithValidPages {
                element: element.0,
                block,
                valid: self.valid,
            });
        }
        self.bad = true;
        Ok(())
    }

    /// Whether the block is retired (grown or factory bad).
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Records one page read for retention/read-disturb accounting.
    pub(crate) fn record_read(&mut self) {
        self.reads_since_erase += 1;
    }

    /// Page reads absorbed since the last erase.
    pub fn reads_since_erase(&self) -> u64 {
        self.reads_since_erase
    }

    /// Number of valid pages.
    pub fn valid_count(&self) -> u32 {
        self.valid
    }

    /// Number of stale (invalid) pages.
    pub fn invalid_count(&self) -> u32 {
        self.write_ptr - self.valid
    }

    /// Number of still-free (programmable) pages.
    pub fn free_count(&self) -> u32 {
        self.pages() - self.write_ptr
    }

    /// Whether every page has been programmed since the last erase.
    pub fn is_full(&self) -> bool {
        self.write_ptr as usize == self.states.len()
    }

    /// Whether the block is entirely erased.
    pub fn is_erased(&self) -> bool {
        self.write_ptr == 0
    }

    /// Index of the next page that `program_next` would use.
    pub fn write_ptr(&self) -> u32 {
        self.write_ptr
    }

    /// Number of times this block has been erased.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Whether the block has exceeded the given endurance.
    pub fn is_worn_out(&self, endurance: u32) -> bool {
        self.erase_count >= endurance
    }

    /// Iterates over `(page_index, state)` pairs.
    pub fn iter_states(&self) -> impl Iterator<Item = (u32, PageState)> + '_ {
        self.states.iter().enumerate().map(|(i, s)| (i as u32, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: ElementId = ElementId(0);

    #[test]
    fn new_block_is_erased() {
        let b = Block::new(8);
        assert_eq!(b.pages(), 8);
        assert_eq!(b.valid_count(), 0);
        assert_eq!(b.invalid_count(), 0);
        assert_eq!(b.free_count(), 8);
        assert!(b.is_erased());
        assert!(!b.is_full());
        assert_eq!(b.erase_count(), 0);
    }

    #[test]
    fn program_is_sequential() {
        let mut b = Block::new(4);
        assert_eq!(b.program_next(E, 0).unwrap(), 0);
        assert_eq!(b.program_next(E, 0).unwrap(), 1);
        assert_eq!(b.program_next(E, 0).unwrap(), 2);
        assert_eq!(b.program_next(E, 0).unwrap(), 3);
        assert!(b.is_full());
        assert!(matches!(
            b.program_next(E, 0),
            Err(FlashError::BlockFull { .. })
        ));
    }

    #[test]
    fn invalidate_transitions() {
        let mut b = Block::new(4);
        b.program_next(E, 0).unwrap();
        b.program_next(E, 0).unwrap();
        assert_eq!(b.valid_count(), 2);
        b.invalidate(E, 0, 0).unwrap();
        assert_eq!(b.valid_count(), 1);
        assert_eq!(b.invalid_count(), 1);
        // Idempotent on already-invalid pages.
        b.invalidate(E, 0, 0).unwrap();
        assert_eq!(b.valid_count(), 1);
        // Invalidating a free page is an error.
        assert!(matches!(
            b.invalidate(E, 0, 3),
            Err(FlashError::InvalidateFreePage { .. })
        ));
        // Out of range.
        assert!(b.invalidate(E, 0, 9).is_err());
    }

    #[test]
    fn readable_check() {
        let mut b = Block::new(2);
        assert!(matches!(
            b.check_readable(E, 0, 0),
            Err(FlashError::ReadFreePage { .. })
        ));
        b.program_next(E, 0).unwrap();
        assert!(b.check_readable(E, 0, 0).is_ok());
        b.invalidate(E, 0, 0).unwrap();
        // Stale pages are still physically readable.
        assert!(b.check_readable(E, 0, 0).is_ok());
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let mut b = Block::new(2);
        b.program_next(E, 0).unwrap();
        assert!(matches!(
            b.erase(E, 0),
            Err(FlashError::EraseWithValidPages { valid: 1, .. })
        ));
        b.invalidate(E, 0, 0).unwrap();
        b.erase(E, 0).unwrap();
        assert!(b.is_erased());
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_count(), 2);
        // Pages can be programmed again after the erase.
        assert_eq!(b.program_next(E, 0).unwrap(), 0);
    }

    #[test]
    fn wear_tracking() {
        let mut b = Block::new(1);
        for _ in 0..5 {
            b.program_next(E, 0).unwrap();
            b.invalidate(E, 0, 0).unwrap();
            b.erase(E, 0).unwrap();
        }
        assert_eq!(b.erase_count(), 5);
        assert!(b.is_worn_out(5));
        assert!(!b.is_worn_out(6));
    }

    #[test]
    fn iter_states_reports_all_pages() {
        let mut b = Block::new(3);
        b.program_next(E, 0).unwrap();
        b.program_next(E, 0).unwrap();
        b.invalidate(E, 0, 0).unwrap();
        let states: Vec<(u32, PageState)> = b.iter_states().collect();
        assert_eq!(
            states,
            vec![
                (0, PageState::Invalid),
                (1, PageState::Valid),
                (2, PageState::Free)
            ]
        );
    }

    #[test]
    fn skip_consumes_a_page_as_stale() {
        let mut b = Block::new(4);
        assert_eq!(b.skip_next(E, 0).unwrap(), 0);
        assert_eq!(b.state(0).unwrap(), PageState::Invalid);
        assert_eq!(b.valid_count(), 0);
        assert_eq!(b.invalid_count(), 1);
        assert_eq!(b.program_next(E, 0).unwrap(), 1);
        // Skips respect the block capacity.
        b.skip_next(E, 0).unwrap();
        b.skip_next(E, 0).unwrap();
        assert!(matches!(
            b.skip_next(E, 0),
            Err(FlashError::BlockFull { .. })
        ));
    }

    #[test]
    fn retired_blocks_reject_program_and_erase() {
        let mut b = Block::new(2);
        b.program_next(E, 0).unwrap();
        // Retirement requires live data to be migrated first.
        assert!(matches!(
            b.retire(E, 0),
            Err(FlashError::EraseWithValidPages { .. })
        ));
        b.invalidate(E, 0, 0).unwrap();
        b.retire(E, 0).unwrap();
        assert!(b.is_bad());
        assert!(matches!(
            b.program_next(E, 0),
            Err(FlashError::BadBlock { .. })
        ));
        assert!(matches!(b.erase(E, 0), Err(FlashError::BadBlock { .. })));
        // Retire is idempotent.
        b.retire(E, 0).unwrap();
        // Stale data on a bad block is still physically readable.
        assert!(b.check_readable(E, 0, 0).is_ok());
    }

    #[test]
    fn read_disturb_counter_resets_on_erase() {
        let mut b = Block::new(2);
        b.program_next(E, 0).unwrap();
        b.record_read();
        b.record_read();
        assert_eq!(b.reads_since_erase(), 2);
        b.invalidate(E, 0, 0).unwrap();
        b.erase(E, 0).unwrap();
        assert_eq!(b.reads_since_erase(), 0);
    }

    #[test]
    fn counts_always_sum_to_block_size() {
        let mut b = Block::new(16);
        for i in 0..16 {
            b.program_next(E, 0).unwrap();
            if i % 3 == 0 {
                b.invalidate(E, 0, i).unwrap();
            }
            assert_eq!(
                b.valid_count() + b.invalid_count() + b.free_count(),
                b.pages()
            );
        }
    }
}
