//! A flash element: one independently operating die and its blocks.

use crate::block::{Block, BlockStateChange, PageState};
use crate::error::FlashError;
use crate::geometry::{ElementId, PhysPageAddr};

/// Operation counters maintained per element.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElementCounters {
    /// Pages read from the array (host reads plus GC reads).
    pub page_reads: u64,
    /// Pages programmed into the array (host writes plus GC copies).
    pub page_programs: u64,
    /// Blocks erased.
    pub block_erases: u64,
}

/// One die: a vector of blocks, operation counters and wear state.
#[derive(Clone, Debug)]
pub struct FlashElement {
    id: ElementId,
    blocks: Vec<Block>,
    pages_per_block: u32,
    counters: ElementCounters,
}

impl FlashElement {
    /// Creates an erased element with `blocks` blocks of `pages_per_block`
    /// pages each.
    pub fn new(id: ElementId, blocks: u32, pages_per_block: u32) -> Self {
        FlashElement {
            id,
            blocks: (0..blocks).map(|_| Block::new(pages_per_block)).collect(),
            pages_per_block,
            counters: ElementCounters::default(),
        }
    }

    /// This element's identifier.
    pub fn id(&self) -> ElementId {
        self.id
    }

    /// Number of blocks in the element.
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Immutable access to a block.
    pub fn block(&self, block: u32) -> Result<&Block, FlashError> {
        self.blocks
            .get(block as usize)
            .ok_or(FlashError::OutOfRange {
                what: "block",
                index: block as u64,
                bound: self.blocks.len() as u64,
            })
    }

    fn block_mut(&mut self, block: u32) -> Result<&mut Block, FlashError> {
        let bound = self.blocks.len() as u64;
        self.blocks
            .get_mut(block as usize)
            .ok_or(FlashError::OutOfRange {
                what: "block",
                index: block as u64,
                bound,
            })
    }

    /// Reads a page (bumps the read and read-disturb counters after
    /// validating the page holds defined data).
    pub fn read(&mut self, block: u32, page: u32) -> Result<(), FlashError> {
        let id = self.id;
        let blk = self.block_mut(block)?;
        blk.check_readable(id, block, page)?;
        blk.record_read();
        self.counters.page_reads += 1;
        Ok(())
    }

    /// Programs the next sequential page of `block`; returns the programmed
    /// page's address.
    pub fn program(&mut self, block: u32) -> Result<PhysPageAddr, FlashError> {
        let id = self.id;
        let blk = self.block_mut(block)?;
        let page = blk.program_next(id, block)?;
        self.counters.page_programs += 1;
        Ok(PhysPageAddr {
            element: id,
            block,
            page,
        })
    }

    /// Consumes the next sequential page of `block` as stale without
    /// programming it (burned page after a program failure, or lockstep
    /// padding); returns the consumed page's address.
    pub fn skip_page(&mut self, block: u32) -> Result<PhysPageAddr, FlashError> {
        let id = self.id;
        let page = self.block_mut(block)?.skip_next(id, block)?;
        Ok(PhysPageAddr {
            element: id,
            block,
            page,
        })
    }

    /// Permanently retires `block` (no valid pages may remain).
    pub fn retire(&mut self, block: u32) -> Result<(), FlashError> {
        let id = self.id;
        self.block_mut(block)?.retire(id, block)
    }

    /// Marks a page stale, reporting the block-state change.
    pub fn invalidate(&mut self, block: u32, page: u32) -> Result<BlockStateChange, FlashError> {
        let id = self.id;
        self.block_mut(block)?.invalidate(id, block, page)
    }

    /// Erases a block (which must hold no valid pages).
    pub fn erase(&mut self, block: u32) -> Result<(), FlashError> {
        let id = self.id;
        self.block_mut(block)?.erase(id, block)?;
        self.counters.block_erases += 1;
        Ok(())
    }

    /// State of one page.
    pub fn page_state(&self, block: u32, page: u32) -> Result<PageState, FlashError> {
        self.block(block)?.state(page)
    }

    /// Total free (programmable) pages on this element.  Pages of retired
    /// blocks are permanently unusable and excluded.
    pub fn free_pages(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| !b.is_bad())
            .map(|b| b.free_count() as u64)
            .sum()
    }

    /// Number of retired (bad) blocks on this element.
    pub fn bad_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.is_bad()).count() as u32
    }

    /// Total valid pages on this element.
    pub fn valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid_count() as u64).sum()
    }

    /// Total stale pages on this element.
    pub fn invalid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.invalid_count() as u64).sum()
    }

    /// Total pages on this element.
    pub fn total_pages(&self) -> u64 {
        self.blocks.len() as u64 * self.pages_per_block as u64
    }

    /// Operation counters.
    pub fn counters(&self) -> ElementCounters {
        self.counters
    }

    /// Erase counts of every block (for wear-leveling statistics).
    pub fn erase_counts(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().map(|b| b.erase_count())
    }

    /// Iterates over `(block_index, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (u32, &Block)> + '_ {
        self.blocks.iter().enumerate().map(|(i, b)| (i as u32, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem() -> FlashElement {
        FlashElement::new(ElementId(3), 4, 4)
    }

    #[test]
    fn new_element_is_fully_free() {
        let e = elem();
        assert_eq!(e.id(), ElementId(3));
        assert_eq!(e.block_count(), 4);
        assert_eq!(e.total_pages(), 16);
        assert_eq!(e.free_pages(), 16);
        assert_eq!(e.valid_pages(), 0);
        assert_eq!(e.invalid_pages(), 0);
    }

    #[test]
    fn program_read_invalidate_erase_cycle() {
        let mut e = elem();
        let addr = e.program(1).unwrap();
        assert_eq!(addr.element, ElementId(3));
        assert_eq!(addr.block, 1);
        assert_eq!(addr.page, 0);
        e.read(1, 0).unwrap();
        assert_eq!(e.page_state(1, 0).unwrap(), PageState::Valid);
        e.invalidate(1, 0).unwrap();
        assert_eq!(e.page_state(1, 0).unwrap(), PageState::Invalid);
        e.erase(1).unwrap();
        assert_eq!(e.page_state(1, 0).unwrap(), PageState::Free);
        let c = e.counters();
        assert_eq!(c.page_reads, 1);
        assert_eq!(c.page_programs, 1);
        assert_eq!(c.block_erases, 1);
    }

    #[test]
    fn read_of_free_page_is_error() {
        let mut e = elem();
        assert!(matches!(e.read(0, 0), Err(FlashError::ReadFreePage { .. })));
        assert_eq!(e.counters().page_reads, 0);
    }

    #[test]
    fn out_of_range_blocks_are_rejected() {
        let mut e = elem();
        assert!(e.program(4).is_err());
        assert!(e.read(9, 0).is_err());
        assert!(e.erase(4).is_err());
        assert!(e.block(4).is_err());
        assert!(e.page_state(4, 0).is_err());
    }

    #[test]
    fn page_accounting_is_consistent() {
        let mut e = elem();
        for _ in 0..4 {
            e.program(0).unwrap();
        }
        e.invalidate(0, 0).unwrap();
        e.invalidate(0, 1).unwrap();
        assert_eq!(e.valid_pages(), 2);
        assert_eq!(e.invalid_pages(), 2);
        assert_eq!(e.free_pages(), 12);
        assert_eq!(
            e.valid_pages() + e.invalid_pages() + e.free_pages(),
            e.total_pages()
        );
    }

    #[test]
    fn erase_counts_are_per_block() {
        let mut e = elem();
        e.program(2).unwrap();
        e.invalidate(2, 0).unwrap();
        e.erase(2).unwrap();
        e.erase(3).unwrap();
        e.erase(3).unwrap();
        let counts: Vec<u32> = e.erase_counts().collect();
        assert_eq!(counts, vec![0, 0, 1, 2]);
    }

    #[test]
    fn iter_blocks_exposes_state() {
        let mut e = elem();
        e.program(1).unwrap();
        let full: Vec<u32> = e
            .iter_blocks()
            .filter(|(_, b)| b.valid_count() > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(full, vec![1]);
    }
}
