//! Error type for flash state-machine violations.
//!
//! These errors indicate bugs in a flash translation layer (programming a
//! non-free page, reading an unwritten page, addressing outside the
//! geometry) rather than recoverable runtime conditions, but they are
//! surfaced as `Result`s so that simulator users get a diagnosable error
//! instead of a panic.

use std::fmt;

use crate::geometry::PhysPageAddr;

/// Errors returned by the flash state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// An address referenced an element, block, or page outside the
    /// configured geometry.
    OutOfRange {
        /// Human-readable description of which coordinate was out of range.
        what: &'static str,
        /// The offending index.
        index: u64,
        /// The exclusive bound that was violated.
        bound: u64,
    },
    /// A program targeted a page that is not free (violates the
    /// erase-before-write constraint).
    ProgramNotFree {
        /// The page that was already programmed.
        addr: PhysPageAddr,
    },
    /// A program skipped ahead of the block's sequential write pointer.
    ProgramOutOfOrder {
        /// The page that was requested.
        addr: PhysPageAddr,
        /// The page the block expected to program next.
        expected_page: u32,
    },
    /// A program was issued to a block with no free pages left.
    BlockFull {
        /// Element index of the full block.
        element: u32,
        /// Block index within the element.
        block: u32,
    },
    /// A read targeted a page that has never been programmed since the last
    /// erase, which would return undefined data on real hardware.
    ReadFreePage {
        /// The unprogrammed page.
        addr: PhysPageAddr,
    },
    /// An invalidate targeted a page that is free.
    InvalidateFreePage {
        /// The free page.
        addr: PhysPageAddr,
    },
    /// An erase targeted a block that still contains valid pages; the
    /// caller (FTL) must migrate or invalidate them first.
    EraseWithValidPages {
        /// Element index of the block.
        element: u32,
        /// Block index within the element.
        block: u32,
        /// Number of valid pages remaining.
        valid: u32,
    },
    /// The fault model failed a page program.  The target page is consumed
    /// (burned) and the FTL must re-program the data elsewhere and mark the
    /// block for retirement.
    ProgramFailed {
        /// The page that failed to program.
        addr: PhysPageAddr,
    },
    /// The fault model failed a block erase; the block is now retired (a
    /// grown bad block) and must never be allocated again.
    EraseFailed {
        /// Element index of the failed block.
        element: u32,
        /// Block index within the element.
        block: u32,
    },
    /// The operation addressed a retired (bad) block.
    BadBlock {
        /// Element index of the bad block.
        element: u32,
        /// Block index within the element.
        block: u32,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (bound {bound})")
            }
            FlashError::ProgramNotFree { addr } => {
                write!(f, "program to non-free page {addr:?}")
            }
            FlashError::ProgramOutOfOrder {
                addr,
                expected_page,
            } => write!(
                f,
                "out-of-order program to {addr:?}; block expected page {expected_page}"
            ),
            FlashError::BlockFull { element, block } => {
                write!(f, "program to full block {block} on element {element}")
            }
            FlashError::ReadFreePage { addr } => {
                write!(f, "read of unprogrammed page {addr:?}")
            }
            FlashError::InvalidateFreePage { addr } => {
                write!(f, "invalidate of free page {addr:?}")
            }
            FlashError::EraseWithValidPages {
                element,
                block,
                valid,
            } => write!(
                f,
                "erase of block {block} on element {element} with {valid} valid pages"
            ),
            FlashError::ProgramFailed { addr } => {
                write!(f, "program of page {addr:?} failed (page burned)")
            }
            FlashError::EraseFailed { element, block } => write!(
                f,
                "erase of block {block} on element {element} failed; block retired"
            ),
            FlashError::BadBlock { element, block } => {
                write!(f, "operation on retired block {block} of element {element}")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ElementId, PhysPageAddr};

    #[test]
    fn display_messages_are_informative() {
        let addr = PhysPageAddr {
            element: ElementId(1),
            block: 2,
            page: 3,
        };
        let cases: Vec<(FlashError, &str)> = vec![
            (
                FlashError::OutOfRange {
                    what: "block",
                    index: 9,
                    bound: 8,
                },
                "out of range",
            ),
            (FlashError::ProgramNotFree { addr }, "non-free"),
            (
                FlashError::ProgramOutOfOrder {
                    addr,
                    expected_page: 0,
                },
                "out-of-order",
            ),
            (
                FlashError::BlockFull {
                    element: 0,
                    block: 1,
                },
                "full block",
            ),
            (FlashError::ReadFreePage { addr }, "unprogrammed"),
            (FlashError::InvalidateFreePage { addr }, "invalidate"),
            (
                FlashError::EraseWithValidPages {
                    element: 0,
                    block: 1,
                    valid: 5,
                },
                "valid pages",
            ),
            (FlashError::ProgramFailed { addr }, "burned"),
            (
                FlashError::EraseFailed {
                    element: 0,
                    block: 1,
                },
                "retired",
            ),
            (
                FlashError::BadBlock {
                    element: 0,
                    block: 1,
                },
                "retired block",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<FlashError>();
    }
}
