//! Flash array geometry and physical addressing.
//!
//! The unit of parallelism in the simulator is the *element*: an
//! independently operating die.  Packages group dies that share a serial
//! bus (and, in ganged configurations, several packages share one bus).
//! A physical page address names an element, a block within the element,
//! and a page within the block.

use crate::error::FlashError;

/// Identifier of an independently operating flash element (a die).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The element index as a `usize` for vector indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A physical flash page address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PhysPageAddr {
    /// The element (die) the page lives on.
    pub element: ElementId,
    /// Block index within the element.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

/// The shape of the flash array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Number of flash packages.
    pub packages: u32,
    /// Dies per package; each die is an independent element.
    pub dies_per_package: u32,
    /// Planes per die (affects capacity; plane-level parallelism is folded
    /// into the element in this model).
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Bytes per page (the paper and the Samsung datasheet use 4 KB).
    pub page_bytes: u32,
}

impl FlashGeometry {
    /// A small geometry handy for unit tests: 2 packages × 1 die × 1 plane ×
    /// 8 blocks × 8 pages × 4 KB = 512 KB.
    pub fn tiny() -> Self {
        FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_bytes: 4096,
        }
    }

    /// Geometry of one 4 GB SLC package modelled on the Samsung K9XXG08XXM
    /// large-block part referenced by the paper: 4 planes × 4096 blocks ×
    /// 64 pages × 4 KB per die.
    pub fn one_package_4gb() -> Self {
        FlashGeometry {
            packages: 1,
            dies_per_package: 1,
            planes_per_die: 4,
            blocks_per_plane: 4096,
            pages_per_block: 64,
            page_bytes: 4096,
        }
    }

    /// Geometry used by the paper's 32 GB simulated SSD: one gang of eight
    /// 4 GB packages (§3.4).
    pub fn gang_of_eight_4gb() -> Self {
        FlashGeometry {
            packages: 8,
            dies_per_package: 1,
            planes_per_die: 4,
            blocks_per_plane: 4096,
            pages_per_block: 64,
            page_bytes: 4096,
        }
    }

    /// Geometry of the 8 GB SSD used by the informed-cleaning study
    /// (Table 5): two 4 GB packages.
    pub fn two_packages_8gb() -> Self {
        FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 4,
            blocks_per_plane: 4096,
            pages_per_block: 64,
            page_bytes: 4096,
        }
    }

    /// Number of independently operating elements (dies).
    pub fn elements(&self) -> u32 {
        self.packages * self.dies_per_package
    }

    /// Blocks per element (= planes per die × blocks per plane).
    pub fn blocks_per_element(&self) -> u32 {
        self.planes_per_die * self.blocks_per_plane
    }

    /// Pages per element.
    pub fn pages_per_element(&self) -> u64 {
        self.blocks_per_element() as u64 * self.pages_per_block as u64
    }

    /// Total number of physical blocks.
    pub fn total_blocks(&self) -> u64 {
        self.elements() as u64 * self.blocks_per_element() as u64
    }

    /// Total number of physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Bytes in one block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Capacity of a single element in bytes.
    pub fn element_bytes(&self) -> u64 {
        self.pages_per_element() * self.page_bytes as u64
    }

    /// The element a package/die pair maps to.
    pub fn element_of(&self, package: u32, die: u32) -> ElementId {
        ElementId(package * self.dies_per_package + die)
    }

    /// The package an element belongs to.
    pub fn package_of(&self, element: ElementId) -> u32 {
        element.0 / self.dies_per_package
    }

    /// Validates that an address is within this geometry.
    pub fn check_addr(&self, addr: PhysPageAddr) -> Result<(), FlashError> {
        if addr.element.0 >= self.elements() {
            return Err(FlashError::OutOfRange {
                what: "element",
                index: addr.element.0 as u64,
                bound: self.elements() as u64,
            });
        }
        if addr.block >= self.blocks_per_element() {
            return Err(FlashError::OutOfRange {
                what: "block",
                index: addr.block as u64,
                bound: self.blocks_per_element() as u64,
            });
        }
        if addr.page >= self.pages_per_block {
            return Err(FlashError::OutOfRange {
                what: "page",
                index: addr.page as u64,
                bound: self.pages_per_block as u64,
            });
        }
        Ok(())
    }

    /// Validates the geometry itself (all dimensions non-zero).
    pub fn validate(&self) -> Result<(), FlashError> {
        let dims: [(&'static str, u64); 6] = [
            ("packages", self.packages as u64),
            ("dies_per_package", self.dies_per_package as u64),
            ("planes_per_die", self.planes_per_die as u64),
            ("blocks_per_plane", self.blocks_per_plane as u64),
            ("pages_per_block", self.pages_per_block as u64),
            ("page_bytes", self.page_bytes as u64),
        ];
        for (what, v) in dims {
            if v == 0 {
                return Err(FlashError::OutOfRange {
                    what,
                    index: 0,
                    bound: 1,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_geometry_counts() {
        let g = FlashGeometry::tiny();
        assert_eq!(g.elements(), 2);
        assert_eq!(g.blocks_per_element(), 8);
        assert_eq!(g.pages_per_element(), 64);
        assert_eq!(g.total_blocks(), 16);
        assert_eq!(g.total_pages(), 128);
        assert_eq!(g.capacity_bytes(), 128 * 4096);
        assert_eq!(g.block_bytes(), 8 * 4096);
        g.validate().unwrap();
    }

    #[test]
    fn paper_geometries_have_expected_capacity() {
        let one = FlashGeometry::one_package_4gb();
        assert_eq!(one.capacity_bytes(), 4 * 1024 * 1024 * 1024);
        let gang = FlashGeometry::gang_of_eight_4gb();
        assert_eq!(gang.capacity_bytes(), 32 * 1024 * 1024 * 1024);
        assert_eq!(gang.elements(), 8);
        let two = FlashGeometry::two_packages_8gb();
        assert_eq!(two.capacity_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn element_and_package_mapping_roundtrip() {
        let g = FlashGeometry {
            packages: 4,
            dies_per_package: 2,
            ..FlashGeometry::tiny()
        };
        assert_eq!(g.elements(), 8);
        assert_eq!(g.element_of(0, 0), ElementId(0));
        assert_eq!(g.element_of(0, 1), ElementId(1));
        assert_eq!(g.element_of(3, 1), ElementId(7));
        assert_eq!(g.package_of(ElementId(7)), 3);
        assert_eq!(g.package_of(ElementId(2)), 1);
    }

    #[test]
    fn check_addr_bounds() {
        let g = FlashGeometry::tiny();
        let ok = PhysPageAddr {
            element: ElementId(1),
            block: 7,
            page: 7,
        };
        assert!(g.check_addr(ok).is_ok());
        let bad_elem = PhysPageAddr {
            element: ElementId(2),
            ..ok
        };
        assert!(matches!(
            g.check_addr(bad_elem),
            Err(FlashError::OutOfRange {
                what: "element",
                ..
            })
        ));
        let bad_block = PhysPageAddr { block: 8, ..ok };
        assert!(matches!(
            g.check_addr(bad_block),
            Err(FlashError::OutOfRange { what: "block", .. })
        ));
        let bad_page = PhysPageAddr { page: 8, ..ok };
        assert!(matches!(
            g.check_addr(bad_page),
            Err(FlashError::OutOfRange { what: "page", .. })
        ));
    }

    #[test]
    fn validate_rejects_zero_dimensions() {
        let mut g = FlashGeometry::tiny();
        g.pages_per_block = 0;
        assert!(g.validate().is_err());
        let mut g2 = FlashGeometry::tiny();
        g2.packages = 0;
        assert!(g2.validate().is_err());
    }
}
