//! NAND flash memory model: geometry, timing, page/block state and wear.
//!
//! This crate models the raw medium inside an SSD as described in §2 of
//! *Block Management in Solid-State Devices* (Rajimwale et al., USENIX ATC
//! 2009): a set of flash packages, each with one or more dies, each die with
//! multiple planes that contain blocks of (typically 4 KB) pages.  The model
//! enforces the physical constraints the paper's arguments rest on:
//!
//! * pages are **non-overwrite** — a page must be erased (at block
//!   granularity) before it can be programmed again;
//! * pages within a block must be programmed **sequentially**;
//! * blocks wear out after a bounded number of erase cycles (≈100K for SLC,
//!   ≈10K for MLC), and — when a fault model ([`ossd_reliability`]) is
//!   installed — programs and erases can *fail*, failed erases retire the
//!   block as a grown bad block, and reads suffer wear- and
//!   retention-scaled raw bit errors that the ECC/read-retry path recovers
//!   or surfaces as uncorrectable.
//!
//! Timing parameters ([`FlashTiming`]) provide the service times used by the
//! SSD simulator; the state machine itself is untimed so it can be reused by
//! any scheduling policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod block;
pub mod element;
pub mod error;
pub mod geometry;
pub mod timing;

pub use array::{FlashArray, ReliabilityCounters, WearSummary};
pub use block::{Block, BlockStateChange, PageState};
pub use element::{ElementCounters, FlashElement};
pub use error::FlashError;
pub use geometry::{ElementId, FlashGeometry, PhysPageAddr};
pub use timing::{CellType, FlashTiming};

pub use ossd_reliability::{EccConfig, FaultConfig, ReadStatus, ReliabilityConfig};
