//! Flash timing parameters for SLC and MLC NAND.
//!
//! The defaults follow the numbers quoted in the paper and in Agrawal et al.
//! (USENIX ATC 2008) for large-block SLC NAND (Samsung K9XXG08XXM): 25 µs
//! page read, 200 µs page program, 1.5 ms block erase, with a serial bus of
//! roughly 40 MB/s per package.  MLC parts are slower to program and erase
//! and endure an order of magnitude fewer erase cycles (§2 of the paper).

use ossd_sim::SimDuration;

/// NAND cell technology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellType {
    /// Single-level cell: one bit per cell, ~100K erase cycles.
    Slc,
    /// Multi-level cell: multiple bits per cell, ~10K erase cycles, slower
    /// program and erase.
    Mlc,
}

/// Timing and endurance parameters of a flash part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlashTiming {
    /// Cell technology (affects presets only; the simulator uses the
    /// explicit numbers below).
    pub cell: CellType,
    /// Time to read one page from the array into the package register.
    pub read_page: SimDuration,
    /// Time to program one page from the register into the array.
    pub program_page: SimDuration,
    /// Time to erase one block.
    pub erase_block: SimDuration,
    /// Serial-bus bandwidth between the controller and a package, in
    /// bytes per second.  Transfers on the same gang bus are serialized.
    pub bus_bytes_per_sec: u64,
    /// Number of erase cycles a block endures before wearing out.
    pub endurance: u32,
}

impl FlashTiming {
    /// SLC timing preset (25 µs / 200 µs / 1.5 ms, 40 MB/s bus, 100K cycles).
    pub fn slc() -> Self {
        FlashTiming {
            cell: CellType::Slc,
            read_page: SimDuration::from_micros(25),
            program_page: SimDuration::from_micros(200),
            erase_block: SimDuration::from_micros(1500),
            bus_bytes_per_sec: 40_000_000,
            endurance: 100_000,
        }
    }

    /// MLC timing preset (50 µs / 680 µs / 3.3 ms, 40 MB/s bus, 10K cycles).
    pub fn mlc() -> Self {
        FlashTiming {
            cell: CellType::Mlc,
            read_page: SimDuration::from_micros(50),
            program_page: SimDuration::from_micros(680),
            erase_block: SimDuration::from_micros(3300),
            bus_bytes_per_sec: 40_000_000,
            endurance: 10_000,
        }
    }

    /// Time to move `bytes` across the package serial bus.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.bus_bytes_per_sec)
    }

    /// Complete host-read service time for one page of `page_bytes`:
    /// array read plus bus transfer to the controller.
    pub fn page_read_service(&self, page_bytes: u32) -> SimDuration {
        self.read_page + self.transfer(page_bytes as u64)
    }

    /// Complete host-write service time for one page of `page_bytes`:
    /// bus transfer from the controller plus array program.
    pub fn page_program_service(&self, page_bytes: u32) -> SimDuration {
        self.transfer(page_bytes as u64) + self.program_page
    }

    /// Service time of an internal copy-back page move (read + program,
    /// no bus transfer), as used by garbage collection.
    pub fn copyback_service(&self) -> SimDuration {
        self.read_page + self.program_page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slc_preset_matches_datasheet_numbers() {
        let t = FlashTiming::slc();
        assert_eq!(t.cell, CellType::Slc);
        assert_eq!(t.read_page, SimDuration::from_micros(25));
        assert_eq!(t.program_page, SimDuration::from_micros(200));
        assert_eq!(t.erase_block, SimDuration::from_micros(1500));
        assert_eq!(t.endurance, 100_000);
    }

    #[test]
    fn mlc_is_slower_and_less_durable_than_slc() {
        let slc = FlashTiming::slc();
        let mlc = FlashTiming::mlc();
        assert!(mlc.read_page >= slc.read_page);
        assert!(mlc.program_page > slc.program_page);
        assert!(mlc.erase_block > slc.erase_block);
        assert!(mlc.endurance < slc.endurance);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let t = FlashTiming::slc();
        let one_page = t.transfer(4096);
        let two_pages = t.transfer(8192);
        assert_eq!(two_pages.as_nanos(), 2 * one_page.as_nanos());
        // 4096 bytes at 40 MB/s = 102.4 microseconds.
        assert!((one_page.as_micros_f64() - 102.4).abs() < 0.1);
    }

    #[test]
    fn service_time_compositions() {
        let t = FlashTiming::slc();
        assert_eq!(t.page_read_service(4096), t.read_page + t.transfer(4096));
        assert_eq!(
            t.page_program_service(4096),
            t.program_page + t.transfer(4096)
        );
        assert_eq!(t.copyback_service(), t.read_page + t.program_page);
        // Reads are much cheaper than writes for the same page size.
        assert!(t.page_read_service(4096) < t.page_program_service(4096));
    }
}
