//! Fleet configuration: how many devices, how bytes are laid out across
//! them, and how many worker threads drive the per-device engines.

use ossd_sim::derive_stream_seed;
use ossd_ssd::SsdConfig;

/// How the fleet's exported byte space maps onto its member devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetLayout {
    /// RAID-0-style striping: the exported space is cut into
    /// `stripe_bytes`-sized stripes dealt round-robin across devices.
    /// Capacity is the sum of every device's stripe-aligned capacity; there
    /// is no redundancy, so device failure is not survivable.
    Striped {
        /// Stripe unit in bytes.  Must be a positive multiple of the
        /// device's logical page size and no larger than one device.
        stripe_bytes: u64,
    },
    /// N-way replication: every write (and free, and fence) is mirrored to
    /// every live device; reads are routed deterministically to one replica
    /// by page index.  Capacity is one device's capacity; any single
    /// device's data survives on the others.
    Replicated,
    /// RAID-5-style rotating parity: each row of `devices - 1` data units
    /// keeps an XOR parity unit on a rotating member (see
    /// [`crate::parity`]).  Capacity is `devices - 1` devices' worth; any
    /// single device failure degrades the array (reads reconstruct from
    /// the survivors) instead of losing data.  Needs ≥ 3 devices.
    Parity {
        /// Stripe unit in bytes.  Must be a positive multiple of the
        /// device's logical page size and no larger than one device.
        stripe_bytes: u64,
    },
}

impl FleetLayout {
    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FleetLayout::Striped { .. } => "striped",
            FleetLayout::Replicated => "replicated",
            FleetLayout::Parity { .. } => "parity",
        }
    }
}

/// Configuration for a [`crate::Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Human-readable array name (device names are derived as
    /// `"{name}-dev{i}"`).
    pub name: String,
    /// Template configuration cloned for every member device.  Per-device
    /// differences (name, fault-injection seed) are derived from it; see
    /// [`FleetConfig::device_config`].
    pub device: SsdConfig,
    /// Number of member devices (≥ 1).
    pub devices: usize,
    /// Byte-space layout across the devices.
    pub layout: FleetLayout,
    /// Worker threads for per-device engine execution (≥ 1).  Results are
    /// bit-identical for every thread count — threads only partition the
    /// per-device work, they never share simulation state.
    pub threads: usize,
    /// Base seed for per-device RNG sharding.  Each device's
    /// fault-injection seed is [`derive_stream_seed`]`(seed, stream)` where
    /// the stream number encodes the device index and its replacement
    /// generation, so replicas never share a fault schedule and a replaced
    /// device gets a fresh one.
    pub seed: u64,
}

impl FleetConfig {
    /// A fleet of `devices` copies of `device`, striped with the given
    /// stripe unit, single-threaded by default.
    pub fn striped(device: SsdConfig, devices: usize, stripe_bytes: u64) -> Self {
        FleetConfig {
            name: "fleet".to_string(),
            device,
            devices,
            layout: FleetLayout::Striped { stripe_bytes },
            threads: 1,
            seed: 0xF1EE_7000,
        }
    }

    /// A fleet of `devices` replicas of `device`, single-threaded by
    /// default.
    pub fn replicated(device: SsdConfig, devices: usize) -> Self {
        FleetConfig {
            name: "fleet".to_string(),
            device,
            devices,
            layout: FleetLayout::Replicated,
            threads: 1,
            seed: 0xF1EE_7000,
        }
    }

    /// A fleet of `devices` copies of `device` under rotating parity with
    /// the given stripe unit, single-threaded by default.
    pub fn parity(device: SsdConfig, devices: usize, stripe_bytes: u64) -> Self {
        FleetConfig {
            name: "fleet".to_string(),
            device,
            devices,
            layout: FleetLayout::Parity { stripe_bytes },
            threads: 1,
            seed: 0xF1EE_7000,
        }
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the base seed for per-device RNG sharding.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the array name.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The concrete configuration for member device `index` at replacement
    /// `generation` (0 for an original member): the template with a derived
    /// name and, when fault injection is enabled, a decorrelated
    /// fault-injection seed from the fleet's seed stream.
    pub fn device_config(&self, index: usize, generation: u64) -> SsdConfig {
        let mut config = self.device.clone();
        config.name = format!("{}-dev{}", self.name, index);
        if !config.reliability.is_none() {
            let stream = generation * self.devices as u64 + index as u64;
            config.reliability.faults.seed = derive_stream_seed(self.seed, stream);
        }
        config
    }

    /// Validates the fleet-level parameters (the device template is
    /// validated by [`ossd_ssd::Ssd::new`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("fleet needs at least one device".to_string());
        }
        if self.threads == 0 {
            return Err("fleet needs at least one worker thread".to_string());
        }
        match self.layout {
            FleetLayout::Striped { stripe_bytes } | FleetLayout::Parity { stripe_bytes } => {
                if stripe_bytes == 0 {
                    return Err("stripe_bytes must be positive".to_string());
                }
                let page = self.device.geometry.page_bytes as u64;
                if stripe_bytes % page != 0 {
                    return Err(format!(
                        "stripe_bytes ({stripe_bytes}) must be a multiple of the page size ({page})"
                    ));
                }
                if matches!(self.layout, FleetLayout::Parity { .. }) && self.devices < 3 {
                    return Err(format!(
                        "parity layout needs at least 3 devices, got {}",
                        self.devices
                    ));
                }
            }
            FleetLayout::Replicated => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_configs_get_distinct_names_and_fault_seeds() {
        let device = SsdConfig::tiny_page_mapped()
            .with_reliability(ossd_flash::ReliabilityConfig::wearout(0xABCD));
        let config = FleetConfig::striped(device, 4, 8192);
        let c0 = config.device_config(0, 0);
        let c1 = config.device_config(1, 0);
        assert_eq!(c0.name, "fleet-dev0");
        assert_eq!(c1.name, "fleet-dev1");
        assert_ne!(c0.reliability.faults.seed, c1.reliability.faults.seed);
        // A replacement (generation 1) draws a fresh seed for the same slot.
        let c1r = config.device_config(1, 1);
        assert_ne!(c1.reliability.faults.seed, c1r.reliability.faults.seed);
    }

    #[test]
    fn device_configs_without_reliability_keep_the_template_seed() {
        let config = FleetConfig::replicated(SsdConfig::tiny_page_mapped(), 2);
        let c0 = config.device_config(0, 0);
        assert!(c0.reliability.is_none());
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        let device = SsdConfig::tiny_page_mapped();
        assert!(FleetConfig::striped(device.clone(), 0, 8192)
            .validate()
            .is_err());
        assert!(FleetConfig::striped(device.clone(), 2, 0)
            .validate()
            .is_err());
        assert!(FleetConfig::striped(device.clone(), 2, 1000)
            .validate()
            .is_err());
        let mut ok = FleetConfig::striped(device.clone(), 2, 8192);
        assert!(ok.validate().is_ok());
        ok.threads = 0;
        assert!(ok.validate().is_err());
        // Parity needs ≥ 3 devices and a page-multiple stripe.
        assert!(FleetConfig::parity(device.clone(), 2, 8192)
            .validate()
            .is_err());
        assert!(FleetConfig::parity(device.clone(), 3, 1000)
            .validate()
            .is_err());
        assert!(FleetConfig::parity(device, 3, 8192).validate().is_ok());
    }
}
