//! The [`Fleet`]: an array of simulated SSDs behind one host-level router.
//!
//! # Determinism model
//!
//! A fleet serve session runs in five deterministic steps:
//!
//! 1. **Arbitrate** the initiator queues round-robin into one globally
//!    arrival-ordered command list (exactly [`arbitrate_round_robin`], the
//!    same arbiter a single device uses).
//! 2. **Validate** every command up front against the fleet's exported
//!    capacity — a rejected command aborts the serve with every submission
//!    still queued and no completions posted (the [`HostInterface`] error
//!    semantics, preserved at fleet scope).
//! 3. **Fan out** each command into at most one sub-command per member
//!    device (striping maps a contiguous exported range to one contiguous
//!    device-local range per device, see [`crate::router`]; replication
//!    mirrors writes and routes reads to one replica), preserving the
//!    parent's arrival, priority and write hint.  Sub-commands carry the
//!    parent's arbitration sequence number as their correlation id.
//! 4. **Execute** each device's session on a worker thread
//!    ([`std::thread::scope`]; devices are chunked across
//!    [`FleetConfig::threads`] workers).  Devices share *no* simulation
//!    state — each `Ssd` is `Send` and wholly owned by its work item, and
//!    per-device RNG streams are sharded via
//!    [`ossd_sim::derive_stream_seed`] — so the thread count and OS
//!    schedule cannot affect any device's result, only wall-clock time.
//! 5. **Merge** every device's completions into one canonical order sorted
//!    by `(finish time, device index, parent sequence)`, reduce them to
//!    per-parent completions (start = earliest sub-start, finish = latest
//!    sub-finish, status = worst sub-status), and post them through
//!    [`complete_session`] in arbitration order — bit-identical for every
//!    thread count, and for a 1-device fleet bit-identical to serving the
//!    standalone device.

use ossd_block::{
    arbitrate_round_robin, complete_session, BlockDevice, BlockRequest, ByteRange, Completion,
    CompletionStatus, DeviceError, DeviceInfo, HostCommand, HostInterface, HostQueue,
};
use ossd_ftl::FtlStats;
use ossd_sim::SimTime;
use ossd_ssd::{Ssd, SsdConfig, SsdError, SsdStats};
use ossd_telemetry::{BlameRecord, Recorder, RecorderConfig, TelemetryHandle};
use std::sync::{Arc, Mutex};

use crate::config::{FleetConfig, FleetLayout};
use crate::router::{split_striped, striped_capacity};
use crate::telemetry::{FleetSample, FleetSeries};

/// One member device's slot in the array.
struct Slot {
    /// The device, or `None` while failed.
    ssd: Option<Ssd>,
    /// Replacement generation: 0 for the original member, incremented by
    /// every [`Fleet::replace_device`] (feeds per-device seed derivation).
    generation: u64,
}

/// One sub-completion in the canonical merged order — the determinism
/// witness: two runs of the same seeded fleet are bit-identical iff their
/// merged logs are equal, regardless of thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetSubCompletion {
    /// Member device that served the sub-command.
    pub device: usize,
    /// Parent command's global arbitration sequence (session-local).
    pub parent_seq: u64,
    /// Parent command's host correlation id.
    pub request_id: u64,
    /// Initiator queue the parent came from.
    pub initiator: usize,
    /// When the sub-command's device work began.
    pub start: SimTime,
    /// When the sub-command completed on its device.
    pub finish: SimTime,
    /// Sub-command outcome.
    pub status: CompletionStatus,
}

/// A multi-device SSD array behind one block/queue-pair interface.
///
/// See the [module docs](self) for the determinism model.
pub struct Fleet {
    config: FleetConfig,
    slots: Vec<Slot>,
    capacity: u64,
    supports_free: bool,
    /// Routing granularity for replicated reads (one device logical page).
    route_unit: u64,
    merged_log: Vec<FleetSubCompletion>,
    last_fanout: Vec<u32>,
    rebuilt_bytes: u64,
    next_rebuild_id: u64,
    series: FleetSeries,
    /// Whether latency attribution is enabled fleet-wide (sticky, so
    /// replacement devices inherit it).
    attribution: bool,
}

impl Fleet {
    /// Builds the array: validates the fleet parameters and constructs one
    /// seeded device per slot from [`FleetConfig::device_config`].
    pub fn new(config: FleetConfig) -> Result<Self, SsdError> {
        config
            .validate()
            .map_err(|reason| SsdError::InvalidConfig { reason })?;
        let mut slots = Vec::with_capacity(config.devices);
        for index in 0..config.devices {
            let ssd = Ssd::new(config.device_config(index, 0))?;
            slots.push(Slot {
                ssd: Some(ssd),
                generation: 0,
            });
        }
        let device_info = slots[0].ssd.as_ref().expect("fresh device").info();
        let capacity = match config.layout {
            FleetLayout::Striped { stripe_bytes } => {
                if stripe_bytes > device_info.capacity_bytes {
                    return Err(SsdError::InvalidConfig {
                        reason: format!(
                            "stripe_bytes ({stripe_bytes}) exceeds one device's capacity ({})",
                            device_info.capacity_bytes
                        ),
                    });
                }
                striped_capacity(device_info.capacity_bytes, config.devices, stripe_bytes)
            }
            FleetLayout::Replicated => device_info.capacity_bytes,
        };
        let route_unit = slots[0]
            .ssd
            .as_ref()
            .expect("fresh device")
            .logical_page_bytes();
        let devices = config.devices;
        Ok(Fleet {
            config,
            slots,
            capacity,
            supports_free: device_info.supports_free,
            route_unit,
            merged_log: Vec::new(),
            last_fanout: vec![0; devices],
            rebuilt_bytes: 0,
            next_rebuild_id: 1 << 48,
            series: FleetSeries::new(),
            attribution: false,
        })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of member slots (live or failed).
    pub fn devices(&self) -> usize {
        self.slots.len()
    }

    /// Indices of the live member devices, ascending.
    pub fn live_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.ssd.as_ref().map(|_| i))
            .collect()
    }

    /// The concrete configuration device `index` is currently running
    /// (template + derived name and fault seed for its generation).  The
    /// 1-device equivalence tests build their standalone reference `Ssd`
    /// from this, so fleet and standalone share the exact seed stream.
    pub fn device_config(&self, index: usize) -> SsdConfig {
        self.config
            .device_config(index, self.slots[index].generation)
    }

    /// Device-level request/byte counters for member `index` (`None` while
    /// failed).
    pub fn device_stats(&self, index: usize) -> Option<SsdStats> {
        self.slots[index].ssd.as_ref().map(|d| d.stats())
    }

    /// FTL counters for member `index` (`None` while failed).
    pub fn device_ftl_stats(&self, index: usize) -> Option<FtlStats> {
        self.slots[index].ssd.as_ref().map(|d| d.ftl_stats())
    }

    /// Wear summary for member `index` (`None` while failed).
    pub fn device_wear_summary(&self, index: usize) -> Option<ossd_flash::WearSummary> {
        self.slots[index].ssd.as_ref().map(|d| d.wear_summary())
    }

    /// Attaches telemetry to member `index` (no-op while failed).
    pub fn set_device_telemetry(&mut self, index: usize, telemetry: TelemetryHandle) {
        if let Some(ssd) = self.slots[index].ssd.as_mut() {
            ssd.set_telemetry(telemetry);
        }
    }

    /// Attaches one fresh [`Recorder`] to every live member and returns the
    /// recorder handles, indexed by device.  Failed slots still occupy an
    /// entry (an empty recorder) so indices line up.
    pub fn attach_recorders(&mut self, config: RecorderConfig) -> Vec<Arc<Mutex<Recorder>>> {
        self.slots
            .iter_mut()
            .map(|slot| {
                let (handle, recorder) = Recorder::shared(config);
                if let Some(ssd) = slot.ssd.as_mut() {
                    ssd.set_telemetry(handle);
                }
                recorder
            })
            .collect()
    }

    /// Turns on latency attribution on every live member (and, sticky,
    /// on any future replacement device).  Purely observational: schedules
    /// and completions are bit-identical to an attribution-off fleet.
    pub fn enable_attribution(&mut self) {
        self.attribution = true;
        for slot in self.slots.iter_mut() {
            if let Some(ssd) = slot.ssd.as_mut() {
                ssd.enable_attribution();
            }
        }
    }

    /// Whether [`Fleet::enable_attribution`] has been called.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution
    }

    /// Drains every live member's per-request blame records, merged into
    /// the fleet's canonical order `(finish, device, initiator, id)` and
    /// tagged with the member device index.  Per-device aggregates
    /// (histograms, class totals) stay behind on each device.
    pub fn take_blame_records(&mut self) -> Vec<(usize, BlameRecord)> {
        let mut merged: Vec<(usize, BlameRecord)> = Vec::new();
        for (device, slot) in self.slots.iter_mut().enumerate() {
            if let Some(ssd) = slot.ssd.as_mut() {
                merged.extend(ssd.take_blame_records().into_iter().map(|r| (device, r)));
            }
        }
        merged.sort_by_key(|(device, r)| (r.finish, *device, r.initiator, r.id));
        merged
    }

    /// The canonical merged sub-completion order of the last serve session,
    /// sorted by `(finish, device, parent sequence)`.  Bit-identical across
    /// thread counts for the same seed and workload.
    pub fn last_session_log(&self) -> &[FleetSubCompletion] {
        &self.merged_log
    }

    /// Sub-commands fanned to each device in the last serve session (a
    /// per-device queue-depth signal for the metrics series).
    pub fn last_fanout(&self) -> &[u32] {
        &self.last_fanout
    }

    /// Total bytes copied by [`Fleet::rebuild_range`] so far.
    pub fn rebuilt_bytes(&self) -> u64 {
        self.rebuilt_bytes
    }

    /// Fleet-level metrics series (populated by
    /// [`Fleet::sample_metrics`]).
    pub fn series(&self) -> &FleetSeries {
        &self.series
    }

    /// Pushes one fleet-level metrics sample: cumulative per-device host
    /// bytes, the last session's per-device fan-out depth and rebuild
    /// progress.
    pub fn sample_metrics(&mut self, now: SimTime) {
        let device_bytes: Vec<u64> = self
            .slots
            .iter()
            .map(|slot| {
                slot.ssd
                    .as_ref()
                    .map(|d| {
                        let stats = d.stats();
                        stats.bytes_read + stats.bytes_written
                    })
                    .unwrap_or(0)
            })
            .collect();
        let host_bytes_total = device_bytes.iter().sum();
        self.series.push(FleetSample {
            at: now,
            host_bytes_total,
            device_bytes,
            device_depth: self.last_fanout.clone(),
            rebuilt_bytes: self.rebuilt_bytes,
        });
    }

    /// Fails member `index`: the device and its data vanish.  Only
    /// replicated fleets survive a failure, and at least one replica must
    /// stay live, so striped layouts and last-replica failures are
    /// rejected.
    pub fn fail_device(&mut self, index: usize) -> Result<(), DeviceError> {
        if matches!(self.config.layout, FleetLayout::Striped { .. }) {
            return Err(DeviceError::Unsupported {
                what: "device failure on a striped (non-redundant) fleet",
            });
        }
        if self.slots[index].ssd.is_none() {
            return Err(DeviceError::Unsupported {
                what: "failing an already-failed device",
            });
        }
        if self.live_indices().len() <= 1 {
            return Err(DeviceError::Unsupported {
                what: "failing the last live replica",
            });
        }
        self.slots[index].ssd = None;
        Ok(())
    }

    /// Replaces failed member `index` with a factory-fresh device on the
    /// next seed-stream generation.  The replacement holds no data until
    /// [`Fleet::rebuild_range`] copies it back from a surviving replica.
    pub fn replace_device(&mut self, index: usize) -> Result<(), DeviceError> {
        if self.slots[index].ssd.is_some() {
            return Err(DeviceError::Unsupported {
                what: "replacing a device that has not failed",
            });
        }
        let generation = self.slots[index].generation + 1;
        let config = self.config.device_config(index, generation);
        let mut ssd = Ssd::new(config).map_err(|e| DeviceError::Internal(e.to_string()))?;
        if self.attribution {
            ssd.enable_attribution();
        }
        self.slots[index].ssd = Some(ssd);
        self.slots[index].generation = generation;
        Ok(())
    }

    /// Copies one range of a replicated fleet onto device `target`: reads
    /// it from the lowest-indexed other live replica, then writes it to the
    /// target with the write arriving as the read completes.  Returns the
    /// `(read, write)` completions so callers can account rebuild bandwidth
    /// in sim time.
    pub fn rebuild_range(
        &mut self,
        target: usize,
        range: ByteRange,
        at: SimTime,
    ) -> Result<(Completion, Completion), DeviceError> {
        if !matches!(self.config.layout, FleetLayout::Replicated) {
            return Err(DeviceError::Unsupported {
                what: "rebuild on a non-replicated fleet",
            });
        }
        let source = self
            .live_indices()
            .into_iter()
            .find(|&i| i != target)
            .ok_or(DeviceError::Unsupported {
                what: "rebuild without a live source replica",
            })?;
        if self.slots[target].ssd.is_none() {
            return Err(DeviceError::Unsupported {
                what: "rebuild onto a failed device (replace it first)",
            });
        }
        let read_id = self.next_rebuild_id;
        let write_id = self.next_rebuild_id + 1;
        self.next_rebuild_id += 2;
        let read = self.slots[source]
            .ssd
            .as_mut()
            .expect("live source")
            .submit(&BlockRequest::read(read_id, range.offset, range.len, at))?;
        let write = self.slots[target]
            .ssd
            .as_mut()
            .expect("checked live")
            .submit(&BlockRequest::write(
                write_id,
                range.offset,
                range.len,
                read.finish,
            ))?;
        self.rebuilt_bytes += range.len;
        Ok((read, write))
    }

    /// Routes one validated command to its member devices.  Returns
    /// `(device, sub-command)` pairs in ascending device order — at most
    /// one per device.
    fn fan_out(&self, command: &HostCommand, live: &[usize]) -> Vec<(usize, HostCommand)> {
        match self.config.layout {
            FleetLayout::Striped { stripe_bytes } => match *command {
                HostCommand::Read { range } => split_striped(range, self.slots.len(), stripe_bytes)
                    .into_iter()
                    .map(|s| (s.device, HostCommand::Read { range: s.range }))
                    .collect(),
                HostCommand::Write { range, hint } => {
                    split_striped(range, self.slots.len(), stripe_bytes)
                        .into_iter()
                        .map(|s| {
                            (
                                s.device,
                                HostCommand::Write {
                                    range: s.range,
                                    hint,
                                },
                            )
                        })
                        .collect()
                }
                HostCommand::Free { range } => split_striped(range, self.slots.len(), stripe_bytes)
                    .into_iter()
                    .map(|s| (s.device, HostCommand::Free { range: s.range }))
                    .collect(),
                // Fences order the whole array.
                _ => live.iter().map(|&d| (d, *command)).collect(),
            },
            FleetLayout::Replicated => match *command {
                // One replica serves the read; the choice is a pure
                // function of the address and the live set.
                HostCommand::Read { range } => {
                    let replica = live[(range.offset / self.route_unit) as usize % live.len()];
                    vec![(replica, *command)]
                }
                // Writes, frees and fences mirror to every live replica.
                _ => live.iter().map(|&d| (d, *command)).collect(),
            },
        }
    }
}

/// One device's work for a serve session: the device, its mirrored
/// initiator queues, and the serve outcome.
struct Work<'a> {
    device: usize,
    ssd: &'a mut Ssd,
    queues: &'a mut Vec<HostQueue>,
    result: Result<(), DeviceError>,
}

impl BlockDevice for Fleet {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: format!(
                "{} ({}x {}, {})",
                self.config.name,
                self.slots.len(),
                self.config.device.name,
                self.config.layout.name()
            ),
            capacity_bytes: self.capacity,
            supports_free: self.supports_free,
        }
    }

    fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
        let mut queues = [HostQueue::new()];
        queues[0].submit_request(request);
        self.serve(&mut queues)?;
        queues[0]
            .poll()
            .ok_or_else(|| DeviceError::Internal("fleet serve posted no completion".to_string()))
    }
}

impl HostInterface for Fleet {
    /// Serves the initiator queues across the whole array; see the
    /// [module docs](self) for the five-step session pipeline and its
    /// determinism guarantees.
    fn serve(&mut self, queues: &mut [HostQueue]) -> Result<(), DeviceError> {
        let arbitrated = arbitrate_round_robin(queues);
        self.merged_log.clear();
        self.last_fanout = vec![0; self.slots.len()];
        if arbitrated.is_empty() {
            return Ok(());
        }
        // Step 2: validate the whole session before any device runs, so a
        // rejected command leaves every submission queued on every queue.
        for cmd in &arbitrated {
            let command = &cmd.submission.command;
            if command.is_object_command() {
                return Err(DeviceError::Unsupported {
                    what: "object commands on a block device",
                });
            }
            if let Some(range) = command.range() {
                if range.len == 0 {
                    return Err(DeviceError::EmptyRequest);
                }
                if range.end() > self.capacity {
                    return Err(DeviceError::OutOfBounds {
                        end: range.end(),
                        capacity: self.capacity,
                    });
                }
            }
        }
        let live = self.live_indices();
        if live.is_empty() {
            return Err(DeviceError::Unsupported {
                what: "serving a fleet with no live devices",
            });
        }

        // Step 3: fan out to per-device mirrored queues.  Sub-commands use
        // the parent's arbitration sequence as correlation id, and inherit
        // arrival/priority, so each device's own arbitration sees the same
        // arrival-ordered stream the global arbiter saw.
        struct Parent {
            initiator: usize,
            id: u64,
            arrival: SimTime,
            subs: u32,
        }
        let mut parents: Vec<Parent> = Vec::with_capacity(arbitrated.len());
        let mut dev_queues: Vec<Vec<HostQueue>> = (0..self.slots.len())
            .map(|_| (0..queues.len()).map(|_| HostQueue::new()).collect())
            .collect();
        for (seq, cmd) in arbitrated.iter().enumerate() {
            let sub = cmd.submission;
            let fan = self.fan_out(&sub.command, &live);
            debug_assert!(!fan.is_empty(), "every command routes somewhere");
            for &(device, ref subcmd) in &fan {
                dev_queues[device][cmd.initiator].submit_with_priority(
                    seq as u64,
                    *subcmd,
                    sub.arrival,
                    sub.priority,
                );
                self.last_fanout[device] += 1;
            }
            parents.push(Parent {
                initiator: cmd.initiator,
                id: sub.id,
                arrival: sub.arrival,
                subs: fan.len() as u32,
            });
        }

        // Step 4: run each touched device's session, chunking devices
        // across worker threads.  Devices own their entire simulation
        // state, so the partition cannot affect results.
        let mut work: Vec<Work<'_>> = Vec::new();
        for (device, (slot, dq)) in self.slots.iter_mut().zip(dev_queues.iter_mut()).enumerate() {
            if dq.iter().all(|q| q.pending_submissions() == 0) {
                continue;
            }
            let ssd = slot
                .ssd
                .as_mut()
                .expect("routing only targets live devices");
            work.push(Work {
                device,
                ssd,
                queues: dq,
                result: Ok(()),
            });
        }
        let workers = self.config.threads.min(work.len()).max(1);
        if workers <= 1 {
            for w in work.iter_mut() {
                w.result = w.ssd.serve(w.queues);
            }
        } else {
            let chunk = work.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for ch in work.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for w in ch.iter_mut() {
                            w.result = w.ssd.serve(w.queues);
                        }
                    });
                }
            });
        }
        for w in &work {
            if let Err(e) = &w.result {
                // Unreachable after step-2 validation; if a device still
                // errors, its session may be partially applied, so report
                // it as an internal fault rather than a clean rejection.
                return Err(DeviceError::Internal(format!(
                    "device {} failed mid-session: {e}",
                    w.device
                )));
            }
        }

        // Step 5: merge sub-completions canonically, reduce to parents,
        // post in arbitration order.
        let mut merged: Vec<FleetSubCompletion> = Vec::new();
        for w in work.iter_mut() {
            for queue in w.queues.iter_mut() {
                for c in queue.drain_completions() {
                    let parent = &parents[c.request_id as usize];
                    merged.push(FleetSubCompletion {
                        device: w.device,
                        parent_seq: c.request_id,
                        request_id: parent.id,
                        initiator: parent.initiator,
                        start: c.start,
                        finish: c.finish,
                        status: c.status,
                    });
                }
            }
        }
        merged.sort_by_key(|s| (s.finish, s.device, s.parent_seq));

        struct Agg {
            start: SimTime,
            finish: SimTime,
            status: CompletionStatus,
            subs: u32,
        }
        let mut aggs: Vec<Option<Agg>> = (0..parents.len()).map(|_| None).collect();
        for s in &merged {
            let agg = aggs[s.parent_seq as usize].get_or_insert(Agg {
                start: s.start,
                finish: s.finish,
                status: s.status,
                subs: 0,
            });
            agg.start = agg.start.min(s.start);
            agg.finish = agg.finish.max(s.finish);
            if !s.status.is_ok() {
                agg.status = s.status;
            }
            agg.subs += 1;
        }

        let mut completed: Vec<(usize, Completion)> = Vec::with_capacity(parents.len());
        for (seq, parent) in parents.iter().enumerate() {
            let agg = aggs[seq].as_ref().ok_or_else(|| {
                DeviceError::Internal(format!("command {seq} produced no completions", seq = seq))
            })?;
            if agg.subs != parent.subs {
                return Err(DeviceError::Internal(format!(
                    "command {seq} completed {got}/{want} sub-commands",
                    got = agg.subs,
                    want = parent.subs
                )));
            }
            completed.push((
                parent.initiator,
                Completion {
                    request_id: parent.id,
                    arrival: parent.arrival,
                    start: agg.start,
                    finish: agg.finish,
                    status: agg.status,
                },
            ));
        }
        self.merged_log = merged;
        complete_session(queues, completed);
        Ok(())
    }
}
