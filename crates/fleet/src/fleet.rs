//! The [`Fleet`]: an array of simulated SSDs behind one host-level router.
//!
//! # Determinism model
//!
//! A fleet serve session runs in five deterministic steps:
//!
//! 1. **Arbitrate** the initiator queues round-robin into one globally
//!    arrival-ordered command list (exactly [`arbitrate_round_robin`], the
//!    same arbiter a single device uses).
//! 2. **Validate** every command up front against the fleet's exported
//!    capacity — a rejected command aborts the serve with every submission
//!    still queued and no completions posted (the [`HostInterface`] error
//!    semantics, preserved at fleet scope).
//! 3. **Fan out** each command into per-device sub-commands.  Striping
//!    maps a contiguous exported range to at most one contiguous
//!    device-local range per device (see [`crate::router`]); replication
//!    mirrors writes and routes reads to one replica; rotating parity
//!    plans data + parity updates, routing around a degraded member (see
//!    [`crate::parity`]) — a parity command may issue several coalesced
//!    sub-commands per device.  Sub-commands preserve the parent's
//!    arrival, priority and write hint, and carry the parent's arbitration
//!    sequence number as their correlation id.
//! 4. **Execute** each device's session on a worker thread
//!    ([`std::thread::scope`]; devices are chunked across
//!    [`FleetConfig::threads`] workers).  Devices share *no* simulation
//!    state — each `Ssd` is `Send` and wholly owned by its work item, and
//!    per-device RNG streams are sharded via
//!    [`ossd_sim::derive_stream_seed`] — so the thread count and OS
//!    schedule cannot affect any device's result, only wall-clock time.
//! 5. **Merge** every device's completions into one canonical order sorted
//!    by `(finish time, device index, parent sequence)`.  On a parity
//!    fleet, an [`CompletionStatus::UncorrectableRead`] sub-completion
//!    from a *live* member is then transparently repaired: the lost
//!    windows are re-read from the other members, XOR-reconstructed and
//!    rewritten, all in canonical order on one thread, so the repair
//!    schedule is itself deterministic.  Finally the sub-completions are
//!    reduced to per-parent completions (start = earliest sub-start,
//!    finish = latest sub-finish, status = worst sub-status) and posted
//!    through [`complete_session`] in arbitration order — bit-identical
//!    for every thread count, and for a 1-device fleet bit-identical to
//!    serving the standalone device.

use ossd_block::{
    arbitrate_round_robin, complete_session, BlockDevice, BlockRequest, ByteRange, Completion,
    CompletionStatus, DeviceError, DeviceInfo, HostCommand, HostInterface, HostQueue, WriteHint,
};
use ossd_ftl::FtlStats;
use ossd_sim::SimTime;
use ossd_ssd::{Ssd, SsdConfig, SsdError, SsdStats};
use ossd_telemetry::{BlameRecord, EventKind, Recorder, RecorderConfig, TelemetryHandle, Track};
use std::sync::{Arc, Mutex};

use crate::config::{FleetConfig, FleetLayout};
use crate::parity::{self, DegradedView, ParityGeometry, ParityModel, ScrubReport, SubOpKind};
use crate::qos::{RebuildGovernor, RebuildQos};
use crate::router::{split_striped, striped_capacity};
use crate::telemetry::{FleetSample, FleetSeries};

/// One member device's slot in the array.
struct Slot {
    /// The device, or `None` while failed.
    ssd: Option<Ssd>,
    /// Replacement generation: 0 for the original member, incremented by
    /// every [`Fleet::replace_device`] (feeds per-device seed derivation).
    generation: u64,
}

/// One sub-completion in the canonical merged order — the determinism
/// witness: two runs of the same seeded fleet are bit-identical iff their
/// merged logs are equal, regardless of thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetSubCompletion {
    /// Member device that served the sub-command.
    pub device: usize,
    /// Parent command's global arbitration sequence (session-local).
    pub parent_seq: u64,
    /// Parent command's host correlation id.
    pub request_id: u64,
    /// Initiator queue the parent came from.
    pub initiator: usize,
    /// When the sub-command's device work began.
    pub start: SimTime,
    /// When the sub-command completed on its device.
    pub finish: SimTime,
    /// Sub-command outcome (after any parity repair).
    pub status: CompletionStatus,
}

/// Parity-layout bookkeeping: geometry, degraded view, the shadow content
/// model and the degraded/repair counters.
struct ParityState {
    geom: ParityGeometry,
    /// Rows per member device.
    rows: u64,
    /// Fingerprint content model (see [`crate::parity::ParityModel`]).
    model: ParityModel,
    /// The currently degraded member and its rebuild watermark, if any.
    degraded: Option<DegradedView>,
    /// Host read commands that needed XOR reconstruction.
    degraded_reads: u64,
    /// Uncorrectable sub-reads transparently repaired from parity.
    repaired_reads: u64,
    /// Survivor bytes read purely for reconstruction or repair.
    reconstructed_bytes: u64,
}

/// The per-device fan-out of one command plus its reconstruction
/// accounting.
struct Fanout {
    subs: Vec<(usize, HostCommand)>,
    degraded_rows: u64,
    reconstruction_read_bytes: u64,
}

impl Fanout {
    fn plain(subs: Vec<(usize, HostCommand)>) -> Self {
        Fanout {
            subs,
            degraded_rows: 0,
            reconstruction_read_bytes: 0,
        }
    }

    fn from_plan(plan: parity::ParityPlan, hint: WriteHint) -> Self {
        let subs = plan
            .ops
            .iter()
            .map(|op| {
                let cmd = match op.kind {
                    SubOpKind::Read => HostCommand::Read { range: op.range },
                    SubOpKind::Write => HostCommand::Write {
                        range: op.range,
                        hint,
                    },
                    SubOpKind::Free => HostCommand::Free { range: op.range },
                };
                (op.device, cmd)
            })
            .collect();
        Fanout {
            subs,
            degraded_rows: plan.degraded_rows,
            reconstruction_read_bytes: plan.reconstruction_read_bytes,
        }
    }
}

/// A multi-device SSD array behind one block/queue-pair interface.
///
/// See the [module docs](self) for the determinism model.
pub struct Fleet {
    config: FleetConfig,
    slots: Vec<Slot>,
    capacity: u64,
    supports_free: bool,
    /// Routing granularity for replicated reads (one device logical page).
    route_unit: u64,
    merged_log: Vec<FleetSubCompletion>,
    last_fanout: Vec<u32>,
    rebuilt_bytes: u64,
    next_rebuild_id: u64,
    series: FleetSeries,
    /// Whether latency attribution is enabled fleet-wide (sticky, so
    /// replacement devices inherit it).
    attribution: bool,
    /// Parity bookkeeping (`None` for striped/replicated layouts).
    parity: Option<ParityState>,
    /// Admission control for rebuild traffic.
    governor: RebuildGovernor,
    /// Fleet-scope telemetry (rebuild/reconstruction spans).
    fleet_telemetry: TelemetryHandle,
    /// Max per-initiator command count of the last serve session — the
    /// host-pressure signal the rebuild governor reads.
    last_pressure: u32,
}

impl Fleet {
    /// Builds the array: validates the fleet parameters and constructs one
    /// seeded device per slot from [`FleetConfig::device_config`].
    pub fn new(config: FleetConfig) -> Result<Self, SsdError> {
        config
            .validate()
            .map_err(|reason| SsdError::InvalidConfig { reason })?;
        let mut slots = Vec::with_capacity(config.devices);
        for index in 0..config.devices {
            let ssd = Ssd::new(config.device_config(index, 0))?;
            slots.push(Slot {
                ssd: Some(ssd),
                generation: 0,
            });
        }
        let device_info = slots[0].ssd.as_ref().expect("fresh device").info();
        let mut parity = None;
        let capacity = match config.layout {
            FleetLayout::Striped { stripe_bytes } => {
                if stripe_bytes > device_info.capacity_bytes {
                    return Err(SsdError::InvalidConfig {
                        reason: format!(
                            "stripe_bytes ({stripe_bytes}) exceeds one device's capacity ({})",
                            device_info.capacity_bytes
                        ),
                    });
                }
                striped_capacity(device_info.capacity_bytes, config.devices, stripe_bytes)
            }
            FleetLayout::Replicated => device_info.capacity_bytes,
            FleetLayout::Parity { stripe_bytes } => {
                if stripe_bytes > device_info.capacity_bytes {
                    return Err(SsdError::InvalidConfig {
                        reason: format!(
                            "stripe_bytes ({stripe_bytes}) exceeds one device's capacity ({})",
                            device_info.capacity_bytes
                        ),
                    });
                }
                let geom = ParityGeometry {
                    devices: config.devices,
                    stripe_bytes,
                };
                let rows = geom.rows(device_info.capacity_bytes);
                parity = Some(ParityState {
                    geom,
                    rows,
                    model: ParityModel::new(geom, rows),
                    degraded: None,
                    degraded_reads: 0,
                    repaired_reads: 0,
                    reconstructed_bytes: 0,
                });
                geom.exported_capacity(device_info.capacity_bytes)
            }
        };
        let route_unit = slots[0]
            .ssd
            .as_ref()
            .expect("fresh device")
            .logical_page_bytes();
        let devices = config.devices;
        Ok(Fleet {
            config,
            slots,
            capacity,
            supports_free: device_info.supports_free,
            route_unit,
            merged_log: Vec::new(),
            last_fanout: vec![0; devices],
            rebuilt_bytes: 0,
            next_rebuild_id: 1 << 48,
            series: FleetSeries::new(),
            attribution: false,
            parity,
            governor: RebuildGovernor::new(RebuildQos::unthrottled()),
            fleet_telemetry: TelemetryHandle::noop(),
            last_pressure: 0,
        })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of member slots (live or failed).
    pub fn devices(&self) -> usize {
        self.slots.len()
    }

    /// Indices of the live member devices, ascending.
    pub fn live_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.ssd.as_ref().map(|_| i))
            .collect()
    }

    /// The concrete configuration device `index` is currently running
    /// (template + derived name and fault seed for its generation).  The
    /// 1-device equivalence tests build their standalone reference `Ssd`
    /// from this, so fleet and standalone share the exact seed stream.
    pub fn device_config(&self, index: usize) -> SsdConfig {
        self.config
            .device_config(index, self.slots[index].generation)
    }

    /// Device-level request/byte counters for member `index` (`None` while
    /// failed).
    pub fn device_stats(&self, index: usize) -> Option<SsdStats> {
        self.slots[index].ssd.as_ref().map(|d| d.stats())
    }

    /// FTL counters for member `index` (`None` while failed).
    pub fn device_ftl_stats(&self, index: usize) -> Option<FtlStats> {
        self.slots[index].ssd.as_ref().map(|d| d.ftl_stats())
    }

    /// Wear summary for member `index` (`None` while failed).
    pub fn device_wear_summary(&self, index: usize) -> Option<ossd_flash::WearSummary> {
        self.slots[index].ssd.as_ref().map(|d| d.wear_summary())
    }

    /// Attaches telemetry to member `index` (no-op while failed).
    pub fn set_device_telemetry(&mut self, index: usize, telemetry: TelemetryHandle) {
        if let Some(ssd) = self.slots[index].ssd.as_mut() {
            ssd.set_telemetry(telemetry);
        }
    }

    /// Attaches fleet-scope telemetry: rebuild-copy and reconstruct-read
    /// spans land here (on the device track), not on any member's
    /// recorder.  Purely observational.
    pub fn set_fleet_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.fleet_telemetry = telemetry;
    }

    /// Attaches one fresh [`Recorder`] to every live member and returns the
    /// recorder handles, indexed by device.  Failed slots still occupy an
    /// entry (an empty recorder) so indices line up.
    pub fn attach_recorders(&mut self, config: RecorderConfig) -> Vec<Arc<Mutex<Recorder>>> {
        self.slots
            .iter_mut()
            .map(|slot| {
                let (handle, recorder) = Recorder::shared(config);
                if let Some(ssd) = slot.ssd.as_mut() {
                    ssd.set_telemetry(handle);
                }
                recorder
            })
            .collect()
    }

    /// Turns on latency attribution on every live member (and, sticky,
    /// on any future replacement device).  Purely observational: schedules
    /// and completions are bit-identical to an attribution-off fleet.
    pub fn enable_attribution(&mut self) {
        self.attribution = true;
        for slot in self.slots.iter_mut() {
            if let Some(ssd) = slot.ssd.as_mut() {
                ssd.enable_attribution();
            }
        }
    }

    /// Whether [`Fleet::enable_attribution`] has been called.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution
    }

    /// Drains every live member's per-request blame records, merged into
    /// the fleet's canonical order `(finish, device, initiator, id)` and
    /// tagged with the member device index.  Per-device aggregates
    /// (histograms, class totals) stay behind on each device.
    pub fn take_blame_records(&mut self) -> Vec<(usize, BlameRecord)> {
        let mut merged: Vec<(usize, BlameRecord)> = Vec::new();
        for (device, slot) in self.slots.iter_mut().enumerate() {
            if let Some(ssd) = slot.ssd.as_mut() {
                merged.extend(ssd.take_blame_records().into_iter().map(|r| (device, r)));
            }
        }
        merged.sort_by_key(|(device, r)| (r.finish, *device, r.initiator, r.id));
        merged
    }

    /// The canonical merged sub-completion order of the last serve session,
    /// sorted by `(finish, device, parent sequence)`.  Bit-identical across
    /// thread counts for the same seed and workload.
    pub fn last_session_log(&self) -> &[FleetSubCompletion] {
        &self.merged_log
    }

    /// Sub-commands fanned to each device in the last serve session (a
    /// per-device queue-depth signal for the metrics series).
    pub fn last_fanout(&self) -> &[u32] {
        &self.last_fanout
    }

    /// Max per-initiator command count of the last serve session — the
    /// host-pressure signal fed to the rebuild governor.
    pub fn last_pressure(&self) -> u32 {
        self.last_pressure
    }

    /// Total bytes copied onto rebuild targets by [`Fleet::rebuild_range`]
    /// so far.
    pub fn rebuilt_bytes(&self) -> u64 {
        self.rebuilt_bytes
    }

    /// Sets the rebuild QoS policy (token-bucket budget + pressure
    /// backoff), resetting the governor's bucket.
    pub fn set_rebuild_qos(&mut self, qos: RebuildQos) {
        self.governor = RebuildGovernor::new(qos);
    }

    /// The active rebuild QoS policy.
    pub fn rebuild_qos(&self) -> &RebuildQos {
        self.governor.qos()
    }

    /// When a `bytes`-sized rebuild chunk requested at `at` *would* be
    /// admitted under the current QoS policy and host pressure — without
    /// consuming any budget.  Callers pacing rebuild against foreground
    /// epochs use this to defer chunks that would overrun the epoch.
    pub fn preview_rebuild_admission(&self, at: SimTime, bytes: u64) -> SimTime {
        self.governor.clone().admit(at, bytes, self.last_pressure)
    }

    /// The degraded member and its rebuild watermark (rows reconstructed
    /// so far), if the parity fleet is degraded.
    pub fn degraded_device(&self) -> Option<(usize, u64)> {
        self.parity
            .as_ref()
            .and_then(|ps| ps.degraded.map(|v| (v.device, v.rebuilt_rows)))
    }

    /// Rows per member device of a parity fleet.
    pub fn parity_rows(&self) -> Option<u64> {
        self.parity.as_ref().map(|ps| ps.rows)
    }

    /// Host read commands served by XOR reconstruction so far.
    pub fn degraded_reads(&self) -> u64 {
        self.parity.as_ref().map_or(0, |ps| ps.degraded_reads)
    }

    /// Uncorrectable sub-reads transparently repaired from parity so far.
    pub fn repaired_reads(&self) -> u64 {
        self.parity.as_ref().map_or(0, |ps| ps.repaired_reads)
    }

    /// Survivor bytes read purely for reconstruction or repair so far.
    pub fn reconstructed_bytes(&self) -> u64 {
        self.parity.as_ref().map_or(0, |ps| ps.reconstructed_bytes)
    }

    /// The fingerprint a host read of the unit containing `offset` returns
    /// under the current degraded view (parity fleets only) — the shadow
    /// content model's answer, used by tests to pin degraded-read
    /// equivalence.
    pub fn read_fingerprint(&self, offset: u64) -> Option<u64> {
        self.parity
            .as_ref()
            .map(|ps| ps.model.read_word(offset, ps.degraded))
    }

    /// The oracle fingerprint for the unit containing `offset` (what the
    /// last write to it stored), parity fleets only.
    pub fn expected_fingerprint(&self, offset: u64) -> Option<u64> {
        self.parity
            .as_ref()
            .map(|ps| ps.model.expected_word(offset))
    }

    /// Recomputes parity across every row of the shadow content model and
    /// checks every readable unit against the write oracle (parity fleets
    /// only).
    pub fn scrub(&self) -> Option<ScrubReport> {
        self.parity.as_ref().map(|ps| ps.model.scrub(ps.degraded))
    }

    /// Fleet-level metrics series (populated by
    /// [`Fleet::sample_metrics`]).
    pub fn series(&self) -> &FleetSeries {
        &self.series
    }

    /// Pushes one fleet-level metrics sample: cumulative per-device host
    /// bytes, the last session's per-device fan-out depth, rebuild
    /// progress and degraded/repair counters.
    pub fn sample_metrics(&mut self, now: SimTime) {
        let device_bytes: Vec<u64> = self
            .slots
            .iter()
            .map(|slot| {
                slot.ssd
                    .as_ref()
                    .map(|d| {
                        let stats = d.stats();
                        stats.bytes_read + stats.bytes_written
                    })
                    .unwrap_or(0)
            })
            .collect();
        let host_bytes_total = device_bytes.iter().sum();
        self.series.push(FleetSample {
            at: now,
            host_bytes_total,
            device_bytes,
            device_depth: self.last_fanout.clone(),
            rebuilt_bytes: self.rebuilt_bytes,
            degraded_reads: self.degraded_reads(),
            repaired_reads: self.repaired_reads(),
        });
    }

    /// Fails member `index`: the device and its data vanish.  Striped
    /// fleets reject failure outright (no redundancy); replicated fleets
    /// must keep one live replica; parity fleets tolerate exactly one
    /// degraded member at a time.  Failing an already-failed device is the
    /// typed no-op [`DeviceError::AlreadyFailed`].
    pub fn fail_device(&mut self, index: usize) -> Result<(), DeviceError> {
        if index >= self.slots.len() {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "device {index} is out of range for fleet '{}' with {} devices",
                    self.config.name,
                    self.slots.len()
                ),
            });
        }
        if self.slots[index].ssd.is_none() {
            return Err(DeviceError::AlreadyFailed { device: index });
        }
        match self.config.layout {
            FleetLayout::Striped { .. } => Err(DeviceError::Redundancy {
                what: format!(
                    "fleet '{}' is striped (non-redundant): failing device {index} would lose data",
                    self.config.name
                ),
            }),
            FleetLayout::Replicated => {
                if self.live_indices().len() <= 1 {
                    return Err(DeviceError::Redundancy {
                        what: format!(
                            "failing device {index} would leave fleet '{}' with no live replica",
                            self.config.name
                        ),
                    });
                }
                self.slots[index].ssd = None;
                Ok(())
            }
            FleetLayout::Parity { .. } => {
                let ps = self.parity.as_mut().expect("parity state");
                if let Some(view) = ps.degraded {
                    return Err(DeviceError::Redundancy {
                        what: format!(
                            "fleet '{}' is already degraded on device {}: failing device \
                             {index} too would exceed single-parity tolerance",
                            self.config.name, view.device
                        ),
                    });
                }
                ps.degraded = Some(DegradedView {
                    device: index,
                    rebuilt_rows: 0,
                });
                ps.model.fail(index);
                self.slots[index].ssd = None;
                Ok(())
            }
        }
    }

    /// Replaces failed member `index` with a factory-fresh device on the
    /// next seed-stream generation.  The replacement holds no data until
    /// [`Fleet::rebuild_range`] copies it back (replica copy or parity
    /// reconstruction); a parity fleet stays degraded — serving the
    /// not-yet-rebuilt rows from the survivors — until the rebuild
    /// watermark reaches the last row.
    pub fn replace_device(&mut self, index: usize) -> Result<(), DeviceError> {
        if index >= self.slots.len() {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "device {index} is out of range for fleet '{}' with {} devices",
                    self.config.name,
                    self.slots.len()
                ),
            });
        }
        if self.slots[index].ssd.is_some() {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "replacing device {index} of fleet '{}': it has not failed",
                    self.config.name
                ),
            });
        }
        let generation = self.slots[index].generation + 1;
        let config = self.config.device_config(index, generation);
        let mut ssd = Ssd::new(config).map_err(|e| DeviceError::Internal(e.to_string()))?;
        if self.attribution {
            ssd.enable_attribution();
        }
        self.slots[index].ssd = Some(ssd);
        self.slots[index].generation = generation;
        Ok(())
    }

    /// Rebuilds one range onto device `target`, admitted through the
    /// rebuild QoS governor (token-bucket budget + host-pressure backoff).
    ///
    /// * **Replicated**: copies the exported range from the lowest-indexed
    ///   other live replica (read, then a write arriving as the read
    ///   completes).
    /// * **Parity**: `range` is *device-local* and must continue
    ///   stripe-aligned at the rebuild watermark; the rows are re-read
    ///   from every surviving member, XOR-reconstructed and written to the
    ///   replacement, advancing the watermark (the fleet leaves degraded
    ///   mode when the watermark passes the last row).
    ///
    /// Returns the `(read, write)` completions — for parity the read is
    /// the aggregate over the survivors (earliest start, latest finish,
    /// worst status) — so callers can account rebuild bandwidth in sim
    /// time.
    pub fn rebuild_range(
        &mut self,
        target: usize,
        range: ByteRange,
        at: SimTime,
    ) -> Result<(Completion, Completion), DeviceError> {
        if target >= self.slots.len() {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "rebuild target {target} is out of range for fleet '{}' with {} devices",
                    self.config.name,
                    self.slots.len()
                ),
            });
        }
        match self.config.layout {
            FleetLayout::Striped { .. } => Err(DeviceError::Redundancy {
                what: format!(
                    "fleet '{}' is striped (non-redundant): nothing to rebuild onto device \
                     {target}",
                    self.config.name
                ),
            }),
            FleetLayout::Replicated => {
                let source = self
                    .live_indices()
                    .into_iter()
                    .find(|&i| i != target)
                    .ok_or_else(|| DeviceError::Redundancy {
                        what: format!(
                            "rebuild of device {target} on fleet '{}' has no live source replica",
                            self.config.name
                        ),
                    })?;
                if self.slots[target].ssd.is_none() {
                    return Err(DeviceError::Redundancy {
                        what: format!(
                            "rebuild onto failed device {target} of fleet '{}': replace it first",
                            self.config.name
                        ),
                    });
                }
                let admitted = self.governor.admit(at, range.len, self.last_pressure);
                let read_id = self.next_rebuild_id;
                let write_id = self.next_rebuild_id + 1;
                self.next_rebuild_id += 2;
                let read = self.slots[source]
                    .ssd
                    .as_mut()
                    .expect("live source")
                    .submit(&BlockRequest::read(
                        read_id,
                        range.offset,
                        range.len,
                        admitted,
                    ))?;
                let write = self.slots[target]
                    .ssd
                    .as_mut()
                    .expect("checked live")
                    .submit(&BlockRequest::write(
                        write_id,
                        range.offset,
                        range.len,
                        read.finish,
                    ))?;
                self.rebuilt_bytes += range.len;
                self.fleet_telemetry.span(
                    admitted,
                    write.finish,
                    Track::Device,
                    EventKind::RebuildCopy,
                    target as u64,
                    range.len,
                );
                Ok((read, write))
            }
            FleetLayout::Parity { .. } => self.rebuild_parity_range(target, range, at),
        }
    }

    /// The parity arm of [`Fleet::rebuild_range`]: XOR reconstruction of
    /// device-local rows onto the replacement, advancing the watermark.
    fn rebuild_parity_range(
        &mut self,
        target: usize,
        range: ByteRange,
        at: SimTime,
    ) -> Result<(Completion, Completion), DeviceError> {
        let ps = self.parity.as_ref().expect("parity state");
        let stripe = ps.geom.stripe_bytes;
        let rows = ps.rows;
        let Some(view) = ps.degraded else {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "fleet '{}' is not degraded: nothing to rebuild onto device {target}",
                    self.config.name
                ),
            });
        };
        if view.device != target {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "rebuild targets device {target} but fleet '{}' is degraded on device {}",
                    self.config.name, view.device
                ),
            });
        }
        if self.slots[target].ssd.is_none() {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "rebuild onto failed device {target} of fleet '{}': replace it first",
                    self.config.name
                ),
            });
        }
        if range.len == 0
            || !range.offset.is_multiple_of(stripe)
            || !range.len.is_multiple_of(stripe)
        {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "parity rebuild range on device {target} must be a positive multiple of \
                     the {stripe}-byte stripe (got offset {}, len {})",
                    range.offset, range.len
                ),
            });
        }
        let r0 = range.offset / stripe;
        let r1 = range.end() / stripe;
        if r0 != view.rebuilt_rows {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "parity rebuild on device {target} must continue at watermark row {} \
                     (got row {r0})",
                    view.rebuilt_rows
                ),
            });
        }
        if r1 > rows {
            return Err(DeviceError::Redundancy {
                what: format!(
                    "parity rebuild on device {target} runs past the last row ({r1} > {rows})"
                ),
            });
        }
        let admitted = self.governor.admit(at, range.len, self.last_pressure);
        // Read the rows' local bytes from every surviving member.
        let mut read_agg: Option<Completion> = None;
        for m in 0..self.slots.len() {
            if m == target {
                continue;
            }
            let id = self.next_rebuild_id;
            self.next_rebuild_id += 1;
            let ssd = self.slots[m]
                .ssd
                .as_mut()
                .ok_or_else(|| DeviceError::Redundancy {
                    what: format!(
                        "parity rebuild of device {target} needs surviving member {m} of \
                         fleet '{}', but it is failed",
                        self.config.name
                    ),
                })?;
            let c = ssd.submit(&BlockRequest::read(id, range.offset, range.len, admitted))?;
            read_agg = Some(match read_agg {
                None => c,
                Some(agg) => Completion {
                    request_id: agg.request_id,
                    arrival: agg.arrival,
                    start: agg.start.min(c.start),
                    finish: agg.finish.max(c.finish),
                    status: if agg.status.is_ok() {
                        c.status
                    } else {
                        agg.status
                    },
                },
            });
        }
        let read = read_agg.expect("parity fleet has at least two survivors");
        let write_id = self.next_rebuild_id;
        self.next_rebuild_id += 1;
        let write = self.slots[target]
            .ssd
            .as_mut()
            .expect("checked live")
            .submit(&BlockRequest::write(
                write_id,
                range.offset,
                range.len,
                read.finish,
            ))?;
        let ps = self.parity.as_mut().expect("parity state");
        ps.model.rebuild_rows(target, r0, r1);
        ps.reconstructed_bytes += range.len * (self.slots.len() as u64 - 1);
        ps.degraded = if r1 >= rows {
            None
        } else {
            Some(DegradedView {
                device: target,
                rebuilt_rows: r1,
            })
        };
        self.rebuilt_bytes += range.len;
        self.fleet_telemetry.span(
            admitted,
            write.finish,
            Track::Device,
            EventKind::RebuildCopy,
            target as u64,
            range.len,
        );
        Ok((read, write))
    }

    /// Routes one validated command to its member devices.  Striped and
    /// replicated layouts produce at most one sub-command per device;
    /// parity planning may produce several (coalesced, deterministic
    /// order).
    fn fan_out(&self, command: &HostCommand, live: &[usize]) -> Fanout {
        match self.config.layout {
            FleetLayout::Striped { stripe_bytes } => match *command {
                HostCommand::Read { range } => Fanout::plain(
                    split_striped(range, self.slots.len(), stripe_bytes)
                        .into_iter()
                        .map(|s| (s.device, HostCommand::Read { range: s.range }))
                        .collect(),
                ),
                HostCommand::Write { range, hint } => Fanout::plain(
                    split_striped(range, self.slots.len(), stripe_bytes)
                        .into_iter()
                        .map(|s| {
                            (
                                s.device,
                                HostCommand::Write {
                                    range: s.range,
                                    hint,
                                },
                            )
                        })
                        .collect(),
                ),
                HostCommand::Free { range } => Fanout::plain(
                    split_striped(range, self.slots.len(), stripe_bytes)
                        .into_iter()
                        .map(|s| (s.device, HostCommand::Free { range: s.range }))
                        .collect(),
                ),
                // Fences order the whole array.
                _ => Fanout::plain(live.iter().map(|&d| (d, *command)).collect()),
            },
            FleetLayout::Replicated => match *command {
                // One replica serves the read; the choice is a pure
                // function of the address and the live set.
                HostCommand::Read { range } => {
                    let replica = live[(range.offset / self.route_unit) as usize % live.len()];
                    Fanout::plain(vec![(replica, *command)])
                }
                // Writes, frees and fences mirror to every live replica.
                _ => Fanout::plain(live.iter().map(|&d| (d, *command)).collect()),
            },
            FleetLayout::Parity { .. } => {
                let ps = self.parity.as_ref().expect("parity state");
                match *command {
                    HostCommand::Read { range } => Fanout::from_plan(
                        parity::plan(&ps.geom, ps.degraded, SubOpKind::Read, range),
                        WriteHint::NONE,
                    ),
                    HostCommand::Write { range, hint } => Fanout::from_plan(
                        parity::plan(&ps.geom, ps.degraded, SubOpKind::Write, range),
                        hint,
                    ),
                    HostCommand::Free { range } => Fanout::from_plan(
                        parity::plan(&ps.geom, ps.degraded, SubOpKind::Free, range),
                        WriteHint::NONE,
                    ),
                    // Fences order the whole array.
                    _ => Fanout::plain(live.iter().map(|&d| (d, *command)).collect()),
                }
            }
        }
    }

    /// Step-5 repair pass (parity fleets): walks the canonical merged
    /// order and, for every failed sub-read whose row members all survive,
    /// re-reads the windows from the other members, XOR-reconstructs and
    /// rewrites them on the failing device, then marks the sub-completion
    /// repaired.  Runs single-threaded in canonical order, so the repair
    /// schedule is deterministic.  A repair whose own survivor reads fail
    /// (double fault) leaves the original uncorrectable status in place.
    fn repair_uncorrectable(&mut self, merged: &mut [FleetSubCompletion], parents: &[Parent]) {
        let (geom, degraded) = {
            let ps = self.parity.as_ref().expect("parity fleet");
            (ps.geom, ps.degraded)
        };
        let stripe = geom.stripe_bytes;
        for sub in merged.iter_mut() {
            if sub.status.is_ok() {
                continue;
            }
            let parent = &parents[sub.parent_seq as usize];
            let (kind, range) = match parent.command {
                HostCommand::Read { range } => (SubOpKind::Read, range),
                HostCommand::Write { range, .. } => (SubOpKind::Write, range),
                _ => continue,
            };
            let specs = parity::read_specs(&geom, degraded, kind, range, sub.device);
            if specs.is_empty() {
                continue;
            }
            // Repair needs every *other* member of each touched row: with
            // a degraded member elsewhere, only rows below its rebuild
            // watermark are reconstructible.
            let repairable = specs.iter().all(|spec| {
                let r0 = spec.offset / stripe;
                let r1 = (spec.end() - 1) / stripe;
                (r0..=r1).all(|row| match degraded {
                    None => true,
                    Some(v) => v.device == sub.device || row < v.rebuilt_rows,
                })
            });
            if !repairable {
                continue;
            }
            let origin = sub.finish;
            let mut cursor = sub.finish;
            let mut ok = true;
            let mut recon_bytes = 0u64;
            'specs: for spec in &specs {
                let mut read_max = cursor;
                for m in 0..self.slots.len() {
                    if m == sub.device {
                        continue;
                    }
                    let Some(ssd) = self.slots[m].ssd.as_mut() else {
                        ok = false;
                        break 'specs;
                    };
                    let id = self.next_rebuild_id;
                    self.next_rebuild_id += 1;
                    match ssd.submit(&BlockRequest::read(id, spec.offset, spec.len, cursor)) {
                        Ok(c) if c.status.is_ok() => {
                            read_max = read_max.max(c.finish);
                            recon_bytes += spec.len;
                        }
                        _ => {
                            ok = false;
                            break 'specs;
                        }
                    }
                }
                let id = self.next_rebuild_id;
                self.next_rebuild_id += 1;
                let target = self.slots[sub.device]
                    .ssd
                    .as_mut()
                    .expect("failing sub-read came from a live member");
                match target.submit(&BlockRequest::write(id, spec.offset, spec.len, read_max)) {
                    Ok(w) => cursor = w.finish,
                    Err(_) => {
                        ok = false;
                        break 'specs;
                    }
                }
            }
            if ok {
                sub.status = CompletionStatus::Ok;
                sub.finish = cursor;
                let ps = self.parity.as_mut().expect("parity fleet");
                ps.repaired_reads += 1;
                ps.reconstructed_bytes += recon_bytes;
                self.fleet_telemetry.span(
                    origin,
                    cursor,
                    Track::Device,
                    EventKind::ReconstructRead,
                    parent.id,
                    sub.device as u64,
                );
            }
        }
    }
}

/// One arbitrated parent command's bookkeeping through the session.
struct Parent {
    initiator: usize,
    id: u64,
    arrival: SimTime,
    subs: u32,
    command: HostCommand,
    /// Whether the fan-out served part of this command by reconstruction.
    recon: bool,
}

/// One device's work for a serve session: the device, its mirrored
/// initiator queues, and the serve outcome.
struct Work<'a> {
    device: usize,
    ssd: &'a mut Ssd,
    queues: &'a mut Vec<HostQueue>,
    result: Result<(), DeviceError>,
}

impl BlockDevice for Fleet {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: format!(
                "{} ({}x {}, {})",
                self.config.name,
                self.slots.len(),
                self.config.device.name,
                self.config.layout.name()
            ),
            capacity_bytes: self.capacity,
            supports_free: self.supports_free,
        }
    }

    fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
        let mut queues = [HostQueue::new()];
        queues[0].submit_request(request);
        self.serve(&mut queues)?;
        queues[0]
            .poll()
            .ok_or_else(|| DeviceError::Internal("fleet serve posted no completion".to_string()))
    }
}

impl HostInterface for Fleet {
    /// Serves the initiator queues across the whole array; see the
    /// [module docs](self) for the five-step session pipeline and its
    /// determinism guarantees.
    fn serve(&mut self, queues: &mut [HostQueue]) -> Result<(), DeviceError> {
        let arbitrated = arbitrate_round_robin(queues);
        self.merged_log.clear();
        self.last_fanout = vec![0; self.slots.len()];
        if arbitrated.is_empty() {
            return Ok(());
        }
        // Step 2: validate the whole session before any device runs, so a
        // rejected command leaves every submission queued on every queue.
        for cmd in &arbitrated {
            let command = &cmd.submission.command;
            if command.is_object_command() {
                return Err(DeviceError::Unsupported {
                    what: "object commands on a block device",
                });
            }
            if let Some(range) = command.range() {
                if range.len == 0 {
                    return Err(DeviceError::EmptyRequest);
                }
                if range.end() > self.capacity {
                    return Err(DeviceError::OutOfBounds {
                        end: range.end(),
                        capacity: self.capacity,
                    });
                }
            }
        }
        let live = self.live_indices();
        if live.is_empty() {
            return Err(DeviceError::Unsupported {
                what: "serving a fleet with no live devices",
            });
        }
        // The host-pressure signal the rebuild governor reads: the busiest
        // initiator's command count this session.
        let mut per_initiator = vec![0u32; queues.len()];
        for cmd in &arbitrated {
            per_initiator[cmd.initiator] += 1;
        }
        self.last_pressure = per_initiator.iter().copied().max().unwrap_or(0);

        // Step 3: fan out to per-device mirrored queues.  Sub-commands use
        // the parent's arbitration sequence as correlation id, and inherit
        // arrival/priority, so each device's own arbitration sees the same
        // arrival-ordered stream the global arbiter saw.
        let mut parents: Vec<Parent> = Vec::with_capacity(arbitrated.len());
        let mut dev_queues: Vec<Vec<HostQueue>> = (0..self.slots.len())
            .map(|_| (0..queues.len()).map(|_| HostQueue::new()).collect())
            .collect();
        for (seq, cmd) in arbitrated.iter().enumerate() {
            let sub = cmd.submission;
            let fan = self.fan_out(&sub.command, &live);
            // Only a parity free whose every covered unit is degraded may
            // fan to nothing (nothing live to trim); it completes
            // immediately in step 5.
            debug_assert!(
                !fan.subs.is_empty() || matches!(sub.command, HostCommand::Free { .. }),
                "every non-free command routes somewhere"
            );
            for &(device, ref subcmd) in &fan.subs {
                dev_queues[device][cmd.initiator].submit_with_priority(
                    seq as u64,
                    *subcmd,
                    sub.arrival,
                    sub.priority,
                );
                self.last_fanout[device] += 1;
            }
            // Shadow content model + reconstruction accounting (parity).
            if let Some(ps) = self.parity.as_mut() {
                if let HostCommand::Write { range, .. } = sub.command {
                    ps.model.apply_write(range, ps.degraded);
                }
                if matches!(sub.command, HostCommand::Read { .. }) && fan.degraded_rows > 0 {
                    ps.degraded_reads += 1;
                }
                ps.reconstructed_bytes += fan.reconstruction_read_bytes;
            }
            parents.push(Parent {
                initiator: cmd.initiator,
                id: sub.id,
                arrival: sub.arrival,
                subs: fan.subs.len() as u32,
                command: sub.command,
                recon: fan.degraded_rows > 0,
            });
        }

        // Step 4: run each touched device's session, chunking devices
        // across worker threads.  Devices own their entire simulation
        // state, so the partition cannot affect results.
        let mut work: Vec<Work<'_>> = Vec::new();
        for (device, (slot, dq)) in self.slots.iter_mut().zip(dev_queues.iter_mut()).enumerate() {
            if dq.iter().all(|q| q.pending_submissions() == 0) {
                continue;
            }
            let ssd = slot
                .ssd
                .as_mut()
                .expect("routing only targets live devices");
            work.push(Work {
                device,
                ssd,
                queues: dq,
                result: Ok(()),
            });
        }
        let workers = self.config.threads.min(work.len()).max(1);
        if workers <= 1 {
            for w in work.iter_mut() {
                w.result = w.ssd.serve(w.queues);
            }
        } else {
            let chunk = work.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for ch in work.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for w in ch.iter_mut() {
                            w.result = w.ssd.serve(w.queues);
                        }
                    });
                }
            });
        }
        for w in &work {
            if let Err(e) = &w.result {
                // Unreachable after step-2 validation; if a device still
                // errors, its session may be partially applied, so report
                // it as an internal fault rather than a clean rejection.
                return Err(DeviceError::Internal(format!(
                    "device {} failed mid-session: {e}",
                    w.device
                )));
            }
        }

        // Step 5: merge sub-completions canonically, repair uncorrectable
        // parity reads, reduce to parents, post in arbitration order.
        let mut merged: Vec<FleetSubCompletion> = Vec::new();
        for w in work.iter_mut() {
            for queue in w.queues.iter_mut() {
                for c in queue.drain_completions() {
                    let parent = &parents[c.request_id as usize];
                    merged.push(FleetSubCompletion {
                        device: w.device,
                        parent_seq: c.request_id,
                        request_id: parent.id,
                        initiator: parent.initiator,
                        start: c.start,
                        finish: c.finish,
                        status: c.status,
                    });
                }
            }
        }
        merged.sort_by_key(|s| (s.finish, s.device, s.parent_seq));
        if self.parity.is_some() {
            self.repair_uncorrectable(&mut merged, &parents);
            // Repairs only push finishes later; re-impose canonical order.
            merged.sort_by_key(|s| (s.finish, s.device, s.parent_seq));
        }

        struct Agg {
            start: SimTime,
            finish: SimTime,
            status: CompletionStatus,
            subs: u32,
        }
        let mut aggs: Vec<Option<Agg>> = (0..parents.len()).map(|_| None).collect();
        for s in &merged {
            let agg = aggs[s.parent_seq as usize].get_or_insert(Agg {
                start: s.start,
                finish: s.finish,
                status: s.status,
                subs: 0,
            });
            agg.start = agg.start.min(s.start);
            agg.finish = agg.finish.max(s.finish);
            if !s.status.is_ok() {
                agg.status = s.status;
            }
            agg.subs += 1;
        }

        let degraded_member = self
            .parity
            .as_ref()
            .and_then(|ps| ps.degraded.map(|v| v.device as u64));
        let mut completed: Vec<(usize, Completion)> = Vec::with_capacity(parents.len());
        for (seq, parent) in parents.iter().enumerate() {
            if parent.subs == 0 {
                // A fully-degraded parity free: advisory, nothing live to
                // trim — complete immediately at arrival.
                completed.push((
                    parent.initiator,
                    Completion {
                        request_id: parent.id,
                        arrival: parent.arrival,
                        start: parent.arrival,
                        finish: parent.arrival,
                        status: CompletionStatus::Ok,
                    },
                ));
                continue;
            }
            let agg = aggs[seq].as_ref().ok_or_else(|| {
                DeviceError::Internal(format!("command {seq} produced no completions", seq = seq))
            })?;
            if agg.subs != parent.subs {
                return Err(DeviceError::Internal(format!(
                    "command {seq} completed {got}/{want} sub-commands",
                    got = agg.subs,
                    want = parent.subs
                )));
            }
            if parent.recon {
                self.fleet_telemetry.span(
                    agg.start,
                    agg.finish,
                    Track::Device,
                    EventKind::ReconstructRead,
                    parent.id,
                    degraded_member.unwrap_or(u64::MAX),
                );
            }
            completed.push((
                parent.initiator,
                Completion {
                    request_id: parent.id,
                    arrival: parent.arrival,
                    start: agg.start,
                    finish: agg.finish,
                    status: agg.status,
                },
            ));
        }
        self.merged_log = merged;
        complete_session(queues, completed);
        Ok(())
    }
}
