//! Fleet-scale parallel simulation: a multi-device SSD array behind one
//! host interface, with per-device engine threads and a deterministic
//! completion merge.
//!
//! The single-device simulators in this workspace are strictly
//! single-threaded — determinism comes from one event queue with total
//! ordering.  This crate scales that model out instead of up: a
//! [`Fleet`] owns an array of [`ossd_ssd::Ssd`]s and routes the exported
//! byte space across them, either
//!
//! * **striped** (RAID-0): stripes dealt round-robin, aggregate capacity
//!   and bandwidth, no redundancy; or
//! * **replicated**: every write mirrored to all live replicas, reads
//!   routed deterministically to one, survivable device failure with
//!   online rebuild ([`Fleet::fail_device`] / [`Fleet::replace_device`] /
//!   [`Fleet::rebuild_range`]); or
//! * **parity** (RAID-5): rotating XOR parity over `devices - 1` data
//!   units per row ([`parity`]), `devices - 1` devices' worth of
//!   capacity, and degraded-mode serving — a failed member's data is
//!   reconstructed from the survivors online, uncorrectable reads on
//!   live members are transparently repaired from parity, and rebuild
//!   onto a replacement runs under a QoS governor ([`qos`]) that trades
//!   copy-back bandwidth against survivor tail latency.
//!
//! ```text
//!  initiators ─► HostQueues ─► global round-robin arbitration
//!                                   │ validate (atomic) + fan out
//!                  ┌────────────────┼────────────────┐
//!                  ▼                ▼                ▼
//!              dev0 queues      dev1 queues      devN queues
//!              engine thread    engine thread    engine thread
//!                  └────────────────┼────────────────┘
//!                                   ▼
//!             merge by (finish, device, sequence) ─► reduce ─► CQs
//! ```
//!
//! Each device's event engine runs on its own OS thread (`Ssd` is `Send`;
//! devices share no state; per-device RNG streams come from
//! [`ossd_sim::derive_stream_seed`]), and the merge step re-imposes one
//! canonical completion order, so a seeded run is bit-for-bit identical
//! for every thread count — and a 1-device fleet is bit-for-bit identical
//! to the standalone device.  See [`fleet`] for the full session
//! pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fleet;
pub mod parity;
pub mod qos;
pub mod router;
pub mod telemetry;

pub use config::{FleetConfig, FleetLayout};
pub use fleet::{Fleet, FleetSubCompletion};
pub use parity::{DegradedView, ParityGeometry, ParityModel, ParityPlan, ScrubReport, SubOpKind};
pub use qos::{RebuildGovernor, RebuildQos};
pub use router::{split_striped, striped_capacity, DeviceSlice};
pub use telemetry::{fleet_chrome_trace, FleetSample, FleetSeries};
