//! Rotating-parity (RAID-5) layout: geometry, command planning and the
//! fleet-level content model used to verify reconstruction.
//!
//! # Geometry
//!
//! With `N` devices and a stripe unit of `s` bytes, exported space is cut
//! into *rows* of `N-1` data units plus one parity unit.  Row `r` keeps its
//! parity on device `(N-1) - (r mod N)` (the rotation walks right-to-left,
//! the usual left-symmetric placement), and data slot `k` of the row lives
//! on device `k` skipping over the parity device.  Every device therefore
//! holds **exactly one unit of every row** — data or parity — at local
//! bytes `[r*s, (r+1)*s)`.  That uniform local placement is the property
//! the planner and the rebuild path rely on: a window `[a, b)` of row `r`
//! reads at local `[r*s + a, r*s + b)` on *any* member, so reconstruction
//! and rebuild address every surviving device identically.
//!
//! # Planning
//!
//! [`plan`] turns one host command into per-device sub-operations:
//!
//! * **Reads** route to the owning data device; a read of a degraded unit
//!   fans out as the same window on every surviving member (XOR
//!   reconstruction through the ordinary merge machinery).
//! * **Writes** update data + parity.  A full row becomes pure writes
//!   (data + parity, no reads).  Partial rows pick between read-modify-
//!   write (read old data + old parity) and reconstruct-write (read the
//!   untouched data instead) by which needs fewer member reads.  Degraded
//!   rows write the survivors and keep parity current so the failed unit
//!   stays reconstructible.
//! * **Frees** are advisory and go to live data devices only; parity is
//!   *not* recomputed, so reconstructing a freed (dead) range may return
//!   stale content — harmless by definition of free.
//!
//! # Content model
//!
//! The simulator's protocol is timing-only — commands carry no payloads —
//! so "degraded reads return the pre-failure data" cannot be checked at
//! the device level.  [`ParityModel`] keeps one `u64` fingerprint per
//! stored unit per device plus an oracle of every exported unit's expected
//! fingerprint, mirrors the parity math the array performs (incremental
//! XOR updates, loss on failure, XOR reconstruction on rebuild), and lets
//! tests and scrub assert bit-identical reconstruction.

use ossd_block::ByteRange;

/// Geometry of a rotating-parity array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParityGeometry {
    /// Member devices (≥ 3).
    pub devices: usize,
    /// Stripe unit in bytes.
    pub stripe_bytes: u64,
}

impl ParityGeometry {
    /// Data units per row (`devices - 1`).
    pub fn data_units(&self) -> u64 {
        self.devices as u64 - 1
    }

    /// Exported bytes per row.
    pub fn row_bytes(&self) -> u64 {
        self.data_units() * self.stripe_bytes
    }

    /// The device holding row `row`'s parity unit.
    pub fn parity_device(&self, row: u64) -> usize {
        (self.devices - 1) - (row % self.devices as u64) as usize
    }

    /// The device holding data slot `slot` (`0..devices-1`) of row `row`.
    pub fn data_device(&self, row: u64, slot: u64) -> usize {
        let p = self.parity_device(row);
        let s = slot as usize;
        if s < p {
            s
        } else {
            s + 1
        }
    }

    /// Number of whole rows a member of `device_capacity` bytes can hold.
    pub fn rows(&self, device_capacity: u64) -> u64 {
        device_capacity / self.stripe_bytes
    }

    /// Exported capacity given one member's capacity.
    pub fn exported_capacity(&self, device_capacity: u64) -> u64 {
        self.rows(device_capacity) * self.row_bytes()
    }

    /// Splits exported offset into `(row, slot, offset-within-unit)`.
    pub fn locate(&self, offset: u64) -> (u64, u64, u64) {
        let row = offset / self.row_bytes();
        let within = offset % self.row_bytes();
        (row, within / self.stripe_bytes, within % self.stripe_bytes)
    }

    /// Exported unit index of `(row, slot)` (the content-model address).
    pub fn unit_index(&self, row: u64, slot: u64) -> u64 {
        row * self.data_units() + slot
    }
}

/// Which rows of which member must be served by reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradedView {
    /// The failed (or replaced-but-not-yet-rebuilt) member device.
    pub device: usize,
    /// Rebuild watermark: rows `< rebuilt_rows` have been reconstructed
    /// onto the replacement and serve normally; rows `>= rebuilt_rows`
    /// are degraded.
    pub rebuilt_rows: u64,
}

impl DegradedView {
    /// Whether `device`'s unit of `row` must be routed around.
    pub fn is_degraded(&self, device: usize, row: u64) -> bool {
        device == self.device && row >= self.rebuilt_rows
    }
}

/// The operation kind of a planned sub-command (also used to tag the
/// parent command handed to [`plan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubOpKind {
    /// Read the device-local bytes.
    Read,
    /// Write the device-local bytes.
    Write,
    /// Free (TRIM) the device-local bytes.
    Free,
}

/// One planned per-device sub-operation (device-local addressing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubOp {
    /// Member device index.
    pub device: usize,
    /// Operation kind.
    pub kind: SubOpKind,
    /// Device-local byte range.
    pub range: ByteRange,
}

/// The per-device fan-out of one host command on a parity layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParityPlan {
    /// Coalesced sub-operations, sorted by `(device, kind, offset)`.
    pub ops: Vec<SubOp>,
    /// Row-windows of this command that were served by reconstruction
    /// (reads of a degraded unit, or degraded-row writes that had to
    /// recover the failed member's old content).
    pub degraded_rows: u64,
    /// Extra survivor bytes read purely for reconstruction.
    pub reconstruction_read_bytes: u64,
}

/// Plans one host command (`Read`/`Write`/`Free`, expressed as a
/// [`SubOpKind`]) over the exported `range`, honouring the degraded view.
///
/// The returned ops are deterministic: coalesced per `(device, kind)` and
/// sorted by `(device, kind, local offset)`.
pub fn plan(
    geom: &ParityGeometry,
    degraded: Option<DegradedView>,
    cmd: SubOpKind,
    range: ByteRange,
) -> ParityPlan {
    let mut raw: Vec<SubOp> = Vec::new();
    let mut plan = ParityPlan::default();
    let s = geom.stripe_bytes;
    let row_bytes = geom.row_bytes();
    let first_row = range.offset / row_bytes;
    let last_row = (range.end() - 1) / row_bytes;
    for row in first_row..=last_row {
        // The command's window within this row, in row-local bytes.
        let lo = range.offset.max(row * row_bytes) - row * row_bytes;
        let hi = range.end().min((row + 1) * row_bytes) - row * row_bytes;
        let local = |a: u64, b: u64| ByteRange::new(row * s + a, b - a);
        let klo = lo / s;
        let khi = (hi - 1) / s;
        // Window of covered slot `k` within its unit.
        let window = |k: u64| {
            let a = if k == klo { lo - k * s } else { 0 };
            let b = if k == khi { hi - k * s } else { s };
            (a, b)
        };
        let is_deg = |device: usize| degraded.is_some_and(|v| v.is_degraded(device, row));
        match cmd {
            SubOpKind::Read => {
                for k in klo..=khi {
                    let (a, b) = window(k);
                    let d = geom.data_device(row, k);
                    if is_deg(d) {
                        // Reconstruct: the same window on every survivor.
                        for m in 0..geom.devices {
                            if m != d {
                                raw.push(SubOp {
                                    device: m,
                                    kind: SubOpKind::Read,
                                    range: local(a, b),
                                });
                            }
                        }
                        plan.degraded_rows += 1;
                        plan.reconstruction_read_bytes += (b - a) * (geom.devices as u64 - 1);
                    } else {
                        raw.push(SubOp {
                            device: d,
                            kind: SubOpKind::Read,
                            range: local(a, b),
                        });
                    }
                }
            }
            SubOpKind::Write => {
                let p = geom.parity_device(row);
                let full_row = lo == 0 && hi == row_bytes;
                if full_row {
                    // Full-stripe write: parity computes from the new data
                    // alone — pure writes, no reads.
                    for k in 0..geom.data_units() {
                        let d = geom.data_device(row, k);
                        if !is_deg(d) {
                            raw.push(SubOp {
                                device: d,
                                kind: SubOpKind::Write,
                                range: local(0, s),
                            });
                        }
                    }
                    if !is_deg(p) {
                        raw.push(SubOp {
                            device: p,
                            kind: SubOpKind::Write,
                            range: local(0, s),
                        });
                    }
                    continue;
                }
                // Parity window: the bounding box of the covered windows
                // (whole unit as soon as more than one slot is touched).
                let (wa, wb) = if klo == khi { window(klo) } else { (0, s) };
                let covered = khi - klo + 1;
                let degraded_covers_data = (klo..=khi).any(|k| is_deg(geom.data_device(row, k)));
                let any_degraded_data =
                    (0..geom.data_units()).any(|k| is_deg(geom.data_device(row, k)));
                if is_deg(p) {
                    // Parity is the degraded unit: writes land on data only
                    // and parity is recomputed when the row rebuilds.
                    for k in klo..=khi {
                        let (a, b) = window(k);
                        raw.push(SubOp {
                            device: geom.data_device(row, k),
                            kind: SubOpKind::Write,
                            range: local(a, b),
                        });
                    }
                } else if degraded_covers_data {
                    // A covered data unit is lost: recover the row's old
                    // content from every survivor, write the live covered
                    // windows, and recompute whole-unit parity so the
                    // failed member's new data stays reconstructible.
                    for m in 0..geom.devices {
                        if !is_deg(m) {
                            raw.push(SubOp {
                                device: m,
                                kind: SubOpKind::Read,
                                range: local(0, s),
                            });
                            plan.reconstruction_read_bytes += s;
                        }
                    }
                    for k in klo..=khi {
                        let (a, b) = window(k);
                        let d = geom.data_device(row, k);
                        if !is_deg(d) {
                            raw.push(SubOp {
                                device: d,
                                kind: SubOpKind::Write,
                                range: local(a, b),
                            });
                        }
                    }
                    raw.push(SubOp {
                        device: p,
                        kind: SubOpKind::Write,
                        range: local(0, s),
                    });
                    plan.degraded_rows += 1;
                } else if covered * 2 >= geom.data_units() && !any_degraded_data {
                    // Reconstruct-write: read the untouched data units (and
                    // the untouched edges of partially-covered units), then
                    // write new data + freshly computed parity.  Only taken
                    // when every data unit of the row is live — an
                    // uncovered degraded unit falls through to
                    // read-modify-write, whose reads touch covered units
                    // and parity only.
                    for k in 0..geom.data_units() {
                        let d = geom.data_device(row, k);
                        if k < klo || k > khi {
                            raw.push(SubOp {
                                device: d,
                                kind: SubOpKind::Read,
                                range: local(wa, wb),
                            });
                        } else {
                            let (a, b) = window(k);
                            if a > wa {
                                raw.push(SubOp {
                                    device: d,
                                    kind: SubOpKind::Read,
                                    range: local(wa, a),
                                });
                            }
                            if b < wb {
                                raw.push(SubOp {
                                    device: d,
                                    kind: SubOpKind::Read,
                                    range: local(b, wb),
                                });
                            }
                            raw.push(SubOp {
                                device: d,
                                kind: SubOpKind::Write,
                                range: local(a, b),
                            });
                        }
                    }
                    raw.push(SubOp {
                        device: p,
                        kind: SubOpKind::Write,
                        range: local(wa, wb),
                    });
                } else {
                    // Read-modify-write: read old data + old parity, write
                    // new data + new parity.
                    for k in klo..=khi {
                        let (a, b) = window(k);
                        let d = geom.data_device(row, k);
                        raw.push(SubOp {
                            device: d,
                            kind: SubOpKind::Read,
                            range: local(a, b),
                        });
                        raw.push(SubOp {
                            device: d,
                            kind: SubOpKind::Write,
                            range: local(a, b),
                        });
                    }
                    raw.push(SubOp {
                        device: p,
                        kind: SubOpKind::Read,
                        range: local(wa, wb),
                    });
                    raw.push(SubOp {
                        device: p,
                        kind: SubOpKind::Write,
                        range: local(wa, wb),
                    });
                }
            }
            SubOpKind::Free => {
                for k in klo..=khi {
                    let (a, b) = window(k);
                    let d = geom.data_device(row, k);
                    if !is_deg(d) {
                        raw.push(SubOp {
                            device: d,
                            kind: SubOpKind::Free,
                            range: local(a, b),
                        });
                    }
                }
            }
        }
    }
    plan.ops = coalesce(raw);
    plan
}

/// The read windows [`plan`] issues on `device` for this command —
/// re-derived so the uncorrectable-repair path knows exactly which
/// device-local bytes a failed read sub-command covered.
pub fn read_specs(
    geom: &ParityGeometry,
    degraded: Option<DegradedView>,
    cmd: SubOpKind,
    range: ByteRange,
    device: usize,
) -> Vec<ByteRange> {
    plan(geom, degraded, cmd, range)
        .ops
        .into_iter()
        .filter(|op| op.device == device && op.kind == SubOpKind::Read)
        .map(|op| op.range)
        .collect()
}

/// Sorts raw ops by `(device, kind, offset)` and merges overlapping or
/// adjacent ranges of the same `(device, kind)` — reconstruction can ask a
/// survivor for windows that abut or overlap its own direct window, and a
/// controller issues the union once.
fn coalesce(mut raw: Vec<SubOp>) -> Vec<SubOp> {
    raw.sort_by_key(|op| (op.device, op.kind, op.range.offset, op.range.len));
    let mut out: Vec<SubOp> = Vec::with_capacity(raw.len());
    for op in raw {
        if let Some(prev) = out.last_mut() {
            if prev.device == op.device
                && prev.kind == op.kind
                && op.range.offset <= prev.range.end()
            {
                let end = prev.range.end().max(op.range.end());
                prev.range.len = end - prev.range.offset;
                continue;
            }
        }
        out.push(op);
    }
    out
}

/// Scrub outcome: every row's parity recomputed and every stored unit
/// checked against the expected-content oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Rows checked.
    pub rows: u64,
    /// Stored (or reconstructed) data units that differ from the oracle.
    pub data_mismatches: u64,
    /// Parity units that differ from the XOR of their row's data.
    pub parity_mismatches: u64,
}

impl ScrubReport {
    /// Whether the scrub found the array fully consistent.
    pub fn is_clean(&self) -> bool {
        self.data_mismatches == 0 && self.parity_mismatches == 0
    }
}

/// Fleet-level shadow content: one `u64` fingerprint per stored unit per
/// device, plus the oracle of what every exported unit should read as.
///
/// Writes update fingerprints at unit granularity (a partial-unit write
/// renews the whole unit's fingerprint) and mirror the array's parity
/// maintenance: live data units store the new fingerprint, the live parity
/// unit stores the XOR of its row's expected data, a degraded unit stores
/// nothing.  [`ParityModel::fail`] zeroes a member (data loss),
/// [`ParityModel::rebuild_rows`] reconstructs by XOR of the survivors —
/// exactly what the device-level rebuild models in time.
#[derive(Clone, Debug)]
pub struct ParityModel {
    geom: ParityGeometry,
    rows: u64,
    /// `stored[device][row]`: fingerprint of the unit the device holds.
    stored: Vec<Vec<u64>>,
    /// `expected[unit]`: the oracle — what a read of the unit must return.
    expected: Vec<u64>,
    /// Monotone write sequence feeding fresh fingerprints.
    seq: u64,
}

/// SplitMix64 finalizer: a cheap, well-mixed fingerprint function.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ParityModel {
    /// A model for `rows` rows of the given geometry, all-zero content.
    pub fn new(geom: ParityGeometry, rows: u64) -> Self {
        ParityModel {
            geom,
            rows,
            stored: vec![vec![0; rows as usize]; geom.devices],
            expected: vec![0; (rows * geom.data_units()) as usize],
            seq: 0,
        }
    }

    /// Applies one exported-range write under the given degraded view.
    pub fn apply_write(&mut self, range: ByteRange, degraded: Option<DegradedView>) {
        let first = range.offset / self.geom.stripe_bytes;
        let last = (range.end() - 1) / self.geom.stripe_bytes;
        let mut touched_rows: Vec<u64> = Vec::new();
        for unit in first..=last {
            let row = unit / self.geom.data_units();
            let slot = unit % self.geom.data_units();
            self.seq += 1;
            let word = mix(self.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ unit);
            self.expected[unit as usize] = word;
            let d = self.geom.data_device(row, slot);
            if !degraded.is_some_and(|v| v.is_degraded(d, row)) {
                self.stored[d][row as usize] = word;
            }
            if touched_rows.last() != Some(&row) {
                touched_rows.push(row);
            }
        }
        for row in touched_rows {
            let p = self.geom.parity_device(row);
            if !degraded.is_some_and(|v| v.is_degraded(p, row)) {
                self.stored[p][row as usize] = self.row_parity(row);
            }
        }
    }

    /// The XOR of the row's expected data units — what a consistent parity
    /// unit stores.
    fn row_parity(&self, row: u64) -> u64 {
        (0..self.geom.data_units())
            .map(|k| self.expected[self.geom.unit_index(row, k) as usize])
            .fold(0, |acc, w| acc ^ w)
    }

    /// Member `device` failed: its stored units are gone.
    pub fn fail(&mut self, device: usize) {
        self.stored[device].fill(0);
    }

    /// Reconstructs rows `r0..r1` onto `target` by XOR of the survivors.
    pub fn rebuild_rows(&mut self, target: usize, r0: u64, r1: u64) {
        for row in r0..r1 {
            let mut acc = 0;
            for (device, units) in self.stored.iter().enumerate() {
                if device != target {
                    acc ^= units[row as usize];
                }
            }
            self.stored[target][row as usize] = acc;
        }
    }

    /// The fingerprint a read of the unit containing exported `offset`
    /// returns: the stored data unit, or its XOR reconstruction when the
    /// owning device is degraded.
    pub fn read_word(&self, offset: u64, degraded: Option<DegradedView>) -> u64 {
        let (row, slot, _) = self.geom.locate(offset);
        let d = self.geom.data_device(row, slot);
        if degraded.is_some_and(|v| v.is_degraded(d, row)) {
            self.stored
                .iter()
                .enumerate()
                .filter(|&(m, _)| m != d)
                .map(|(_, units)| units[row as usize])
                .fold(0, |acc, w| acc ^ w)
        } else {
            self.stored[d][row as usize]
        }
    }

    /// The oracle fingerprint for the unit containing exported `offset`.
    pub fn expected_word(&self, offset: u64) -> u64 {
        let (row, slot, _) = self.geom.locate(offset);
        self.expected[self.geom.unit_index(row, slot) as usize]
    }

    /// Recomputes parity across every row and checks every readable unit
    /// against the oracle (degraded units via reconstruction).
    pub fn scrub(&self, degraded: Option<DegradedView>) -> ScrubReport {
        let mut report = ScrubReport {
            rows: self.rows,
            ..ScrubReport::default()
        };
        for row in 0..self.rows {
            for k in 0..self.geom.data_units() {
                let offset = self.geom.unit_index(row, k) * self.geom.stripe_bytes;
                if self.read_word(offset, degraded) != self.expected_word(offset) {
                    report.data_mismatches += 1;
                }
            }
            let p = self.geom.parity_device(row);
            if !degraded.is_some_and(|v| v.is_degraded(p, row))
                && self.stored[p][row as usize] != self.row_parity(row)
            {
                report.parity_mismatches += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ParityGeometry {
        ParityGeometry {
            devices: 4,
            stripe_bytes: 8,
        }
    }

    #[test]
    fn rotation_places_one_parity_per_row_and_distinct_data_devices() {
        let g = geom();
        for row in 0..12 {
            let p = g.parity_device(row);
            let mut seen = vec![false; g.devices];
            seen[p] = true;
            for k in 0..g.data_units() {
                let d = g.data_device(row, k);
                assert_ne!(d, p, "row {row} slot {k}");
                assert!(!seen[d], "row {row} slot {k} device reused");
                seen[d] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
        // Rotation visits every device as parity across N consecutive rows.
        let parities: Vec<usize> = (0..4).map(|r| g.parity_device(r)).collect();
        let mut sorted = parities.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_counts_data_units_only() {
        let g = geom();
        assert_eq!(g.exported_capacity(80), 10 * 3 * 8);
        // Partial trailing rows are floored away.
        assert_eq!(g.exported_capacity(83), 10 * 3 * 8);
    }

    #[test]
    fn healthy_reads_route_to_the_owning_data_device() {
        let g = geom();
        // Brute-force: every byte of several ranges lands on exactly the
        // device `locate` names, within one of the planned read windows.
        for &(offset, len) in &[(0u64, 1u64), (5, 30), (24, 24), (70, 50), (8, 16)] {
            let p = plan(&g, None, SubOpKind::Read, ByteRange::new(offset, len));
            assert_eq!(p.degraded_rows, 0);
            assert_eq!(p.reconstruction_read_bytes, 0);
            let total: u64 = p.ops.iter().map(|op| op.range.len).sum();
            assert_eq!(total, len, "o={offset} l={len}");
            for x in offset..offset + len {
                let (row, slot, within) = g.locate(x);
                let d = g.data_device(row, slot);
                let local = row * g.stripe_bytes + within;
                assert!(
                    p.ops.iter().any(|op| op.device == d
                        && op.kind == SubOpKind::Read
                        && local >= op.range.offset
                        && local < op.range.end()),
                    "byte {x} lost"
                );
            }
        }
    }

    #[test]
    fn full_stripe_write_issues_no_reads() {
        let g = geom();
        let p = plan(&g, None, SubOpKind::Write, ByteRange::new(24, 24));
        assert!(p.ops.iter().all(|op| op.kind == SubOpKind::Write));
        assert_eq!(p.ops.len(), 4); // 3 data + 1 parity
        let row = 1;
        for op in &p.ops {
            assert_eq!(op.range, ByteRange::new(row * 8, 8));
        }
    }

    #[test]
    fn small_write_uses_read_modify_write() {
        let g = geom();
        // 4 bytes in one unit: read+write that unit, read+write parity.
        let p = plan(&g, None, SubOpKind::Write, ByteRange::new(2, 4));
        let d = g.data_device(0, 0);
        let parity = g.parity_device(0);
        let reads: Vec<&SubOp> = p.ops.iter().filter(|o| o.kind == SubOpKind::Read).collect();
        let writes: Vec<&SubOp> = p
            .ops
            .iter()
            .filter(|o| o.kind == SubOpKind::Write)
            .collect();
        assert_eq!(reads.len(), 2);
        assert_eq!(writes.len(), 2);
        for set in [&reads, &writes] {
            assert!(set
                .iter()
                .any(|o| o.device == d && o.range == ByteRange::new(2, 4)));
            assert!(set
                .iter()
                .any(|o| o.device == parity && o.range == ByteRange::new(2, 4)));
        }
    }

    #[test]
    fn wide_partial_write_reconstructs_from_untouched_units() {
        let g = geom();
        // Units 0 and 1 of row 0 fully covered (2 of 3 data units): cheaper
        // to read the single untouched unit than two old units + parity.
        let p = plan(&g, None, SubOpKind::Write, ByteRange::new(0, 16));
        let untouched = g.data_device(0, 2);
        let reads: Vec<&SubOp> = p.ops.iter().filter(|o| o.kind == SubOpKind::Read).collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].device, untouched);
        assert_eq!(reads[0].range, ByteRange::new(0, 8));
        // Parity written over the bounding window (both units → full unit).
        assert!(p.ops.iter().any(|o| o.device == g.parity_device(0)
            && o.kind == SubOpKind::Write
            && o.range == ByteRange::new(0, 8)));
    }

    #[test]
    fn degraded_read_fans_to_every_survivor() {
        let g = geom();
        let failed = g.data_device(0, 1);
        let view = DegradedView {
            device: failed,
            rebuilt_rows: 0,
        };
        let p = plan(&g, Some(view), SubOpKind::Read, ByteRange::new(10, 4));
        assert_eq!(p.degraded_rows, 1);
        assert_eq!(p.reconstruction_read_bytes, 4 * 3);
        assert_eq!(p.ops.len(), 3);
        for op in &p.ops {
            assert_ne!(op.device, failed);
            assert_eq!(op.kind, SubOpKind::Read);
            assert_eq!(op.range, ByteRange::new(2, 4));
        }
    }

    #[test]
    fn rebuilt_rows_serve_normally_again() {
        let g = geom();
        let failed = g.data_device(0, 1);
        let view = DegradedView {
            device: failed,
            rebuilt_rows: 1,
        };
        let p = plan(&g, Some(view), SubOpKind::Read, ByteRange::new(10, 4));
        assert_eq!(p.degraded_rows, 0);
        assert_eq!(
            p.ops,
            vec![SubOp {
                device: failed,
                kind: SubOpKind::Read,
                range: ByteRange::new(2, 4),
            }]
        );
    }

    #[test]
    fn degraded_write_on_failed_data_reads_all_survivors_and_rewrites_parity() {
        let g = geom();
        let failed = g.data_device(0, 0);
        let view = DegradedView {
            device: failed,
            rebuilt_rows: 0,
        };
        let p = plan(&g, Some(view), SubOpKind::Write, ByteRange::new(0, 4));
        assert_eq!(p.degraded_rows, 1);
        // Reads on every survivor, full unit.
        let reads: Vec<&SubOp> = p.ops.iter().filter(|o| o.kind == SubOpKind::Read).collect();
        assert_eq!(reads.len(), 3);
        assert!(reads
            .iter()
            .all(|o| o.device != failed && o.range == ByteRange::new(0, 8)));
        // No write to the failed member; parity rewritten whole-unit.
        assert!(p.ops.iter().all(|o| o.device != failed));
        assert!(p.ops.iter().any(|o| o.device == g.parity_device(0)
            && o.kind == SubOpKind::Write
            && o.range == ByteRange::new(0, 8)));
    }

    #[test]
    fn degraded_parity_write_skips_parity_maintenance() {
        let g = geom();
        let parity = g.parity_device(0);
        let view = DegradedView {
            device: parity,
            rebuilt_rows: 0,
        };
        let p = plan(&g, Some(view), SubOpKind::Write, ByteRange::new(2, 4));
        assert!(p.ops.iter().all(|o| o.device != parity));
        assert!(p.ops.iter().all(|o| o.kind == SubOpKind::Write));
        assert_eq!(p.degraded_rows, 0);
    }

    #[test]
    fn free_skips_degraded_units_and_parity() {
        let g = geom();
        let failed = g.data_device(0, 0);
        let view = DegradedView {
            device: failed,
            rebuilt_rows: 0,
        };
        // Free covering only the failed unit plans nothing at all.
        let p = plan(&g, Some(view), SubOpKind::Free, ByteRange::new(0, 8));
        assert!(p.ops.is_empty());
        let healthy = plan(&g, None, SubOpKind::Free, ByteRange::new(0, 24));
        assert_eq!(healthy.ops.len(), 3);
        assert!(healthy
            .ops
            .iter()
            .all(|o| o.kind == SubOpKind::Free && o.device != g.parity_device(0)));
    }

    #[test]
    fn read_specs_match_the_plan() {
        let g = geom();
        let view = DegradedView {
            device: 2,
            rebuilt_rows: 0,
        };
        let range = ByteRange::new(4, 40);
        let p = plan(&g, Some(view), SubOpKind::Write, range);
        for device in 0..g.devices {
            let specs = read_specs(&g, Some(view), SubOpKind::Write, range, device);
            let expect: Vec<ByteRange> = p
                .ops
                .iter()
                .filter(|o| o.device == device && o.kind == SubOpKind::Read)
                .map(|o| o.range)
                .collect();
            assert_eq!(specs, expect, "device {device}");
        }
    }

    #[test]
    fn model_survives_failure_rebuild_and_scrub() {
        let g = geom();
        let rows = 16;
        let mut model = ParityModel::new(g, rows);
        let capacity = rows * g.row_bytes();
        // Seeded churn: overlapping writes across the space.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..200 {
            x = mix(x);
            let offset = x % capacity;
            let len = 1 + mix(x ^ 1) % 64;
            let len = len.min(capacity - offset);
            model.apply_write(ByteRange::new(offset, len), None);
        }
        assert!(model.scrub(None).is_clean());

        // Fail a member: degraded reads still reconstruct the oracle.
        let failed = 1;
        model.fail(failed);
        let view = DegradedView {
            device: failed,
            rebuilt_rows: 0,
        };
        assert!(model.scrub(Some(view)).is_clean());
        for unit in 0..rows * g.data_units() {
            let offset = unit * g.stripe_bytes;
            assert_eq!(
                model.read_word(offset, Some(view)),
                model.expected_word(offset),
                "unit {unit}"
            );
        }

        // Degraded churn keeps the failed member reconstructible.
        for _ in 0..100 {
            x = mix(x);
            let offset = x % capacity;
            let len = 1 + mix(x ^ 2) % 64;
            let len = len.min(capacity - offset);
            model.apply_write(ByteRange::new(offset, len), Some(view));
        }
        assert!(model.scrub(Some(view)).is_clean());

        // Rebuild restores the member bit-identically.
        model.rebuild_rows(failed, 0, rows);
        assert!(model.scrub(None).is_clean());
    }

    #[test]
    fn coalesce_unions_overlapping_reads() {
        let ops = vec![
            SubOp {
                device: 0,
                kind: SubOpKind::Read,
                range: ByteRange::new(4, 8),
            },
            SubOp {
                device: 0,
                kind: SubOpKind::Read,
                range: ByteRange::new(0, 6),
            },
            SubOp {
                device: 0,
                kind: SubOpKind::Write,
                range: ByteRange::new(0, 4),
            },
        ];
        let merged = coalesce(ops);
        assert_eq!(
            merged,
            vec![
                SubOp {
                    device: 0,
                    kind: SubOpKind::Read,
                    range: ByteRange::new(0, 12),
                },
                SubOp {
                    device: 0,
                    kind: SubOpKind::Write,
                    range: ByteRange::new(0, 4),
                },
            ]
        );
    }
}
