//! Rebuild QoS: a deterministic token-bucket bandwidth budget with
//! host-pressure backoff for online rebuild traffic.
//!
//! Rebuild copy-back competes with host I/O on the surviving members; an
//! unthrottled rebuild minimizes the window of reduced redundancy but
//! wrecks the survivors' tail latency.  [`RebuildGovernor`] lets the
//! caller pick the trade: each rebuild chunk is *admitted* at a sim time
//! no earlier than its request time, delayed until the token bucket holds
//! enough bytes (and further, when the host's per-initiator queue depth is
//! at or above the pressure threshold, by a fixed backoff so rebuild
//! yields to foreground bursts).
//!
//! All arithmetic is integer nanoseconds/bytes — admission times are a
//! pure function of the call sequence, preserving the fleet's determinism
//! contract.

use ossd_sim::{SimDuration, SimTime};

/// Rebuild bandwidth/backoff policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebuildQos {
    /// Token refill rate in bytes of copy-back per simulated second;
    /// `None` disables throttling entirely.
    pub bytes_per_sec: Option<u64>,
    /// Bucket capacity: how many bytes of budget can accumulate while
    /// rebuild is idle (bounds the burst after a quiet period).
    pub burst_bytes: u64,
    /// Host-pressure threshold: when the last serve session's maximum
    /// per-initiator command count is at or above this, rebuild backs
    /// off.  `None` disables pressure backoff.
    pub pressure_depth: Option<u32>,
    /// How long an admission is postponed per pressure event.
    pub backoff: SimDuration,
}

impl RebuildQos {
    /// No throttling, no backoff: rebuild chunks are admitted on request.
    pub fn unthrottled() -> Self {
        RebuildQos {
            bytes_per_sec: None,
            burst_bytes: 0,
            pressure_depth: None,
            backoff: SimDuration::ZERO,
        }
    }

    /// A bandwidth budget of `bytes_per_sec`, with a default burst of a
    /// quarter-second of budget (at least 64 KiB).
    pub fn limited(bytes_per_sec: u64) -> Self {
        RebuildQos {
            bytes_per_sec: Some(bytes_per_sec),
            burst_bytes: (bytes_per_sec / 4).max(64 * 1024),
            pressure_depth: None,
            backoff: SimDuration::ZERO,
        }
    }

    /// Overrides the bucket capacity.
    pub fn with_burst(mut self, burst_bytes: u64) -> Self {
        self.burst_bytes = burst_bytes;
        self
    }

    /// Enables host-pressure backoff: admissions requested while the
    /// per-initiator depth is `>= depth` are postponed by `backoff`.
    pub fn with_backoff(mut self, depth: u32, backoff: SimDuration) -> Self {
        self.pressure_depth = Some(depth);
        self.backoff = backoff;
        self
    }
}

impl Default for RebuildQos {
    fn default() -> Self {
        RebuildQos::unthrottled()
    }
}

/// The stateful admission controller for one fleet's rebuild traffic.
#[derive(Clone, Debug)]
pub struct RebuildGovernor {
    qos: RebuildQos,
    /// Bytes currently in the bucket.
    tokens: u64,
    /// When the bucket was last refilled (admission clock; monotone).
    refilled: SimTime,
}

impl RebuildGovernor {
    /// A governor starting with a full bucket.
    pub fn new(qos: RebuildQos) -> Self {
        RebuildGovernor {
            qos,
            tokens: qos.burst_bytes,
            refilled: SimTime::ZERO,
        }
    }

    /// The active policy.
    pub fn qos(&self) -> &RebuildQos {
        &self.qos
    }

    /// Admits a `bytes`-sized rebuild chunk requested at `at` while the
    /// host shows `pressure` (max per-initiator commands in the last serve
    /// session).  Returns the admission time: `at`, pushed later by
    /// pressure backoff and by token-bucket starvation.  The bucket may be
    /// driven below a full chunk (chunks larger than the burst simply wait
    /// proportionally), so long-run admitted bandwidth never exceeds the
    /// budget.
    pub fn admit(&mut self, at: SimTime, bytes: u64, pressure: u32) -> SimTime {
        let mut t = at.max(self.refilled);
        if let Some(depth) = self.qos.pressure_depth {
            if pressure >= depth {
                t = t.saturating_add(self.qos.backoff);
            }
        }
        let Some(rate) = self.qos.bytes_per_sec else {
            return t;
        };
        // Refill for the elapsed admission-clock time, capped at the burst.
        let elapsed = t.saturating_since(self.refilled).as_nanos() as u128;
        let refill = (elapsed * rate as u128 / 1_000_000_000) as u64;
        self.tokens = self.tokens.saturating_add(refill).min(self.qos.burst_bytes);
        self.refilled = t;
        if self.tokens >= bytes {
            self.tokens -= bytes;
            return t;
        }
        // Wait until the deficit refills, then spend the whole chunk.
        let deficit = (bytes - self.tokens) as u128;
        let wait = (deficit * 1_000_000_000).div_ceil(rate as u128) as u64;
        self.tokens = 0;
        let admitted = t.saturating_add(SimDuration::from_nanos(wait));
        self.refilled = admitted;
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_admits_on_request() {
        let mut gov = RebuildGovernor::new(RebuildQos::unthrottled());
        let at = SimTime::from_micros(5);
        assert_eq!(gov.admit(at, 1 << 30, 100), at);
    }

    #[test]
    fn budget_paces_sustained_chunks_at_the_configured_rate() {
        // 1 MiB/s, tiny burst: 10 chunks of 64 KiB must span ~10 * 64 ms.
        let qos = RebuildQos::limited(1 << 20).with_burst(64 * 1024);
        let mut gov = RebuildGovernor::new(qos);
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            last = gov.admit(last, 64 * 1024, 0);
        }
        let elapsed = last.saturating_since(SimTime::ZERO).as_secs_f64();
        // First chunk rides the initial burst; nine refills of 1/16 s.
        assert!((elapsed - 9.0 / 16.0).abs() < 1e-6, "elapsed {elapsed} s");
    }

    #[test]
    fn idle_time_refills_at_most_the_burst() {
        let qos = RebuildQos::limited(1 << 20).with_burst(128 * 1024);
        let mut gov = RebuildGovernor::new(qos);
        // Drain the bucket, then go idle for 10 s: only 128 KiB accrues.
        gov.admit(SimTime::ZERO, 128 * 1024, 0);
        let at = SimTime::from_micros(10_000_000);
        assert_eq!(gov.admit(at, 128 * 1024, 0), at);
        // The next chunk immediately waits a full refill again.
        let next = gov.admit(at, 128 * 1024, 0);
        assert!(next > at);
    }

    #[test]
    fn pressure_backoff_postpones_admission() {
        let qos = RebuildQos::unthrottled().with_backoff(8, SimDuration::from_micros(500));
        let mut gov = RebuildGovernor::new(qos);
        let at = SimTime::from_micros(100);
        assert_eq!(gov.admit(at, 4096, 7), at);
        assert_eq!(
            gov.admit(at, 4096, 8),
            at.saturating_add(SimDuration::from_micros(500))
        );
    }

    #[test]
    fn admission_clock_is_monotone() {
        let qos = RebuildQos::limited(1 << 20).with_burst(64 * 1024);
        let mut gov = RebuildGovernor::new(qos);
        let t1 = gov.admit(SimTime::from_micros(1000), 64 * 1024, 0);
        // A request at an earlier sim time cannot be admitted before the
        // bucket's clock.
        let t2 = gov.admit(SimTime::from_micros(0), 64 * 1024, 0);
        assert!(t2 >= t1);
    }
}
