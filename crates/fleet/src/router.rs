//! Address routing: mapping the fleet's exported byte space onto member
//! devices.
//!
//! Striping uses the usual RAID-0 arithmetic.  Stripe `s` of the exported
//! space lives on device `s % devices` at device-local stripe slot
//! `s / devices`.  A key property this module relies on (and tests): the
//! restriction of a contiguous exported byte range to any one device is
//! itself contiguous in that device's local space, because the stripes a
//! device owns occupy consecutive local slots and only the range's first
//! and last stripes can be partial.  Fan-out therefore produces **at most
//! one sub-range per device per command**, which keeps the sub-command
//! id space simple (one sub-command per (command, device) pair).

use ossd_block::ByteRange;

/// One device's share of an exported byte range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceSlice {
    /// Member device index.
    pub device: usize,
    /// Device-local byte range.
    pub range: ByteRange,
}

/// Splits an exported byte range across `devices` striped devices with the
/// given stripe unit.  Returns the per-device slices in ascending device
/// order; devices the range does not touch are absent.
///
/// The union of the returned slices covers exactly `range.len` bytes.
pub fn split_striped(range: ByteRange, devices: usize, stripe_bytes: u64) -> Vec<DeviceSlice> {
    assert!(devices > 0 && stripe_bytes > 0 && range.len > 0);
    let d = devices as u64;
    let s = stripe_bytes;
    let first_stripe = range.offset / s;
    let last_stripe = (range.end() - 1) / s;
    let mut slices = Vec::with_capacity(devices.min((last_stripe - first_stripe + 1) as usize));
    for device in 0..devices {
        let dev = device as u64;
        // First and last stripes of the range owned by this device.
        let first = first_stripe + (dev + d - first_stripe % d) % d;
        if first > last_stripe {
            continue;
        }
        let last = last_stripe - (last_stripe + d - dev) % d;
        debug_assert!(last >= first_stripe && last % d == dev);
        // Local addresses: stripe `s` sits at local slot `s / d`.  Only the
        // range's first and last stripes can be partial; everything between
        // is full, so the local image is one contiguous run.
        let lo = (first / d) * s
            + if first == first_stripe {
                range.offset % s
            } else {
                0
            };
        let hi = (last / d) * s
            + if last == last_stripe {
                (range.end() - 1) % s + 1
            } else {
                s
            };
        slices.push(DeviceSlice {
            device,
            range: ByteRange::new(lo, hi - lo),
        });
    }
    slices
}

/// The stripe-aligned capacity each member device contributes to a striped
/// fleet: full stripe slots only, so every exported stripe maps inside the
/// device.
pub fn striped_device_slots(device_capacity: u64, stripe_bytes: u64) -> u64 {
    device_capacity / stripe_bytes
}

/// Exported capacity of a striped fleet.
pub fn striped_capacity(device_capacity: u64, devices: usize, stripe_bytes: u64) -> u64 {
    striped_device_slots(device_capacity, stripe_bytes) * stripe_bytes * devices as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_len(slices: &[DeviceSlice]) -> u64 {
        slices.iter().map(|s| s.range.len).sum()
    }

    #[test]
    fn single_stripe_range_hits_one_device() {
        let slices = split_striped(ByteRange::new(8192 * 3 + 100, 200), 4, 8192);
        assert_eq!(
            slices,
            vec![DeviceSlice {
                device: 3,
                range: ByteRange::new(100, 200),
            }]
        );
    }

    #[test]
    fn partial_head_and_tail_stay_contiguous_per_device() {
        // Stripe 8 bytes, 2 devices, range bytes 4..24 (stripes 0,1,2).
        let slices = split_striped(ByteRange::new(4, 20), 2, 8);
        assert_eq!(
            slices,
            vec![
                DeviceSlice {
                    device: 0,
                    // Stripe 0 tail (local 4..8) + stripe 2 (local 8..16).
                    range: ByteRange::new(4, 12),
                },
                DeviceSlice {
                    device: 1,
                    // Stripe 1 in full at local slot 0.
                    range: ByteRange::new(0, 8),
                },
            ]
        );
        assert_eq!(total_len(&slices), 20);
    }

    #[test]
    fn full_device_sweep_covers_every_device_equally() {
        let devices = 4;
        let stripe = 4096;
        let len = stripe * devices as u64 * 8;
        let slices = split_striped(ByteRange::new(0, len), devices, stripe);
        assert_eq!(slices.len(), devices);
        for (d, slice) in slices.iter().enumerate() {
            assert_eq!(slice.device, d);
            assert_eq!(slice.range, ByteRange::new(0, stripe * 8));
        }
    }

    #[test]
    fn split_conserves_bytes_across_many_shapes() {
        // Brute-force cross-check against a byte-by-byte reference map.
        for devices in 1..=4usize {
            for &(offset, len) in &[
                (0u64, 1u64),
                (7, 9),
                (8, 8),
                (15, 2),
                (0, 64),
                (3, 61),
                (30, 11),
            ] {
                let stripe = 8;
                let slices = split_striped(ByteRange::new(offset, len), devices, stripe);
                assert_eq!(total_len(&slices), len, "d={devices} o={offset} l={len}");
                // Reference: walk every byte, count per device and check the
                // byte falls inside the reported local range.
                let mut counts = vec![0u64; devices];
                for x in offset..offset + len {
                    let s = x / stripe;
                    let dev = (s % devices as u64) as usize;
                    let local = (s / devices as u64) * stripe + x % stripe;
                    counts[dev] += 1;
                    let slice = slices
                        .iter()
                        .find(|sl| sl.device == dev)
                        .unwrap_or_else(|| panic!("byte {x} lost (device {dev})"));
                    assert!(
                        local >= slice.range.offset && local < slice.range.end(),
                        "byte {x} maps to local {local} outside {:?}",
                        slice.range
                    );
                }
                for slice in &slices {
                    assert_eq!(counts[slice.device], slice.range.len);
                }
            }
        }
    }

    #[test]
    fn striped_capacity_floors_to_whole_stripes() {
        assert_eq!(striped_capacity(100, 3, 8), 12 * 8 * 3);
        assert_eq!(striped_capacity(64, 2, 8), 64 * 2);
    }
}
