//! Fleet-level telemetry: an aggregate metrics time-series and a
//! namespaced multi-device Chrome-trace export.
//!
//! Per-device traces stay on each member's own [`Recorder`] (attach them
//! with [`crate::Fleet::attach_recorders`]); this module aggregates across
//! the array — total host bandwidth, per-device fan-out depth and rebuild
//! progress — and renders all member traces into one Perfetto document
//! with tracks namespaced `dev{N}/...`.

use ossd_sim::SimTime;
use ossd_telemetry::{to_chrome_trace_multi, Recorder, TraceEvent};
use std::sync::{Arc, Mutex};

/// One fleet-level metrics sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetSample {
    /// Sim time of the sample.
    pub at: SimTime,
    /// Cumulative host bytes moved (reads + writes) summed over devices.
    pub host_bytes_total: u64,
    /// Cumulative host bytes moved per device (0 for failed slots).
    pub device_bytes: Vec<u64>,
    /// Sub-commands fanned to each device in the most recent serve session
    /// (a per-device queue-depth signal).
    pub device_depth: Vec<u32>,
    /// Cumulative bytes copied onto rebuild targets so far.
    pub rebuilt_bytes: u64,
    /// Cumulative host reads served by XOR reconstruction (parity fleets;
    /// 0 otherwise).
    pub degraded_reads: u64,
    /// Cumulative uncorrectable sub-reads transparently repaired from
    /// parity (parity fleets; 0 otherwise).
    pub repaired_reads: u64,
}

/// An append-only series of [`FleetSample`]s with CSV export.
#[derive(Clone, Debug, Default)]
pub struct FleetSeries {
    samples: Vec<FleetSample>,
}

impl FleetSeries {
    /// An empty series.
    pub fn new() -> Self {
        FleetSeries::default()
    }

    /// Appends one sample.
    pub fn push(&mut self, sample: FleetSample) {
        self.samples.push(sample);
    }

    /// The recorded samples, in push order.
    pub fn samples(&self) -> &[FleetSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders the series as CSV: time, aggregate bandwidth since the
    /// previous sample, cumulative totals, then one depth and one
    /// cumulative-MB column per device.
    pub fn to_csv(&self) -> String {
        let devices = self.samples.first().map_or(0, |s| s.device_bytes.len());
        let mut out = String::from(
            "time_us,aggregate_mb_s,total_mb,rebuilt_mb,degraded_reads,repaired_reads",
        );
        for d in 0..devices {
            out.push_str(&format!(",dev{d}_depth,dev{d}_mb"));
        }
        out.push('\n');
        let mut prev: Option<&FleetSample> = None;
        for sample in &self.samples {
            let dt_s = prev.map_or(0.0, |p| {
                sample.at.saturating_since(p.at).as_nanos() as f64 / 1e9
            });
            let delta_bytes =
                prev.map_or(0, |p| sample.host_bytes_total - p.host_bytes_total) as f64;
            let bw_mb_s = if dt_s > 0.0 {
                delta_bytes / (1024.0 * 1024.0) / dt_s
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:.3},{bw_mb_s:.3},{:.3},{:.3},{},{}",
                sample.at.as_nanos() as f64 / 1_000.0,
                sample.host_bytes_total as f64 / (1024.0 * 1024.0),
                sample.rebuilt_bytes as f64 / (1024.0 * 1024.0),
                sample.degraded_reads,
                sample.repaired_reads,
            ));
            for d in 0..devices {
                out.push_str(&format!(
                    ",{},{:.3}",
                    sample.device_depth.get(d).copied().unwrap_or(0),
                    sample.device_bytes.get(d).copied().unwrap_or(0) as f64 / (1024.0 * 1024.0),
                ));
            }
            out.push('\n');
            prev = Some(sample);
        }
        out
    }
}

/// Renders every device recorder's trace into one Chrome-trace document
/// with per-device processes and `dev{N}/`-prefixed track names (see
/// [`to_chrome_trace_multi`]).  Recorders are indexed by device, as
/// returned by [`crate::Fleet::attach_recorders`].
pub fn fleet_chrome_trace(recorders: &[Arc<Mutex<Recorder>>]) -> String {
    let per_device: Vec<(String, Vec<TraceEvent>)> = recorders
        .iter()
        .enumerate()
        .map(|(i, recorder)| {
            let events = recorder.lock().unwrap().events().to_vec();
            (format!("dev{i}"), events)
        })
        .collect();
    let refs: Vec<(&str, &[TraceEvent])> = per_device
        .iter()
        .map(|(label, events)| (label.as_str(), events.as_slice()))
        .collect();
    to_chrome_trace_multi(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_us: u64, total: u64, per_dev: Vec<u64>, rebuilt: u64) -> FleetSample {
        FleetSample {
            at: SimTime::from_micros(at_us),
            host_bytes_total: total,
            device_bytes: per_dev,
            device_depth: vec![1, 2],
            rebuilt_bytes: rebuilt,
            degraded_reads: 0,
            repaired_reads: 0,
        }
    }

    #[test]
    fn csv_reports_delta_bandwidth_and_per_device_columns() {
        let mut series = FleetSeries::new();
        series.push(sample(0, 0, vec![0, 0], 0));
        // 2 MiB moved in 1 second → 2 MB/s.
        series.push(sample(1_000_000, 2 << 20, vec![1 << 20, 1 << 20], 1 << 20));
        let csv = series.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_us,aggregate_mb_s,total_mb,rebuilt_mb,degraded_reads,repaired_reads,\
             dev0_depth,dev0_mb,dev1_depth,dev1_mb"
        );
        assert_eq!(
            lines.next().unwrap(),
            "0.000,0.000,0.000,0.000,0,0,1,0.000,2,0.000"
        );
        assert_eq!(
            lines.next().unwrap(),
            "1000000.000,2.000,2.000,1.000,0,0,1,1.000,2,1.000"
        );
    }

    #[test]
    fn empty_series_renders_header_only() {
        let csv = FleetSeries::new().to_csv();
        assert_eq!(
            csv,
            "time_us,aggregate_mb_s,total_mb,rebuilt_mb,degraded_reads,repaired_reads\n"
        );
    }
}
