//! Fleet telemetry neutrality: attaching per-device recorders to a fleet
//! must not change any simulation result — completions, merged logs or
//! per-device FTL statistics — and the multi-device Chrome-trace export
//! must namespace every device's tracks.

use ossd_block::{
    BlockDevice, ByteRange, Completion, HostCommand, HostInterface, HostQueue, WriteHint,
};
use ossd_flash::{FlashGeometry, FlashTiming, ReliabilityConfig};
use ossd_fleet::{fleet_chrome_trace, Fleet, FleetConfig, FleetSubCompletion};
use ossd_ftl::{FtlConfig, FtlStats};
use ossd_gc::BackgroundGcConfig;
use ossd_sim::{SimDuration, SimRng, SimTime};
use ossd_ssd::{MappingKind, SchedulerKind, SsdConfig};
use ossd_telemetry::{BlameCat, RecorderConfig};

const PAGE: u32 = 4096;
const INITIATORS: usize = 2;

fn fleet_config() -> FleetConfig {
    let device = SsdConfig {
        name: "fleet-neutrality".to_string(),
        geometry: FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_bytes: PAGE,
        },
        timing: FlashTiming::slc(),
        mapping: MappingKind::PageMapped,
        ftl: FtlConfig::default()
            .with_overprovisioning(0.12)
            .with_watermarks(0.10, 0.04),
        reliability: ReliabilityConfig::wearout(0xD00D_5EED),
        background_gc: Some(BackgroundGcConfig::default()),
        gangs: 1,
        scheduler: SchedulerKind::Fcfs,
        queue_depth: 4,
        controller_overhead: SimDuration::from_micros(10),
        random_penalty: SimDuration::ZERO,
        sequential_prefetch: false,
        ram_bytes_per_sec: 200_000_000,
    };
    FleetConfig::striped(device, 3, PAGE as u64)
        .with_threads(3)
        .with_seed(0xF1EE_5EED)
}

struct RunResult {
    completions: Vec<Vec<Completion>>,
    merged: Vec<FleetSubCompletion>,
    ftl_stats: Vec<FtlStats>,
}

fn run_workload(fleet: &mut Fleet) -> RunResult {
    let page = PAGE as u64;
    let logical_pages = fleet.capacity_bytes() / page;
    let mut queues: Vec<HostQueue> = (0..INITIATORS).map(|_| HostQueue::new()).collect();
    let mut completions: Vec<Vec<Completion>> = vec![Vec::new(); INITIATORS];
    let mut merged = Vec::new();
    let mut rng = SimRng::seed_from_u64(0x5EED_CAFE);
    let mut at = SimTime::ZERO;
    let mut id = 0u64;
    // Fill, then churn past the watermarks, in sessions of 128.
    let total_ops = logical_pages * 3;
    let mut issued = 0u64;
    while issued < total_ops {
        let batch = 128.min(total_ops - issued);
        for k in 0..batch {
            let arrival = at + SimDuration::from_micros(k * 2);
            let command = if issued + k < logical_pages {
                HostCommand::Write {
                    range: ByteRange::new((issued + k) * page, page),
                    hint: WriteHint::default(),
                }
            } else {
                let pages = 1 + rng.next_u64_below(3);
                let start = rng.next_u64_below(logical_pages - pages);
                let range = ByteRange::new(start * page, pages * page);
                if rng.chance(0.25) {
                    HostCommand::Read { range }
                } else {
                    HostCommand::Write {
                        range,
                        hint: WriteHint::default(),
                    }
                }
            };
            queues[k as usize % INITIATORS].submit(id, command, arrival);
            id += 1;
        }
        fleet.serve(&mut queues).expect("session serves cleanly");
        merged.extend_from_slice(fleet.last_session_log());
        let mut last = at;
        for (i, queue) in queues.iter_mut().enumerate() {
            for c in queue.drain_completions() {
                last = last.max(c.finish);
                completions[i].push(c);
            }
        }
        at = last + SimDuration::from_micros(10);
        issued += batch;
    }
    fleet.sample_metrics(at);
    RunResult {
        completions,
        merged,
        ftl_stats: (0..fleet.devices())
            .map(|i| fleet.device_ftl_stats(i).expect("live"))
            .collect(),
    }
}

#[test]
fn recorder_attached_fleet_run_is_neutral_and_namespaced() {
    // Detached reference run.
    let mut detached = Fleet::new(fleet_config()).expect("fleet");
    let reference = run_workload(&mut detached);

    // Recorder-attached run of the identical fleet.
    let mut attached = Fleet::new(fleet_config()).expect("fleet");
    let recorders = attached.attach_recorders(RecorderConfig::default());
    assert_eq!(recorders.len(), 3);
    let observed = run_workload(&mut attached);

    assert_eq!(
        reference.completions, observed.completions,
        "recorders changed the completion schedules"
    );
    assert_eq!(
        reference.merged, observed.merged,
        "recorders changed the merged sub-completion log"
    );
    assert_eq!(
        reference.ftl_stats, observed.ftl_stats,
        "recorders changed per-device FTL statistics"
    );

    // Every device recorded activity.
    for (i, recorder) in recorders.iter().enumerate() {
        let r = recorder.lock().unwrap();
        assert!(!r.events().is_empty(), "device {i} recorded no events");
    }

    // The merged export namespaces tracks per device.
    let trace = fleet_chrome_trace(&recorders);
    for dev in ["dev0", "dev1", "dev2"] {
        assert!(
            trace.contains(&format!("\"name\":\"{dev}/element 0\"")),
            "trace lacks a namespaced element track for {dev}"
        );
        assert!(
            trace.contains(&format!("\"name\":\"{dev}\"")),
            "trace lacks the {dev} process"
        );
    }

    // The fleet-level series captured the aggregate sample.
    assert_eq!(attached.series().len(), 1);
    let sample = &attached.series().samples()[0];
    assert_eq!(sample.device_bytes.len(), 3);
    assert!(sample.host_bytes_total > 0);
    assert!(!attached.series().to_csv().is_empty());
}

#[test]
fn attribution_enabled_fleet_run_is_neutral_and_merges_records() {
    // Detached reference run.
    let mut detached = Fleet::new(fleet_config()).expect("fleet");
    let reference = run_workload(&mut detached);

    // Attribution-enabled run of the identical fleet: blame accounting
    // must not move a single sub-completion on any member.
    let mut attributed = Fleet::new(fleet_config()).expect("fleet");
    attributed.enable_attribution();
    assert!(attributed.attribution_enabled());
    let observed = run_workload(&mut attributed);

    assert_eq!(
        reference.completions, observed.completions,
        "attribution changed the completion schedules"
    );
    assert_eq!(
        reference.merged, observed.merged,
        "attribution changed the merged sub-completion log"
    );
    assert_eq!(
        reference.ftl_stats, observed.ftl_stats,
        "attribution changed per-device FTL statistics"
    );

    // One record per sub-completion, drained in the canonical merged
    // order, every one summing exactly to its end-to-end latency, with
    // the workload's forced cleaning visible as GC blame.
    let records = attributed.take_blame_records();
    assert_eq!(
        records.len(),
        reference.merged.len(),
        "one blame record per merged sub-completion"
    );
    let mut devices_seen = [false; 3];
    let mut gc_blamed = 0u64;
    for window in records.windows(2) {
        let key = |(device, r): &(usize, _)| {
            let r: &ossd_telemetry::BlameRecord = r;
            (r.finish, *device, r.initiator, r.id)
        };
        assert!(key(&window[0]) <= key(&window[1]), "records out of order");
    }
    for (device, r) in &records {
        devices_seen[*device] = true;
        assert!(
            r.is_exact(),
            "device {device}: blame components sum to {} ns but command {} took {} ns",
            r.total_nanos(),
            r.id,
            r.finish.saturating_since(r.arrival).as_nanos()
        );
        gc_blamed += r.breakdown.get(BlameCat::GcWait);
    }
    assert!(
        devices_seen.iter().all(|&d| d),
        "a member produced no records"
    );
    assert!(gc_blamed > 0, "no latency blamed on GC across the fleet");
    // The drain is destructive: a second take returns nothing new.
    assert!(attributed.take_blame_records().is_empty());
}
