//! A vendored fixed-size bitset.
//!
//! The FTL tracks which physical pages the *host* freed (informed
//! cleaning's bookkeeping, §3.5) keyed by physical page number.  A
//! `HashSet<u64>` put a SipHash computation and a possible rehash on the
//! free-hint path of every write; physical page numbers are dense and
//! bounded by the geometry, so a flat bitset — one `u64` word per 64 pages,
//! sized once at construction — does the same job with two shifts and a
//! mask.  The workspace builds hermetically with no external crates, so
//! this is hand-rolled rather than pulled from `fixedbitset`.

/// A fixed-capacity set of `u64` keys in `[0, capacity)`, one bit each.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixedBitset {
    words: Vec<u64>,
    /// Number of set bits (kept so emptiness/cardinality are O(1)).
    len: u64,
}

impl FixedBitset {
    /// An empty set over keys `0..capacity`.
    pub fn with_capacity(capacity: u64) -> Self {
        FixedBitset {
            words: vec![0; capacity.div_ceil(64) as usize],
            len: 0,
        }
    }

    /// Number of keys the set can hold.
    pub fn capacity(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    /// Number of keys currently in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(key: u64) -> (usize, u64) {
        ((key >> 6) as usize, 1u64 << (key & 63))
    }

    /// Inserts `key`; returns `true` when it was not already present.
    ///
    /// # Panics
    /// Panics when `key` is outside the capacity fixed at construction.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        let (word, mask) = Self::split(key);
        let w = &mut self.words[word];
        let newly = *w & mask == 0;
        *w |= mask;
        self.len += newly as u64;
        newly
    }

    /// Removes `key`; returns `true` when it was present.
    ///
    /// # Panics
    /// Panics when `key` is outside the capacity fixed at construction.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        let (word, mask) = Self::split(key);
        let w = &mut self.words[word];
        let present = *w & mask != 0;
        *w &= !mask;
        self.len -= present as u64;
        present
    }

    /// Whether `key` is in the set (keys beyond the capacity are absent).
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let (word, mask) = Self::split(key);
        self.words.get(word).map(|w| w & mask != 0).unwrap_or(false)
    }

    /// Removes every key.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_round_trip() {
        let mut s = FixedBitset::with_capacity(200);
        assert!(s.is_empty());
        assert!(s.capacity() >= 200);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        // Re-inserting reports "already present".
        assert!(!s.insert(63));
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(1));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = FixedBitset::with_capacity(64);
        assert!(!s.contains(1_000_000));
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = FixedBitset::with_capacity(128);
        for k in (0..128).step_by(3) {
            s.insert(k);
        }
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic]
    fn insert_beyond_capacity_panics() {
        let mut s = FixedBitset::with_capacity(64);
        s.insert(64);
    }
}
