//! FTL configuration: over-provisioning, cleaning policy and wear-leveling.
//!
//! # Cleaning-policy knobs
//!
//! Three independent knobs shape cleaning behaviour:
//!
//! * [`FtlConfig::cleaning_policy`] picks the *victim-selection* policy
//!   (which block is reclaimed next) from [`CleaningPolicyKind`]:
//!   greedy, cost-benefit, cost-age or windowed-greedy.
//! * [`FtlConfig::cleaning_mode`] picks the *trigger* behaviour with
//!   respect to request priorities (§3.6): priority-agnostic cleaning
//!   starts at the low watermark; priority-aware cleaning postpones until
//!   the critical watermark while high-priority requests are outstanding.
//! * The watermarks themselves ([`FtlConfig::gc_low_watermark`],
//!   [`FtlConfig::gc_critical_watermark`]) say *when* cleaning runs.
//!
//! Background (idle-window) cleaning is a device-level concern and is
//! configured on `SsdConfig` (`ossd-ssd`), not here: the FTL exposes the
//! mechanism (`Ftl::background_clean`), the device decides when idle
//! windows are long enough to use it.

use ossd_gc::CleaningPolicyKind;
use ossd_mapcache::MapCacheConfig;

use crate::error::FtlError;

/// How garbage collection reacts to outstanding priority requests (§3.6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CleaningMode {
    /// Cleaning starts whenever free space drops below the low watermark,
    /// regardless of outstanding requests.  This is the paper's default
    /// scheme (and the only option when the host conveys no priorities).
    #[default]
    PriorityAgnostic,
    /// Cleaning is postponed while priority requests are outstanding, until
    /// free space falls below the critical watermark.
    PriorityAware,
}

/// Explicit wear-leveling configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WearLevelConfig {
    /// Trigger migration when the difference between the most- and
    /// least-erased block exceeds this many cycles.
    pub max_erase_spread: u32,
}

impl Default for WearLevelConfig {
    fn default() -> Self {
        WearLevelConfig {
            max_erase_spread: 32,
        }
    }
}

/// Configuration shared by both FTLs.
#[derive(Clone, Debug, PartialEq)]
pub struct FtlConfig {
    /// Fraction of raw capacity withheld from the host (over-provisioning).
    /// The withheld space is what cleaning uses to stay ahead of writes.
    pub overprovisioning: f64,
    /// Cleaning starts when the fraction of free physical pages drops below
    /// this value (the paper's QoS experiment uses 5%).
    pub gc_low_watermark: f64,
    /// Under priority-aware cleaning, cleaning may be postponed until free
    /// space falls below this value (the paper uses 2%).
    pub gc_critical_watermark: f64,
    /// Cleaning trigger behaviour with respect to request priorities.
    pub cleaning_mode: CleaningMode,
    /// Victim-selection policy used by cleaning (foreground and
    /// background).  [`CleaningPolicyKind::Greedy`] reproduces the
    /// historical hard-coded cleaner bit-for-bit; the other kinds trade
    /// extra bookkeeping for lower write amplification under skewed
    /// workloads ([`CleaningPolicyKind::CostBenefit`],
    /// [`CleaningPolicyKind::WindowedGreedy`]) or a tighter erase spread
    /// ([`CleaningPolicyKind::CostAge`]).
    pub cleaning_policy: CleaningPolicyKind,
    /// Whether the FTL uses free-page (TRIM/OSD-delete) notifications.  When
    /// `false`, the FTL retains "the most recent version of all the logical
    /// pages, including those that have been released by the file system"
    /// (§3.5) — the paper's default SSD.
    pub honor_free: bool,
    /// Optional explicit wear-leveling.
    pub wear_leveling: Option<WearLevelConfig>,
    /// Number of erased blocks per element reserved exclusively for cleaning
    /// so that GC can always make forward progress.
    pub gc_reserved_blocks: u32,
    /// Demand-paged mapping (page-mapped FTL only): `Some` stores the
    /// translation table in on-flash translation pages behind an
    /// SRAM-budgeted map cache (`ossd-mapcache`).  A finite entry budget
    /// reserves map-area capacity out of the exported space and issues
    /// real `MapRead`/`MapWrite` flash ops for misses and dirty-entry
    /// writebacks; an infinite budget (`entry_budget: None`) is bit-for-bit
    /// identical to the resident table.  `None` (the default) keeps the
    /// historical fully resident map.
    pub map_cache: Option<MapCacheConfig>,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            overprovisioning: 0.10,
            gc_low_watermark: 0.05,
            gc_critical_watermark: 0.02,
            cleaning_mode: CleaningMode::PriorityAgnostic,
            cleaning_policy: CleaningPolicyKind::Greedy,
            honor_free: false,
            wear_leveling: Some(WearLevelConfig::default()),
            gc_reserved_blocks: 1,
            map_cache: None,
        }
    }
}

impl FtlConfig {
    /// The paper's default SSD: no free-page information, priority-agnostic
    /// cleaning.
    pub fn paper_default() -> Self {
        FtlConfig::default()
    }

    /// An informed-cleaning FTL (uses free-page notifications, §3.5).
    pub fn informed() -> Self {
        FtlConfig {
            honor_free: true,
            ..FtlConfig::default()
        }
    }

    /// A priority-aware cleaning FTL with the paper's 5%/2% watermarks
    /// (§3.6).
    pub fn priority_aware() -> Self {
        FtlConfig {
            cleaning_mode: CleaningMode::PriorityAware,
            gc_low_watermark: 0.05,
            gc_critical_watermark: 0.02,
            ..FtlConfig::default()
        }
    }

    /// Returns the configuration with a different over-provisioning factor.
    pub fn with_overprovisioning(mut self, op: f64) -> Self {
        self.overprovisioning = op;
        self
    }

    /// Returns the configuration with free-page information enabled or
    /// disabled.
    pub fn with_honor_free(mut self, honor: bool) -> Self {
        self.honor_free = honor;
        self
    }

    /// Returns the configuration with the given cleaning mode.
    pub fn with_cleaning_mode(mut self, mode: CleaningMode) -> Self {
        self.cleaning_mode = mode;
        self
    }

    /// Returns the configuration with the given victim-selection policy.
    pub fn with_cleaning_policy(mut self, policy: CleaningPolicyKind) -> Self {
        self.cleaning_policy = policy;
        self
    }

    /// Returns the configuration with the given watermarks.
    pub fn with_watermarks(mut self, low: f64, critical: f64) -> Self {
        self.gc_low_watermark = low;
        self.gc_critical_watermark = critical;
        self
    }

    /// Returns the configuration with wear-leveling disabled.
    pub fn without_wear_leveling(mut self) -> Self {
        self.wear_leveling = None;
        self
    }

    /// Returns the configuration with demand-paged mapping enabled.
    pub fn with_map_cache(mut self, map_cache: MapCacheConfig) -> Self {
        self.map_cache = Some(map_cache);
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), FtlError> {
        if !(0.0..0.9).contains(&self.overprovisioning) {
            return Err(FtlError::InvalidConfig {
                reason: format!(
                    "overprovisioning {} must be in [0, 0.9)",
                    self.overprovisioning
                ),
            });
        }
        if !(0.0..1.0).contains(&self.gc_low_watermark)
            || !(0.0..1.0).contains(&self.gc_critical_watermark)
        {
            return Err(FtlError::InvalidConfig {
                reason: "watermarks must be in [0, 1)".to_string(),
            });
        }
        if self.gc_critical_watermark > self.gc_low_watermark {
            return Err(FtlError::InvalidConfig {
                reason: format!(
                    "critical watermark {} must not exceed low watermark {}",
                    self.gc_critical_watermark, self.gc_low_watermark
                ),
            });
        }
        if self.gc_reserved_blocks == 0 {
            return Err(FtlError::InvalidConfig {
                reason: "at least one block per element must be reserved for cleaning".to_string(),
            });
        }
        if let Some(map_cache) = &self.map_cache {
            map_cache
                .validate()
                .map_err(|reason| FtlError::InvalidConfig { reason })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_uninformed() {
        let c = FtlConfig::default();
        c.validate().unwrap();
        assert!(!c.honor_free);
        assert_eq!(c.cleaning_mode, CleaningMode::PriorityAgnostic);
        assert!(c.wear_leveling.is_some());
    }

    #[test]
    fn presets_match_paper_settings() {
        let informed = FtlConfig::informed();
        assert!(informed.honor_free);
        informed.validate().unwrap();

        let aware = FtlConfig::priority_aware();
        assert_eq!(aware.cleaning_mode, CleaningMode::PriorityAware);
        assert!((aware.gc_low_watermark - 0.05).abs() < 1e-12);
        assert!((aware.gc_critical_watermark - 0.02).abs() < 1e-12);
        aware.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = FtlConfig::default()
            .with_overprovisioning(0.2)
            .with_honor_free(true)
            .with_cleaning_mode(CleaningMode::PriorityAware)
            .with_cleaning_policy(CleaningPolicyKind::CostBenefit)
            .with_watermarks(0.1, 0.03)
            .without_wear_leveling();
        assert!((c.overprovisioning - 0.2).abs() < 1e-12);
        assert!(c.honor_free);
        assert_eq!(c.cleaning_mode, CleaningMode::PriorityAware);
        assert_eq!(c.cleaning_policy, CleaningPolicyKind::CostBenefit);
        assert!(c.wear_leveling.is_none());
        c.validate().unwrap();
    }

    #[test]
    fn default_policy_is_seed_compatible_greedy() {
        assert_eq!(
            FtlConfig::default().cleaning_policy,
            CleaningPolicyKind::Greedy
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(FtlConfig::default()
            .with_overprovisioning(0.95)
            .validate()
            .is_err());
        assert!(FtlConfig::default()
            .with_overprovisioning(-0.1)
            .validate()
            .is_err());
        assert!(FtlConfig::default()
            .with_watermarks(0.02, 0.05)
            .validate()
            .is_err());
        assert!(FtlConfig::default()
            .with_watermarks(1.5, 0.01)
            .validate()
            .is_err());
        let c = FtlConfig {
            gc_reserved_blocks: 0,
            ..FtlConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(FtlConfig::default()
            .with_map_cache(MapCacheConfig::default().with_budget(0))
            .validate()
            .is_err());
    }

    #[test]
    fn map_cache_defaults_off_and_composes() {
        assert!(FtlConfig::default().map_cache.is_none());
        let c = FtlConfig::default().with_map_cache(MapCacheConfig::infinite());
        assert_eq!(c.map_cache, Some(MapCacheConfig::infinite()));
        c.validate().unwrap();
    }
}
