//! FTL error type.

use std::fmt;

use ossd_flash::FlashError;

use crate::types::Lpn;

/// Errors an FTL can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page number is beyond the exported capacity.
    LpnOutOfRange {
        /// The offending LPN.
        lpn: Lpn,
        /// Number of exported logical pages.
        logical_pages: u64,
    },
    /// A read addressed a logical page that has never been written.
    ReadUnmapped {
        /// The unmapped LPN.
        lpn: Lpn,
    },
    /// The device ran out of free blocks even after cleaning; this happens
    /// when over-provisioning is zero or the configuration reserves no room
    /// for garbage collection.
    NoFreeBlocks {
        /// The element that could not allocate.
        element: u32,
    },
    /// The configuration is inconsistent (e.g. watermarks out of order).
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// An underlying flash state-machine error (a simulator bug if it ever
    /// surfaces).
    Flash(FlashError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, logical_pages } => write!(
                f,
                "logical page {} out of range (device exports {} pages)",
                lpn.0, logical_pages
            ),
            FtlError::ReadUnmapped { lpn } => {
                write!(f, "read of never-written logical page {}", lpn.0)
            }
            FtlError::NoFreeBlocks { element } => {
                write!(f, "element {element} has no free blocks left")
            }
            FtlError::InvalidConfig { reason } => write!(f, "invalid FTL configuration: {reason}"),
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_flash::{ElementId, PhysPageAddr};

    #[test]
    fn display_messages() {
        let e = FtlError::LpnOutOfRange {
            lpn: Lpn(10),
            logical_pages: 5,
        };
        assert!(e.to_string().contains("out of range"));
        assert!(FtlError::ReadUnmapped { lpn: Lpn(3) }
            .to_string()
            .contains("never-written"));
        assert!(FtlError::NoFreeBlocks { element: 2 }
            .to_string()
            .contains("free blocks"));
        assert!(FtlError::InvalidConfig {
            reason: "bad".into()
        }
        .to_string()
        .contains("bad"));
    }

    #[test]
    fn flash_error_conversion_preserves_source() {
        let flash = FlashError::ReadFreePage {
            addr: PhysPageAddr {
                element: ElementId(0),
                block: 1,
                page: 2,
            },
        };
        let ftl: FtlError = flash.clone().into();
        assert_eq!(ftl, FtlError::Flash(flash));
        assert!(std::error::Error::source(&ftl).is_some());
    }
}
