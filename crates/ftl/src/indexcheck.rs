//! Shared validation helpers for the FTLs' incremental victim indexes.
//!
//! Both FTLs expose a `check_victim_index` method (a test/validation aid in
//! the spirit of `enable_victim_trace`): it recomputes the candidate set
//! from the authoritative block state by a full scan and compares it
//! against the incrementally maintained [`VictimIndex`], then proves that
//! every built-in policy picks the same victim from the index as from the
//! recomputed legacy candidate slice.  The seeded property suite in
//! `tests/victim_index_equivalence.rs` calls it throughout randomized
//! write/free/GC/wear-level/retire sequences with fault injection on.

use ossd_gc::{BlockInfo, CleaningPolicy, CleaningPolicyKind, PickContext, VictimIndex};

/// One recomputed candidate row: `(block, valid, invalid, erase_count,
/// last_write)`, the tuple shape [`VictimIndex::snapshot`] reports.
pub(crate) type CandidateRow = (u32, u32, u32, u32, u64);

/// Compares the index against a from-scratch recompute (`expected` must be
/// sorted by block) and verifies the index's internal invariants.
pub(crate) fn check_against_recompute(
    index: &VictimIndex,
    expected: &[CandidateRow],
    what: &str,
) -> Result<(), String> {
    index
        .verify_internal()
        .map_err(|e| format!("{what}: {e}"))?;
    let got = index.snapshot();
    if got != expected {
        return Err(format!(
            "{what}: incremental index diverged from full-scan recompute\n\
             index:     {got:?}\nrecompute: {expected:?}"
        ));
    }
    Ok(())
}

/// Builds the legacy candidate slice (ascending block order, excluded
/// blocks dropped) out of recomputed rows.
fn legacy_candidates(rows: &[CandidateRow], total_pages: u32, ctx: &PickContext) -> Vec<BlockInfo> {
    rows.iter()
        .filter(|&&(block, ..)| !ctx.excludes(block))
        .map(|&(block, valid, invalid, erase, last_write)| BlockInfo {
            block,
            valid_pages: valid,
            invalid_pages: invalid,
            total_pages,
            erase_count: erase,
            age: ctx.clock.saturating_sub(last_write),
        })
        .collect()
}

/// Asserts that every built-in policy picks the same victim from the index
/// as from the recomputed legacy candidate slice.
pub(crate) fn check_policy_equivalence(
    index: &mut VictimIndex,
    rows: &[CandidateRow],
    total_pages: u32,
    ctx: &PickContext,
    what: &str,
) -> Result<(), String> {
    let candidates = legacy_candidates(rows, total_pages, ctx);
    for kind in CleaningPolicyKind::all() {
        let mut slice_policy = kind.build();
        let mut index_policy = kind.build();
        let from_slice = slice_policy.select_victim(&candidates);
        let from_index = index_policy.select_from_index(index, ctx);
        if from_slice != from_index {
            return Err(format!(
                "{what}: policy {} picked {from_index:?} from the index but \
                 {from_slice:?} from the recomputed scan (exclude {:?}/{:?})",
                kind.name(),
                ctx.exclude,
                ctx.exclude2
            ));
        }
    }
    Ok(())
}
