//! Flash translation layers (FTLs).
//!
//! The FTL is where the paper locates "block management done by the device":
//! logical-to-physical mapping, allocation, cleaning (garbage collection) and
//! wear-leveling (§2, §3.5, §3.6).  This crate provides two FTLs that differ
//! exactly along the axis the paper's device comparison (Table 2, Figure 2)
//! depends on:
//!
//! * [`PageFtl`] — a page-mapped, log-structured FTL with greedy garbage
//!   collection, wear-leveling, optional *informed cleaning* (free-page
//!   knowledge) and optional *priority-aware cleaning*.  This models the
//!   paper's simulated device (S4slc_sim) and mid/high-end SSDs.
//! * [`StripeFtl`] — a coarse-grained FTL that maps whole stripes (the
//!   device's logical page, e.g. 1 MB) and performs read-modify-write for
//!   sub-stripe updates.  This models the low-end engineering samples
//!   (S2slc, S3slc) whose random-write bandwidth collapses and whose
//!   bandwidth-vs-write-size curve shows the saw-tooth of Figure 2.
//!
//! FTLs are untimed: each logical operation returns the list of flash
//! operations ([`FlashOp`]) the device must schedule, and the device model in
//! `ossd-ssd` assigns start/finish times to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod config;
pub mod error;
mod indexcheck;
pub mod pagemap;
pub mod stripemap;
pub mod types;

pub use bitset::FixedBitset;
pub use config::{CleaningMode, FtlConfig, WearLevelConfig};
pub use error::FtlError;
pub use pagemap::PageFtl;
pub use stripemap::StripeFtl;
pub use types::{FlashOp, FlashOpKind, Ftl, FtlStats, Lpn, OpPurpose, ReadOutcome, WriteContext};

// Re-exported so device configuration can name cleaning policies without a
// direct `ossd-gc` dependency.
pub use ossd_gc::{CleaningPolicy, CleaningPolicyKind};

// Re-exported so device configuration and stats consumers can name the
// demand-paged mapping types without a direct `ossd-mapcache` dependency.
pub use ossd_mapcache::{EvictionPolicy, MapCacheConfig, MapStats};
