//! Page-mapped, log-structured FTL with pluggable cleaning and
//! wear-leveling.
//!
//! This is the FTL architecture the paper attributes to "modern SSDs"
//! (§2): writes always go to the next free page of a per-element append
//! point, a full page map translates logical to physical pages, a garbage
//! collector reclaims stale blocks, and wear-leveling bounds the
//! erase-count spread across blocks.
//!
//! Victim selection and the cleaning trigger are delegated to the
//! [`ossd_gc::CleaningPolicy`] chosen by
//! [`FtlConfig::cleaning_policy`]; the default
//! ([`ossd_gc::CleaningPolicyKind::Greedy`]) reproduces the historical
//! hard-coded greedy cleaner bit-for-bit.  Cleaning runs in the write path
//! when free space falls below the watermark, and additionally through
//! [`Ftl::background_clean`] when the device donates idle windows.
//!
//! Two of the paper's proposals are implemented as configuration switches:
//!
//! * **Informed cleaning** ([`FtlConfig::honor_free`]): when the host (file
//!   system or object store) notifies the FTL that a logical page is free,
//!   the physical page is invalidated immediately, so cleaning never wastes
//!   time migrating dead data (§3.5, Table 5).
//! * **Priority-aware cleaning** ([`CleaningMode::PriorityAware`]): when
//!   high-priority requests are outstanding, cleaning is postponed until
//!   the critical watermark (§3.6, Figure 3, Table 6).

use ossd_flash::{
    ElementId, FlashArray, FlashError, FlashGeometry, FlashTiming, PhysPageAddr, ReliabilityConfig,
};
use ossd_gc::{
    AnyPolicy, CleaningPolicy, PickContext, TriggerContext, TriggerDecision, VictimIndex,
};
use ossd_mapcache::{MapCache, MapStats, ENTRY_BYTES};
use ossd_telemetry::{EventKind, TelemetryHandle, Track};

use crate::bitset::FixedBitset;
use crate::config::{CleaningMode, FtlConfig};
use crate::error::FtlError;
use crate::types::{FlashOp, FlashOpKind, Ftl, FtlStats, Lpn, OpPurpose, WriteContext};

const UNMAPPED: u64 = u64::MAX;

/// Reverse-map tag marking a physical page as a *translation page* of the
/// demand-paged map area: the tagged value is `MAP_TAG | tpn`.  Logical
/// page numbers never reach bit 63 (capacity would exceed the address
/// space), so tagged and untagged values cannot collide.
const MAP_TAG: u64 = 1 << 63;

/// Maximum victims reclaimed by one watermark-triggered cleaning pass; keeps
/// a single host write from stalling behind an unbounded amount of cleaning.
const MAX_VICTIMS_PER_PASS: u32 = 4;

/// How often (in host writes) the wear-leveler checks the erase spread.
const WEAR_CHECK_INTERVAL: u64 = 256;

#[derive(Clone, Debug)]
struct ElementState {
    /// Erased blocks available for allocation.
    free_blocks: Vec<u32>,
    /// Block currently being appended to, if any.
    active_block: Option<u32>,
    /// Free (programmable) pages on this element, kept incrementally.
    free_pages: u64,
    /// Set when a cleaning pass on this element reclaimed nothing; while
    /// set, watermark triggering is skipped so a device full of valid data
    /// is not re-scanned on every write.  Cleared by the next invalidation
    /// on this element (which is the only event that can create a victim).
    clean_stalled: bool,
}

/// Demand-paged mapping state (DFTL-style): the translation table lives
/// in on-flash *translation pages* (one per `entries_per_tp` consecutive
/// lpns), an SRAM-budgeted [`MapCache`] holds the hot entries, and a
/// global translation directory (GTD) pins the current flash location of
/// each translation page.
///
/// The authoritative `map`/`rmap` arrays stay resident: the cache and the
/// translation pages model the *traffic and timing* of demand paging (a
/// miss costs a map read, a dirty eviction costs a read-modify-write
/// program), while mapping values are always served from the authoritative
/// arrays.  This keeps correctness independent of the paging model and
/// makes the infinite-budget configuration bit-for-bit identical to the
/// resident table: with no budget there are no evictions, no entry is
/// ever written back, the GTD never materializes, and therefore no map
/// flash op is ever issued.
#[derive(Clone, Debug)]
struct DemandPaging {
    cache: MapCache,
    /// Global translation directory: current physical page of each
    /// translation page, `UNMAPPED` while the tp has never been written
    /// back (its entries exist only in the cache / are all unmapped).
    gtd: Vec<u64>,
    /// Per-element append block of the map area, separate from the host
    /// data append point so translation pages and host data do not share
    /// blocks.
    map_active: Vec<Option<u32>>,
    /// Translation-page reads issued (map-cache misses on materialized
    /// tps, plus the read half of each writeback's read-modify-write).
    map_reads: u64,
    /// Translation-page programs issued (writebacks and flushes).
    map_writes: u64,
    /// Valid translation pages relocated by cleaning or wear-leveling.
    map_gc_moves: u64,
    /// Scratch: distinct tpns whose on-flash translation page was made
    /// stale by a relocation of an *uncached* entry and must be rewritten
    /// before the pass ends.  Reused across passes to stay allocation-free
    /// on the hot path.
    pending_tpns: Vec<u64>,
}

/// A page-mapped log-structured FTL over a [`FlashArray`].
#[derive(Clone, Debug)]
pub struct PageFtl {
    flash: FlashArray,
    config: FtlConfig,
    logical_pages: u64,
    /// Logical-to-physical map; `UNMAPPED` for never-written pages.
    map: Vec<u64>,
    /// Physical-to-logical reverse map; `UNMAPPED` for pages holding no
    /// live logical data.
    rmap: Vec<u64>,
    elements: Vec<ElementState>,
    /// Round-robin allocation cursor over elements.
    cursor: usize,
    /// Physical pages invalidated because the host freed their logical page;
    /// used to report how much work informed cleaning avoided.  A flat
    /// bitset over the (dense, geometry-bounded) physical page numbers, so
    /// the free-hint path of every write costs a mask instead of a hash.
    freed_phys: FixedBitset,
    total_free_pages: u64,
    total_pages: u64,
    stats: FtlStats,
    writes_since_wear_check: u64,
    /// The victim-selection / trigger policy (built from
    /// [`FtlConfig::cleaning_policy`]).
    policy: AnyPolicy,
    /// Logical clock: host writes served so far.  Block ages are measured
    /// against it.
    clock: u64,
    /// Per-element incremental victim-selection index, maintained on every
    /// page-state change (program, invalidation, burned page, erase,
    /// retirement).  It also carries each block's youngest-data timestamp
    /// (age = `clock - last_write`), replacing the old per-block scan.
    index: Vec<VictimIndex>,
    /// When enabled, every cleaning victim is appended here as
    /// `(element, block)`; used by tests to compare victim sequences across
    /// policy implementations.
    victim_trace: Option<Vec<(u32, u32)>>,
    /// Bad-block manager state: blocks (by global index) that suffered a
    /// program failure and must be retired instead of recycled the next
    /// time cleaning reclaims them.
    retire_pending: Vec<bool>,
    /// Telemetry sink for GC and reliability instants; detached (free) by
    /// default.
    telemetry: TelemetryHandle,
    /// Demand-paged mapping (DFTL-style map cache + on-flash translation
    /// pages); `None` keeps the historical fully resident table.
    paging: Option<DemandPaging>,
    /// Blocks per element withheld from host-path allocation: the
    /// configured GC reserve, plus one for the map-area append point when
    /// the translation table spills to flash (finite cache budget).
    data_reserve_blocks: u32,
}

impl PageFtl {
    /// Builds a page-mapped FTL over a fresh, fault-free flash array.
    pub fn new(
        geometry: FlashGeometry,
        timing: FlashTiming,
        config: FtlConfig,
    ) -> Result<Self, FtlError> {
        Self::with_reliability(geometry, timing, config, ReliabilityConfig::none())
    }

    /// Builds a page-mapped FTL over a flash array with the given
    /// reliability model.  Factory-marked bad blocks are excluded from the
    /// allocation pools (and from the exported capacity) up front.
    pub fn with_reliability(
        geometry: FlashGeometry,
        timing: FlashTiming,
        config: FtlConfig,
        reliability: ReliabilityConfig,
    ) -> Result<Self, FtlError> {
        config.validate()?;
        reliability
            .validate()
            .map_err(|reason| FtlError::InvalidConfig { reason })?;
        let flash = FlashArray::with_reliability(geometry, timing, reliability)?;
        let total_pages = geometry.total_pages();
        let usable_pages = flash.free_pages();
        let factory_bad_pages = total_pages - usable_pages;
        // Exported capacity is bounded both by the over-provisioning factor
        // and by what is physically placeable without cleaning: the blocks
        // reserved for GC can never hold host data, factory-bad blocks hold
        // nothing at all, and a device must survive a pure sequential fill
        // of everything it advertises (no overwrites means no stale pages,
        // so cleaning cannot help there).
        let finite_paging = config.map_cache.is_some_and(|mc| mc.entry_budget.is_some());
        // A finite map cache spills the table to flash, and the map area
        // appends through its own per-element block: one extra reserved
        // block per element funds that append point so map writebacks and
        // host data never fight over the last free block.
        let data_reserve_blocks = config.gc_reserved_blocks + u32::from(finite_paging);
        let reserved_pages = geometry.elements() as u64
            * data_reserve_blocks as u64
            * geometry.pages_per_block as u64;
        let placeable = total_pages
            .saturating_sub(reserved_pages)
            .saturating_sub(factory_bad_pages);
        let mut logical_pages = (((total_pages as f64) * (1.0 - config.overprovisioning)).floor()
            as u64)
            .min(placeable);
        let mut paging = None;
        if let Some(map_cache) = config.map_cache {
            let entries_per_tp = (geometry.page_bytes as u64 / ENTRY_BYTES).max(1);
            if map_cache.entry_budget.is_some() {
                // The map area comes out of the exported capacity: one
                // translation page per `entries_per_tp` logical pages,
                // doubled because the map is itself a log — superseded
                // translation-page versions linger as stale pages until
                // cleaning reclaims them, so the map log needs its own
                // over-provisioning.  (The per-element append block is
                // funded by `data_reserve_blocks` above.)
                let tp_pages = logical_pages.div_ceil(entries_per_tp);
                logical_pages = logical_pages.saturating_sub(tp_pages * 2);
            }
            if logical_pages == 0 {
                return Err(FtlError::InvalidConfig {
                    reason: "geometry too small for the demand-paged map area".to_string(),
                });
            }
            let gtd_len = logical_pages.div_ceil(entries_per_tp) as usize;
            paging = Some(DemandPaging {
                cache: MapCache::new(map_cache, entries_per_tp),
                gtd: vec![UNMAPPED; gtd_len],
                map_active: vec![None; geometry.elements() as usize],
                map_reads: 0,
                map_writes: 0,
                map_gc_moves: 0,
                pending_tpns: Vec::new(),
            });
        }
        if logical_pages == 0 {
            return Err(FtlError::InvalidConfig {
                reason: "geometry too small: no logical pages exported".to_string(),
            });
        }
        let elements = (0..geometry.elements())
            .map(|e| {
                let flash_element = flash.element(ElementId(e)).expect("element in range");
                // Factory-bad blocks never enter the free list.
                let free_blocks: Vec<u32> = (0..geometry.blocks_per_element())
                    .rev()
                    .filter(|&b| !flash_element.block(b).expect("block in range").is_bad())
                    .collect();
                ElementState {
                    free_pages: free_blocks.len() as u64 * geometry.pages_per_block as u64,
                    free_blocks,
                    active_block: None,
                    clean_stalled: false,
                }
            })
            .collect();
        let total_blocks = geometry.elements() as usize * geometry.blocks_per_element() as usize;
        let policy = config.cleaning_policy.build();
        let index = (0..geometry.elements())
            .map(|e| {
                let mut index =
                    VictimIndex::new(geometry.blocks_per_element(), geometry.pages_per_block);
                let flash_element = flash.element(ElementId(e)).expect("element in range");
                for (b, block) in flash_element.iter_blocks() {
                    if block.is_bad() {
                        index.mark_bad(b);
                    }
                }
                index
            })
            .collect();
        Ok(PageFtl {
            flash,
            config,
            logical_pages,
            map: vec![UNMAPPED; logical_pages as usize],
            rmap: vec![UNMAPPED; total_pages as usize],
            elements,
            cursor: 0,
            freed_phys: FixedBitset::with_capacity(total_pages),
            total_free_pages: usable_pages,
            total_pages,
            stats: FtlStats::default(),
            writes_since_wear_check: 0,
            policy,
            clock: 0,
            index,
            victim_trace: None,
            retire_pending: vec![false; total_blocks],
            telemetry: TelemetryHandle::noop(),
            paging,
            data_reserve_blocks,
        })
    }

    /// The name of the active cleaning policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Starts recording every cleaning victim as `(element, block)`.
    ///
    /// A validation/debugging aid: tests use it to assert that a cleaning
    /// policy reproduces an expected victim sequence on a deterministic
    /// trace.  Recording is off by default and unbounded when on, so enable
    /// it only for bounded test traces.
    pub fn enable_victim_trace(&mut self) {
        self.victim_trace = Some(Vec::new());
    }

    /// The victims recorded since [`PageFtl::enable_victim_trace`].
    pub fn victim_trace(&self) -> &[(u32, u32)] {
        self.victim_trace.as_deref().unwrap_or(&[])
    }

    /// The FTL configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Read-only access to the underlying flash array (used by reports).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Validates the incremental victim index against a from-scratch
    /// full-scan recompute of the candidate set, and proves every built-in
    /// policy picks the same victim from both representations.
    ///
    /// A test/validation aid like [`PageFtl::enable_victim_trace`]: the
    /// seeded property suite calls it throughout randomized
    /// write/free/GC/wear-level/retire sequences with fault injection on.
    pub fn check_victim_index(&mut self) -> Result<(), String> {
        let pages_per_block = self.flash.geometry().pages_per_block;
        for element in 0..self.elements.len() {
            let what = format!("element {element}");
            let flash_element = self
                .flash
                .element(ElementId(element as u32))
                .map_err(|e| e.to_string())?;
            // The recompute mirrors the pre-index candidate scan: every
            // non-retired block holding at least one stale page, in
            // ascending block order.  Block timestamps live only in the
            // index (they are not flash state), so `last_write` is read
            // back from it; counts and membership are fully cross-checked.
            let rows: Vec<crate::indexcheck::CandidateRow> = flash_element
                .iter_blocks()
                .filter(|(_, block)| !block.is_bad() && block.invalid_count() > 0)
                .map(|(b, block)| {
                    (
                        b,
                        block.valid_count(),
                        block.invalid_count(),
                        block.erase_count(),
                        self.index[element].last_write(b),
                    )
                })
                .collect();
            crate::indexcheck::check_against_recompute(&self.index[element], &rows, &what)?;
            // Pick equivalence under both exclusion variants the cleaner
            // uses (strict active-block exclusion, and the relaxed filter
            // that admits a full active block).
            for include_full_active in [false, true] {
                let ctx = PickContext {
                    clock: self.clock,
                    exclude: self.cleaning_exclusion(element, include_full_active),
                    exclude2: self.map_cleaning_exclusion(element, include_full_active),
                };
                crate::indexcheck::check_policy_equivalence(
                    &mut self.index[element],
                    &rows,
                    pages_per_block,
                    &ctx,
                    &what,
                )?;
            }
        }
        Ok(())
    }

    fn encode(&self, addr: PhysPageAddr) -> u64 {
        let g = self.flash.geometry();
        (addr.element.0 as u64 * g.blocks_per_element() as u64 + addr.block as u64)
            * g.pages_per_block as u64
            + addr.page as u64
    }

    fn decode(&self, ppn: u64) -> PhysPageAddr {
        let g = self.flash.geometry();
        let pages_per_block = g.pages_per_block as u64;
        let blocks_per_element = g.blocks_per_element() as u64;
        let page = (ppn % pages_per_block) as u32;
        let block_global = ppn / pages_per_block;
        let block = (block_global % blocks_per_element) as u32;
        let element = (block_global / blocks_per_element) as u32;
        PhysPageAddr {
            element: ElementId(element),
            block,
            page,
        }
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 >= self.logical_pages {
            Err(FtlError::LpnOutOfRange {
                lpn,
                logical_pages: self.logical_pages,
            })
        } else {
            Ok(())
        }
    }

    /// Picks the element the next host write is allocated on: the element
    /// with the most free pages, with ties broken round-robin so balanced
    /// elements are striped evenly (which is what gives sequential *and*
    /// random writes their parallelism on a page-mapped SSD).
    fn pick_element(&mut self) -> usize {
        let n = self.elements.len();
        let mut best = self.cursor % n;
        let mut best_free = self.elements[best].free_pages;
        for k in 1..n {
            let idx = (self.cursor + k) % n;
            if self.elements[idx].free_pages > best_free {
                best = idx;
                best_free = self.elements[idx].free_pages;
            }
        }
        self.cursor = (best + 1) % n;
        best
    }

    /// Ensures the element has an active block with at least one free page,
    /// pulling a new block (lowest erase count first) from the free list if
    /// needed.  `allow_reserve` lets cleaning dip into the reserved blocks.
    fn ensure_active_block(
        &mut self,
        element: usize,
        allow_reserve: bool,
    ) -> Result<u32, FtlError> {
        let need_new = match self.elements[element].active_block {
            Some(block) => self
                .flash
                .element(ElementId(element as u32))?
                .block(block)?
                .is_full(),
            None => true,
        };
        if !need_new {
            return Ok(self.elements[element].active_block.expect("checked above"));
        }
        let reserve = if allow_reserve {
            0
        } else {
            self.data_reserve_blocks as usize
        };
        let state = &mut self.elements[element];
        if state.free_blocks.len() <= reserve {
            return Err(FtlError::NoFreeBlocks {
                element: element as u32,
            });
        }
        // Pick the free block with the lowest erase count (dynamic wear
        // leveling of the allocation pool).
        let flash_element = self.flash.element(ElementId(element as u32))?;
        let mut best_idx = 0usize;
        let mut best_erases = u32::MAX;
        for (i, &b) in state.free_blocks.iter().enumerate() {
            let erases = flash_element.block(b)?.erase_count();
            if erases < best_erases {
                best_erases = erases;
                best_idx = i;
            }
        }
        let block = state.free_blocks.swap_remove(best_idx);
        state.active_block = Some(block);
        Ok(block)
    }

    /// Global block index (over all elements) of `block` on `element`.
    fn global_block(&self, element: usize, block: u32) -> usize {
        element * self.flash.geometry().blocks_per_element() as usize + block as usize
    }

    /// Programs the next page of the element's active block and returns its
    /// address, updating the incremental free-page counters and the block's
    /// age clock.
    ///
    /// `data_timestamp` is the logical-clock value of the data being
    /// written: the current clock for host writes, the *source block's*
    /// timestamp for relocations — data keeps its age across cleaning and
    /// wear-leveling (the LFS convention), otherwise a block compacted full
    /// of cold data would look hot to age-based policies.  A block's
    /// timestamp is that of its youngest data.
    ///
    /// `purpose`/`ops` bill the latency of *failed* program attempts (the
    /// successful program's op is the caller's to emit, as before): a
    /// failed program consumes a full program pass before the status is
    /// reported, matching the erase-failure convention.
    fn program_page(
        &mut self,
        element: usize,
        allow_reserve: bool,
        data_timestamp: u64,
        purpose: OpPurpose,
        ops: &mut Vec<FlashOp>,
    ) -> Result<PhysPageAddr, FtlError> {
        let mut allow_reserve = allow_reserve;
        loop {
            let block = self.ensure_active_block(element, allow_reserve)?;
            let addr = match self.flash.program(ElementId(element as u32), block) {
                Ok(addr) => addr,
                Err(FlashError::ProgramFailed { .. }) => {
                    // The target page is burned: account the consumed page,
                    // schedule the suspect block for retirement, stop
                    // appending to it, and re-program elsewhere.  The
                    // abandoned block keeps at least one stale page (the
                    // burned one), so cleaning will reclaim — and then
                    // retire — it.  The failed attempt still occupied the
                    // element for a full program pass.
                    ops.push(FlashOp {
                        element: ElementId(element as u32),
                        kind: if purpose.is_background() {
                            FlashOpKind::CopybackPage
                        } else {
                            FlashOpKind::ProgramPage
                        },
                        purpose,
                    });
                    self.elements[element].free_pages -= 1;
                    self.total_free_pages -= 1;
                    let global = self.global_block(element, block);
                    self.retire_pending[global] = true;
                    self.telemetry.instant_now(
                        Track::Element(element as u32),
                        EventKind::ProgramFail,
                        block as u64,
                        element as u64,
                    );
                    // The burned page is a fresh stale page: the block
                    // becomes (or stays) a cleaning candidate.
                    self.index[element].on_skip(block);
                    self.elements[element].active_block = None;
                    // The retry may dip into the GC reserve even on the
                    // host path: re-programming after a failure is
                    // relocation of data that would otherwise be lost —
                    // exactly what the reserve exists for.  Without this a
                    // device at its steady-state watermark dies on the
                    // first program failure instead of retiring the block.
                    allow_reserve = true;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            self.elements[element].free_pages -= 1;
            self.total_free_pages -= 1;
            let timestamp = if addr.page == 0 {
                // First program after an erase: the stale timestamp of the
                // block's previous life no longer applies.
                data_timestamp
            } else {
                self.index[element].last_write(block).max(data_timestamp)
            };
            self.index[element].on_program(block, timestamp);
            return Ok(addr);
        }
    }

    /// Removes `free_count` unusable pages of a block being retired from
    /// the free-page accounting (they were counted free but can never be
    /// programmed again).
    fn forfeit_free_pages(&mut self, element: usize, block: u32) -> Result<(), FtlError> {
        let free = self
            .flash
            .element(ElementId(element as u32))?
            .block(block)?
            .free_count() as u64;
        self.elements[element].free_pages -= free;
        self.total_free_pages -= free;
        Ok(())
    }

    /// Finishes reclaiming `block` once its valid pages have been moved
    /// out: a block scheduled for retirement by the bad-block manager is
    /// retired (no erase is spent on it); otherwise the block is erased
    /// and recycled, with an erase *failure* retiring it on the spot.
    /// Returns whether an erase was attempted — the caller schedules the
    /// erase latency and accounts its statistics.  Shared by cleaning and
    /// wear-leveling so the two reclamation paths cannot drift.
    fn recycle_or_retire(&mut self, element: usize, block: u32) -> Result<bool, FtlError> {
        let element_id = ElementId(element as u32);
        let global = self.global_block(element, block);
        if self.retire_pending[global] {
            self.flash.retire(element_id, block)?;
            self.retire_pending[global] = false;
            self.index[element].on_retire(block);
            self.forfeit_free_pages(element, block)?;
            self.telemetry.instant_now(
                Track::Element(element as u32),
                EventKind::BlockRetired,
                block as u64,
                element as u64,
            );
            return Ok(false);
        }
        let freed_pages = {
            let blk = self.flash.element(element_id)?.block(block)?;
            (blk.pages() - blk.free_count()) as u64
        };
        match self.flash.erase(element_id, block) {
            Ok(()) => {
                self.index[element].on_erase(block);
                self.elements[element].free_pages += freed_pages;
                self.total_free_pages += freed_pages;
                self.elements[element].free_blocks.push(block);
            }
            Err(FlashError::EraseFailed { .. }) => {
                // Grown bad block: the flash retired it on the spot.  Its
                // remaining unprogrammed pages are forfeited and it never
                // returns to the free list; the failed erase still took
                // the erase latency, so the caller schedules the op.
                self.index[element].on_retire(block);
                self.forfeit_free_pages(element, block)?;
                let track = Track::Element(element as u32);
                self.telemetry.instant_now(
                    track,
                    EventKind::EraseFail,
                    block as u64,
                    element as u64,
                );
                self.telemetry.instant_now(
                    track,
                    EventKind::BlockRetired,
                    block as u64,
                    element as u64,
                );
            }
            Err(e) => return Err(e.into()),
        }
        Ok(true)
    }

    /// Invalidates the physical page currently mapped to `lpn`, if any.
    fn invalidate_mapping(&mut self, lpn: Lpn, freed_by_host: bool) -> Result<(), FtlError> {
        let ppn = self.map[lpn.index()];
        if ppn == UNMAPPED {
            return Ok(());
        }
        let addr = self.decode(ppn);
        let change = self.flash.invalidate(addr)?;
        if change.newly_stale {
            self.index[addr.element.index()].on_invalidate(addr.block);
        }
        self.rmap[ppn as usize] = UNMAPPED;
        self.map[lpn.index()] = UNMAPPED;
        if freed_by_host {
            self.freed_phys.insert(ppn);
        }
        // A fresh stale page means cleaning can make progress again.
        self.elements[addr.element.index()].clean_stalled = false;
        Ok(())
    }

    fn free_fraction_of(&self, element: usize) -> f64 {
        let per_element = self.flash.geometry().pages_per_element();
        if per_element == 0 {
            return 0.0;
        }
        self.elements[element].free_pages as f64 / per_element as f64
    }

    /// Asks the policy for the cleaning victim on `element`, picking over
    /// the element's incremental [`VictimIndex`] (no block scan, no
    /// allocation).  The index holds every non-retired block with at least
    /// one stale page; the active (append) block is excluded at pick time.
    ///
    /// `include_full_active` additionally admits the active block once it
    /// is full (a closed log segment in all but name).  The watermark path
    /// keeps the historical strict exclusion so the greedy victim sequence
    /// stays seed-exact; the forced and background paths use the relaxed
    /// filter, without which a completely full device whose only stale
    /// page was relocated into the append block can wedge permanently.
    fn select_victim(&mut self, element: usize, include_full_active: bool) -> Option<u32> {
        let ctx = PickContext {
            clock: self.clock,
            exclude: self.cleaning_exclusion(element, include_full_active),
            exclude2: self.map_cleaning_exclusion(element, include_full_active),
        };
        self.policy
            .select_from_index(&mut self.index[element], &ctx)
    }

    /// The block a cleaning pick on `element` must skip: the active append
    /// block, unless `include_full_active` and the block is full.  Shared
    /// by the production pick and the index-validation hook so the two can
    /// never check different exclusions.
    fn cleaning_exclusion(&self, element: usize, include_full_active: bool) -> Option<u32> {
        let active = self.elements[element].active_block?;
        let admit_full = include_full_active
            && self
                .flash
                .element(ElementId(element as u32))
                .expect("element in range")
                .block(active)
                .expect("block in range")
                .is_full();
        if admit_full {
            None
        } else {
            Some(active)
        }
    }

    /// The map-area append block a cleaning pick on `element` must skip
    /// (demand paging only), with the same admit-when-full relaxation as
    /// [`PageFtl::cleaning_exclusion`]: a full map append block is a closed
    /// log segment and may be reclaimed by the forced/background paths.
    fn map_cleaning_exclusion(&self, element: usize, include_full_active: bool) -> Option<u32> {
        let active = self.paging.as_ref()?.map_active[element]?;
        let admit_full = include_full_active
            && self
                .flash
                .element(ElementId(element as u32))
                .expect("element in range")
                .block(active)
                .expect("block in range")
                .is_full();
        if admit_full {
            None
        } else {
            Some(active)
        }
    }

    // ---- Demand-paged mapping (DFTL-style) -----------------------------

    /// Whether demand paging runs with a *finite* cache budget.  Only a
    /// finite budget spills the table to flash; an infinite budget is the
    /// resident table in all but bookkeeping and must issue no flash op.
    fn paging_finite(&self) -> bool {
        self.paging
            .as_ref()
            .is_some_and(|p| p.cache.config().entry_budget.is_some())
    }

    /// Ensures the element has a map-area append block with a free page,
    /// pulling the lowest-erase free block if needed.  Host-path callers
    /// keep the same reserve as host data allocation (so cleaning is
    /// forced while relocation headroom remains); in-cleaning callers
    /// (`allow_reserve`) may dip into the reserve like any relocation.
    fn ensure_map_active_block(
        &mut self,
        element: usize,
        allow_reserve: bool,
    ) -> Result<u32, FtlError> {
        let current = self
            .paging
            .as_ref()
            .expect("demand paging enabled")
            .map_active[element];
        let need_new = match current {
            Some(block) => self
                .flash
                .element(ElementId(element as u32))?
                .block(block)?
                .is_full(),
            None => true,
        };
        if !need_new {
            return Ok(current.expect("checked above"));
        }
        let reserve = if allow_reserve {
            0
        } else {
            self.data_reserve_blocks as usize
        };
        let flash_element = self.flash.element(ElementId(element as u32))?;
        let state = &mut self.elements[element];
        if state.free_blocks.len() <= reserve {
            return Err(FtlError::NoFreeBlocks {
                element: element as u32,
            });
        }
        // Lowest erase count first, like the host append point.
        let mut best_idx = 0usize;
        let mut best_erases = u32::MAX;
        for (i, &b) in state.free_blocks.iter().enumerate() {
            let erases = flash_element.block(b)?.erase_count();
            if erases < best_erases {
                best_erases = erases;
                best_idx = i;
            }
        }
        let block = state.free_blocks.swap_remove(best_idx);
        self.paging
            .as_mut()
            .expect("demand paging enabled")
            .map_active[element] = Some(block);
        Ok(block)
    }

    /// Programs the next version of translation page `tpn` into the map
    /// area of `element`, superseding (invalidating) the previous on-flash
    /// version and updating the GTD and reverse map.  Emits the `MapWrite`
    /// op; program failures are handled exactly like [`PageFtl::program_page`]
    /// (burned page billed, block scheduled for retirement, retry on a
    /// fresh block).
    ///
    /// `forced_clean_allowed` lets an out-of-blocks element clean its way
    /// to a free block first (host-path writebacks); relocation callers
    /// already run inside cleaning and pass `false` — their headroom is
    /// the extra reserved block.
    fn program_map_page(
        &mut self,
        mut element: usize,
        tpn: u64,
        purpose: OpPurpose,
        forced_clean_allowed: bool,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        loop {
            let block = match self.ensure_map_active_block(element, !forced_clean_allowed) {
                Ok(block) => block,
                Err(FtlError::NoFreeBlocks { .. }) if forced_clean_allowed => {
                    if self.clean_one_block(element, OpPurpose::Clean, true, ops)? {
                        continue;
                    }
                    // No victim on this element (its stale pages may all
                    // sit elsewhere): metadata cannot be refused, so dip
                    // into the reserve — the next cleaning pass restores
                    // the headroom.
                    match self.ensure_map_active_block(element, true) {
                        Ok(block) => block,
                        Err(FtlError::NoFreeBlocks { .. }) => {
                            // Last resort: place this translation-page
                            // version on any element with headroom (the
                            // GTD tracks it wherever it lands).
                            let n = self.elements.len();
                            let mut found = None;
                            for k in 1..n {
                                let alt = (element + k) % n;
                                if let Ok(block) = self.ensure_map_active_block(alt, true) {
                                    found = Some((alt, block));
                                    break;
                                }
                            }
                            let Some((alt, block)) = found else {
                                return Err(FtlError::NoFreeBlocks {
                                    element: element as u32,
                                });
                            };
                            element = alt;
                            block
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            };
            let addr = match self.flash.program(ElementId(element as u32), block) {
                Ok(addr) => addr,
                Err(FlashError::ProgramFailed { .. }) => {
                    ops.push(FlashOp::map_write(ElementId(element as u32), purpose));
                    self.elements[element].free_pages -= 1;
                    self.total_free_pages -= 1;
                    let global = self.global_block(element, block);
                    self.retire_pending[global] = true;
                    self.telemetry.instant_now(
                        Track::Element(element as u32),
                        EventKind::ProgramFail,
                        block as u64,
                        element as u64,
                    );
                    self.index[element].on_skip(block);
                    self.paging
                        .as_mut()
                        .expect("demand paging enabled")
                        .map_active[element] = None;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            self.elements[element].free_pages -= 1;
            self.total_free_pages -= 1;
            // Translation pages are metadata written now: they carry the
            // current clock, not a relocated-data age.
            let timestamp = if addr.page == 0 {
                self.clock
            } else {
                self.index[element].last_write(block).max(self.clock)
            };
            self.index[element].on_program(block, timestamp);
            let new_ppn = self.encode(addr);
            let old_ppn = {
                let paging = self.paging.as_mut().expect("demand paging enabled");
                let old = paging.gtd[tpn as usize];
                paging.gtd[tpn as usize] = new_ppn;
                paging.map_writes += 1;
                old
            };
            if old_ppn != UNMAPPED {
                let old_addr = self.decode(old_ppn);
                let change = self.flash.invalidate(old_addr)?;
                if change.newly_stale {
                    self.index[old_addr.element.index()].on_invalidate(old_addr.block);
                }
                self.rmap[old_ppn as usize] = UNMAPPED;
                // A fresh stale page un-stalls cleaning on its element.
                self.elements[old_addr.element.index()].clean_stalled = false;
            }
            self.rmap[new_ppn as usize] = MAP_TAG | tpn;
            ops.push(FlashOp::map_write(ElementId(element as u32), purpose));
            return Ok(());
        }
    }

    /// Read-modify-write of translation page `tpn`: the read half costs a
    /// `MapRead` when a previous version is materialized on flash; the
    /// write half programs the merged page into the tpn's home element
    /// (`tpn % elements`, striping the map area like host data).
    fn map_writeback(
        &mut self,
        tpn: u64,
        purpose: OpPurpose,
        forced_clean_allowed: bool,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let tp_ppn = self.paging.as_ref().expect("demand paging enabled").gtd[tpn as usize];
        if tp_ppn != UNMAPPED {
            let element = self.decode(tp_ppn).element;
            self.paging
                .as_mut()
                .expect("demand paging enabled")
                .map_reads += 1;
            ops.push(FlashOp::map_read(element, purpose));
        }
        let home = (tpn % self.elements.len() as u64) as usize;
        self.program_map_page(home, tpn, purpose, forced_clean_allowed, ops)
    }

    /// Map-cache lookup ahead of a host access: counts the hit or miss
    /// and, on a miss whose translation page is materialized on flash,
    /// issues the demand `MapRead`.  Returns whether the entry was cached.
    fn map_lookup(&mut self, lpn: Lpn, purpose: OpPurpose, ops: &mut Vec<FlashOp>) -> bool {
        let tp_ppn = {
            let Some(paging) = self.paging.as_mut() else {
                return true;
            };
            if paging.cache.lookup(lpn.0).is_some() {
                return true;
            }
            let tpn = paging.cache.tpn_of(lpn.0);
            paging.gtd[tpn as usize]
        };
        if tp_ppn != UNMAPPED {
            let element = self.decode(tp_ppn).element;
            self.paging
                .as_mut()
                .expect("demand paging enabled")
                .map_reads += 1;
            ops.push(FlashOp::map_read(element, purpose));
        }
        false
    }

    /// Installs (or refreshes) `lpn → ppn` in the map cache after the
    /// access resolved its value.  A dirty eviction triggers the batched
    /// writeback of every dirty sibling of the evicted entry's translation
    /// page — one read-modify-write covers them all.
    fn map_install(
        &mut self,
        lpn: Lpn,
        ppn: u64,
        dirty: bool,
        hit: bool,
        purpose: OpPurpose,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let evicted = {
            let Some(paging) = self.paging.as_mut() else {
                return Ok(());
            };
            if hit {
                if dirty {
                    paging.cache.update(lpn.0, ppn, true);
                }
                return Ok(());
            }
            paging.cache.insert(lpn.0, ppn, dirty)
        };
        if let Some(evicted) = evicted {
            if evicted.dirty {
                let paging = self.paging.as_mut().expect("demand paging enabled");
                let tpn = paging.cache.tpn_of(evicted.lpn);
                let _batch = paging
                    .cache
                    .writeback_batch(tpn, Some((evicted.lpn, evicted.ppn)));
                self.map_writeback(tpn, purpose, true, ops)?;
            }
        }
        Ok(())
    }

    /// Notes a relocation (cleaning/wear-leveling) of `lpn` to `new_ppn`
    /// for the paging model: a cached entry is updated in place and goes
    /// dirty (its on-flash translation page now points at the old
    /// location); an uncached entry whose translation page is materialized
    /// stales that page, which is queued for a rewrite at the end of the
    /// pass ([`PageFtl::flush_pending_tpns`]).
    fn note_relocation(&mut self, lpn: u64, new_ppn: u64) {
        let Some(paging) = self.paging.as_mut() else {
            return;
        };
        if paging.cache.update(lpn, new_ppn, true) {
            return;
        }
        let tpn = paging.cache.tpn_of(lpn);
        if paging.gtd[tpn as usize] != UNMAPPED {
            paging.pending_tpns.push(tpn);
        }
    }

    /// Rewrites every translation page queued by
    /// [`PageFtl::note_relocation`] (sorted and deduplicated — one
    /// read-modify-write per distinct translation page, however many of
    /// its entries the pass relocated).
    fn flush_pending_tpns(
        &mut self,
        purpose: OpPurpose,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let mut tpns = {
            let Some(paging) = self.paging.as_mut() else {
                return Ok(());
            };
            if paging.pending_tpns.is_empty() {
                return Ok(());
            }
            std::mem::take(&mut paging.pending_tpns)
        };
        tpns.sort_unstable();
        tpns.dedup();
        for &tpn in &tpns {
            // Dirty cached siblings of this tp ride along in the rewrite.
            let _batch = self
                .paging
                .as_mut()
                .expect("demand paging enabled")
                .cache
                .writeback_batch(tpn, None);
            self.map_writeback(tpn, purpose, true, ops)?;
        }
        // Hand the emptied buffer back so the next pass reuses it.
        tpns.clear();
        self.paging
            .as_mut()
            .expect("demand paging enabled")
            .pending_tpns = tpns;
        Ok(())
    }

    /// Reclaims one victim block on `element`, appending the flash
    /// operations performed to `ops`.  Returns `false` when no block could
    /// be reclaimed (no stale pages anywhere).  `include_full_active`
    /// relaxes the candidate filter (see [`PageFtl::victim_candidates`]).
    fn clean_one_block(
        &mut self,
        element: usize,
        purpose: OpPurpose,
        include_full_active: bool,
        ops: &mut Vec<FlashOp>,
    ) -> Result<bool, FtlError> {
        let Some(victim) = self.select_victim(element, include_full_active) else {
            return Ok(false);
        };
        if let Some(trace) = self.victim_trace.as_mut() {
            trace.push((element as u32, victim));
        }
        self.telemetry.instant_now(
            Track::Element(element as u32),
            EventKind::GcVictimPick,
            victim as u64,
            purpose.telemetry_code(),
        );
        // When the (full) append block itself is the victim, retire it
        // first: after the erase it goes back to the free list, and leaving
        // `active_block` pointing at it would hand out its pages twice.
        if self.elements[element].active_block == Some(victim) {
            self.elements[element].active_block = None;
        }
        // Same for the map-area append block: translation blocks are
        // cleanable victims like any other.
        if let Some(paging) = self.paging.as_mut() {
            if paging.map_active[element] == Some(victim) {
                paging.map_active[element] = None;
            }
        }
        // Relocated data keeps the victim block's age (LFS convention).
        let victim_timestamp = self.index[element].last_write(victim);
        let element_id = ElementId(element as u32);
        let pages_per_block = self.flash.geometry().pages_per_block;
        // Move every valid page; count stale pages that the host had freed
        // (work informed cleaning avoided performing).
        for page in 0..pages_per_block {
            let addr = PhysPageAddr {
                element: element_id,
                block: victim,
                page,
            };
            let state = self.flash.element(element_id)?.block(victim)?.state(page)?;
            match state {
                ossd_flash::PageState::Valid => {
                    let old_ppn = self.encode(addr);
                    let lpn = self.rmap[old_ppn as usize];
                    if lpn != UNMAPPED && lpn & MAP_TAG != 0 {
                        // A live translation page: relocate it through the
                        // map area.  The program supersedes this copy via
                        // the GTD, invalidating it in passing.
                        let tpn = lpn & !MAP_TAG;
                        debug_assert_eq!(
                            self.paging
                                .as_ref()
                                .expect("tagged page implies paging")
                                .gtd[tpn as usize],
                            old_ppn,
                            "reverse map and GTD disagree"
                        );
                        self.program_map_page(element, tpn, purpose, false, ops)?;
                        self.paging
                            .as_mut()
                            .expect("tagged page implies paging")
                            .map_gc_moves += 1;
                        continue;
                    }
                    debug_assert_ne!(lpn, UNMAPPED, "valid page with no reverse mapping");
                    // Copy the page to the element's append point.
                    let new_addr =
                        self.program_page(element, true, victim_timestamp, purpose, ops)?;
                    let new_ppn = self.encode(new_addr);
                    let change = self.flash.invalidate(addr)?;
                    if change.newly_stale {
                        self.index[element].on_invalidate(victim);
                    }
                    self.rmap[old_ppn as usize] = UNMAPPED;
                    self.rmap[new_ppn as usize] = lpn;
                    if lpn != UNMAPPED {
                        self.map[lpn as usize] = new_ppn;
                        self.note_relocation(lpn, new_ppn);
                    }
                    ops.push(FlashOp {
                        element: element_id,
                        kind: FlashOpKind::CopybackPage,
                        purpose,
                    });
                    match purpose {
                        OpPurpose::WearLevel => self.stats.wear_level_moves += 1,
                        OpPurpose::BackgroundClean => self.stats.bg_pages_moved += 1,
                        _ => self.stats.gc_pages_moved += 1,
                    }
                }
                ossd_flash::PageState::Invalid => {
                    let ppn = self.encode(addr);
                    if self.freed_phys.remove(ppn) {
                        self.stats.gc_pages_skipped_free += 1;
                    }
                }
                ossd_flash::PageState::Free => {}
            }
        }
        // All pages are now stale or free: retire (deferred bad-block
        // retirement, no erase scheduled) or erase-and-recycle the victim.
        if !self.recycle_or_retire(element, victim)? {
            return Ok(true);
        }
        ops.push(FlashOp {
            element: element_id,
            kind: FlashOpKind::EraseBlock,
            purpose,
        });
        match purpose {
            OpPurpose::WearLevel => {}
            OpPurpose::BackgroundClean => self.stats.bg_blocks_erased += 1,
            _ => self.stats.gc_blocks_erased += 1,
        }
        Ok(true)
    }

    /// Applies the cleaning policy ahead of a host write to `element`.
    fn maybe_clean(
        &mut self,
        element: usize,
        ctx: &WriteContext,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let low = self.config.gc_low_watermark;
        let trigger = TriggerContext {
            free_fraction: self.free_fraction_of(element),
            low_watermark: low,
            critical_watermark: self.config.gc_critical_watermark,
            priority_pending: ctx.priority_pending,
            priority_aware: self.config.cleaning_mode == CleaningMode::PriorityAware,
        };
        let free_ppm = (trigger.free_fraction * 1e6) as u64;
        match self.policy.should_trigger(&trigger) {
            TriggerDecision::Idle => return Ok(()),
            TriggerDecision::Postponed => {
                self.stats.gc_postponements += 1;
                self.telemetry.instant_now(
                    Track::Element(element as u32),
                    EventKind::GcPostponed,
                    free_ppm,
                    element as u64,
                );
                return Ok(());
            }
            TriggerDecision::Clean => {}
        }
        // No-progress fast path: a previous pass on this element found no
        // block with a stale page, and nothing has been invalidated since,
        // so another scan cannot succeed either.
        if self.elements[element].clean_stalled {
            return Ok(());
        }
        self.stats.gc_invocations += 1;
        self.telemetry.instant_now(
            Track::Element(element as u32),
            EventKind::GcTrigger,
            free_ppm,
            element as u64,
        );
        let mut victims = 0;
        while self.free_fraction_of(element) < low && victims < MAX_VICTIMS_PER_PASS {
            if !self.clean_one_block(element, OpPurpose::Clean, false, ops)? {
                break;
            }
            victims += 1;
        }
        // Rewrite the translation pages staled by relocating uncached
        // entries — once per pass, so tps shared across victims cost one
        // read-modify-write.
        self.flush_pending_tpns(OpPurpose::Clean, ops)?;
        if victims == 0 {
            self.stats.gc_fruitless_passes += 1;
            self.elements[element].clean_stalled = true;
            self.telemetry.instant_now(
                Track::Element(element as u32),
                EventKind::GcFruitless,
                element as u64,
                0,
            );
        }
        Ok(())
    }

    /// Performs up to `max_erases` background block reclamations towards
    /// `target_free_fraction`, neediest element first.
    fn background_clean_impl(
        &mut self,
        max_erases: u32,
        target_free_fraction: f64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let mut budget = max_erases;
        while budget > 0 {
            // Elements below the free-space target, neediest first; ties
            // break towards the lower element index for determinism.
            let mut needy: Vec<(usize, f64)> = (0..self.elements.len())
                .map(|e| (e, self.free_fraction_of(e)))
                .filter(|&(_, f)| f < target_free_fraction)
                .collect();
            needy.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("free fractions are finite"));
            let mut progressed = false;
            for (element, _) in needy {
                if self.clean_one_block(element, OpPurpose::BackgroundClean, true, ops)? {
                    progressed = true;
                    budget -= 1;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        // Batched rewrite of translation pages staled by this pass.
        self.flush_pending_tpns(OpPurpose::BackgroundClean, ops)?;
        Ok(())
    }

    /// Periodic explicit wear-leveling: when the erase spread on an element
    /// exceeds the configured bound, migrate the valid data out of the
    /// least-worn (coldest) block so the block returns to the allocation
    /// pool.
    fn maybe_wear_level(&mut self, element: usize, ops: &mut Vec<FlashOp>) -> Result<(), FtlError> {
        let Some(wl) = self.config.wear_leveling else {
            return Ok(());
        };
        self.writes_since_wear_check += 1;
        if self.writes_since_wear_check < WEAR_CHECK_INTERVAL {
            return Ok(());
        }
        self.writes_since_wear_check = 0;
        let element_id = ElementId(element as u32);
        let state = &self.elements[element];
        let map_active = self
            .paging
            .as_ref()
            .and_then(|paging| paging.map_active[element]);
        let flash_element = self.flash.element(element_id)?;
        let mut min_block: Option<(u32, u32)> = None;
        let mut max_erases = 0u32;
        for (idx, block) in flash_element.iter_blocks() {
            if block.is_bad() {
                // Retired blocks take no further erases; they neither set
                // the spread nor qualify as migration sources.
                continue;
            }
            let erases = block.erase_count();
            max_erases = max_erases.max(erases);
            // Neither append point (host data or map area) is a migration
            // source: erasing a block still being appended to would hand
            // its pages out twice.
            if Some(idx) == state.active_block || Some(idx) == map_active || block.is_erased() {
                continue;
            }
            if block.valid_count() == 0 {
                continue;
            }
            match min_block {
                None => min_block = Some((idx, erases)),
                Some((_, best)) if erases < best => min_block = Some((idx, erases)),
                _ => {}
            }
        }
        let Some((cold_block, cold_erases)) = min_block else {
            return Ok(());
        };
        if max_erases.saturating_sub(cold_erases) <= wl.max_erase_spread {
            return Ok(());
        }
        // Migrated data keeps the cold block's age (LFS convention).
        let cold_timestamp = self.index[element].last_write(cold_block);
        // Migrate the cold block's contents; `clean_one_block` requires a
        // victim with stale pages, so move the pages directly here.
        let pages_per_block = self.flash.geometry().pages_per_block;
        for page in 0..pages_per_block {
            let addr = PhysPageAddr {
                element: element_id,
                block: cold_block,
                page,
            };
            if self
                .flash
                .element(element_id)?
                .block(cold_block)?
                .state(page)?
                != ossd_flash::PageState::Valid
            {
                continue;
            }
            let old_ppn = self.encode(addr);
            let lpn = self.rmap[old_ppn as usize];
            if lpn != UNMAPPED && lpn & MAP_TAG != 0 {
                // A cold translation page migrates through the map area.
                let tpn = lpn & !MAP_TAG;
                self.program_map_page(element, tpn, OpPurpose::WearLevel, false, ops)?;
                self.paging
                    .as_mut()
                    .expect("tagged page implies paging")
                    .map_gc_moves += 1;
                continue;
            }
            let new_addr =
                self.program_page(element, true, cold_timestamp, OpPurpose::WearLevel, ops)?;
            let new_ppn = self.encode(new_addr);
            let change = self.flash.invalidate(addr)?;
            if change.newly_stale {
                self.index[element].on_invalidate(cold_block);
            }
            self.rmap[old_ppn as usize] = UNMAPPED;
            self.rmap[new_ppn as usize] = lpn;
            if lpn != UNMAPPED {
                self.map[lpn as usize] = new_ppn;
                self.note_relocation(lpn, new_ppn);
            }
            self.stats.wear_level_moves += 1;
            ops.push(FlashOp {
                element: element_id,
                kind: FlashOpKind::CopybackPage,
                purpose: OpPurpose::WearLevel,
            });
        }
        // Rewrite translation pages staled by migrating uncached entries.
        self.flush_pending_tpns(OpPurpose::WearLevel, ops)?;
        // Retire (a cold block that previously failed a program must not
        // return to service) or erase-and-recycle the migrated block; the
        // shared helper keeps wear-leveling's reclamation identical to
        // cleaning's.
        if self.recycle_or_retire(element, cold_block)? {
            ops.push(FlashOp {
                element: element_id,
                kind: FlashOpKind::EraseBlock,
                purpose: OpPurpose::WearLevel,
            });
        }
        Ok(())
    }
}

impl Ftl for PageFtl {
    fn geometry(&self) -> &FlashGeometry {
        self.flash.geometry()
    }

    fn logical_page_bytes(&self) -> u64 {
        self.flash.geometry().page_bytes as u64
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn read_into(
        &mut self,
        lpn: Lpn,
        _covered_bytes: u64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<bool, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_reads += 1;
        // Demand paging: the mapping entry must be in the cache before the
        // data read can be addressed; a miss on a materialized translation
        // page costs a map read first.
        let map_hit = self.map_lookup(lpn, OpPurpose::HostRead, ops);
        let ppn = self.map[lpn.index()];
        if ppn == UNMAPPED {
            // Reading a never-written page returns zeroes without touching
            // the flash array (the FTL still had to consult the map to
            // know that, so the unmapped verdict is cached too).
            self.map_install(lpn, UNMAPPED, false, map_hit, OpPurpose::HostRead, ops)?;
            return Ok(false);
        }
        let addr = self.decode(ppn);
        let status = self.flash.read(addr)?;
        self.stats.pages_read_host += 1;
        ops.push(FlashOp::host_read(addr.element));
        for _ in 0..status.retries {
            ops.push(FlashOp::host_read_retry(addr.element));
        }
        if status.retries > 0 {
            self.telemetry.instant_now(
                Track::Element(addr.element.0),
                EventKind::EccRetry,
                status.retries as u64,
                addr.element.0 as u64,
            );
        }
        if status.uncorrectable {
            self.telemetry.instant_now(
                Track::Element(addr.element.0),
                EventKind::ReadUncorrectable,
                lpn.0,
                0,
            );
        }
        self.map_install(lpn, ppn, false, map_hit, OpPurpose::HostRead, ops)?;
        Ok(status.uncorrectable)
    }

    fn write_into(
        &mut self,
        lpn: Lpn,
        _covered_bytes: u64,
        ctx: &WriteContext,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_writes += 1;
        self.clock += 1;
        // Demand paging: consult the map cache up front — the old mapping
        // must be known before it can be superseded, so a miss on a
        // materialized translation page costs a map read before anything
        // else proceeds.
        let map_hit = self.map_lookup(lpn, OpPurpose::HostWrite, ops);
        let element = self.pick_element();

        // Watermark-driven cleaning and wear-leveling happen before the
        // write so their cost lands ahead of the host page program, exactly
        // as the paper's "foreground requests wait for cleaning" framing.
        self.maybe_clean(element, ctx, ops)?;
        self.maybe_wear_level(element, ops)?;

        // Forced cleaning: allocation must be able to make progress even if
        // the watermark policy decided not to clean (e.g. priority-aware
        // postponement) but the element is genuinely out of blocks.
        let mut element = element;
        let mut invalidated_early = false;
        loop {
            match self.ensure_active_block(element, false) {
                Ok(_) => break,
                Err(FtlError::NoFreeBlocks { .. }) => {
                    if !self.clean_one_block(element, OpPurpose::Clean, true, ops)? {
                        // No block on this element holds a stale page.  If
                        // this write supersedes an older copy, invalidate it
                        // now (it would be invalidated below anyway) and
                        // retry on the element that holds it — this is the
                        // only way a completely full device can absorb an
                        // overwrite.
                        let old_ppn = self.map[lpn.index()];
                        if !invalidated_early && old_ppn != UNMAPPED {
                            element = self.decode(old_ppn).element.index();
                            self.invalidate_mapping(lpn, false)?;
                            invalidated_early = true;
                            continue;
                        }
                        // With demand paging the picked element's free pages
                        // can be locked inside its two append blocks while a
                        // sibling element still has allocatable blocks or
                        // cleanable victims — retry there before giving up.
                        // (Only reachable in states that previously errored,
                        // so pinned sequences are unaffected.)
                        let n = self.elements.len();
                        let mut switched = false;
                        for k in 1..n {
                            let alt = (element + k) % n;
                            match self.ensure_active_block(alt, false) {
                                Ok(_) => {
                                    element = alt;
                                    switched = true;
                                    break;
                                }
                                Err(FtlError::NoFreeBlocks { .. }) => {
                                    if self.clean_one_block(alt, OpPurpose::Clean, true, ops)? {
                                        element = alt;
                                        switched = true;
                                        break;
                                    }
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        if switched {
                            continue;
                        }
                        return Err(FtlError::NoFreeBlocks {
                            element: element as u32,
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }

        // Translation pages staled by forced cleaning are rewritten before
        // the host program proceeds.
        self.flush_pending_tpns(OpPurpose::Clean, ops)?;

        // Supersede any previous version of this logical page (unless the
        // forced-cleaning fallback already did).
        if !invalidated_early {
            self.invalidate_mapping(lpn, false)?;
        }
        let addr = self.program_page(element, false, self.clock, OpPurpose::HostWrite, ops)?;
        let ppn = self.encode(addr);
        self.map[lpn.index()] = ppn;
        self.rmap[ppn as usize] = lpn.0;
        self.stats.pages_programmed_host += 1;
        ops.push(FlashOp::host_program(addr.element));
        // The new mapping enters the cache dirty; a dirty eviction here
        // emits the batched translation-page writeback.
        self.map_install(lpn, ppn, true, map_hit, OpPurpose::HostWrite, ops)?;
        Ok(())
    }

    fn free(&mut self, lpn: Lpn) -> Result<bool, FtlError> {
        self.check_lpn(lpn)?;
        if !self.config.honor_free {
            return Ok(false);
        }
        self.stats.frees_accepted += 1;
        if self.map[lpn.index()] == UNMAPPED {
            return Ok(false);
        }
        self.invalidate_mapping(lpn, true)?;
        // Demand paging: a cached entry goes (dirty) unmapped.  An uncached
        // entry's stale on-flash translation page is left for the next
        // natural rewrite — TRIM is advisory and mapping values are always
        // served authoritatively, so deferring costs nothing.
        if let Some(paging) = self.paging.as_mut() {
            paging.cache.update(lpn.0, UNMAPPED, true);
        }
        Ok(true)
    }

    fn background_clean_into(
        &mut self,
        max_erases: u32,
        target_free_fraction: f64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        self.background_clean_impl(max_erases, target_free_fraction, ops)
    }

    fn flush_into(&mut self, ops: &mut Vec<FlashOp>) -> Result<(), FtlError> {
        // Only a finite-budget map cache has on-flash state to make
        // durable; with an infinite budget the cache *is* the table and no
        // flash op may be issued (bit-for-bit resident-table equivalence).
        if !self.paging_finite() {
            return Ok(());
        }
        // Staled tps queued by earlier relocations drain first, then every
        // dirty cached entry.
        self.flush_pending_tpns(OpPurpose::HostWrite, ops)?;
        let batches = self
            .paging
            .as_mut()
            .expect("finite paging checked")
            .cache
            .drain_dirty();
        for (tpn, _entries) in batches {
            self.map_writeback(tpn, OpPurpose::HostWrite, true, ops)?;
        }
        Ok(())
    }

    fn stats(&self) -> FtlStats {
        self.stats
    }

    fn free_page_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            return 0.0;
        }
        self.total_free_pages as f64 / self.total_pages as f64
    }

    fn is_mapped(&self, lpn: Lpn) -> bool {
        lpn.0 < self.logical_pages && self.map[lpn.index()] != UNMAPPED
    }

    fn locate(&self, lpn: Lpn) -> Option<u32> {
        if lpn.0 >= self.logical_pages {
            return None;
        }
        let ppn = self.map[lpn.index()];
        if ppn == UNMAPPED {
            None
        } else {
            Some(self.decode(ppn).element.0)
        }
    }

    fn next_write_element(&self) -> Option<u32> {
        // Mirrors `pick_element` without advancing the round-robin cursor:
        // the element with the most free pages, ties broken by cursor order.
        // Free pages of retired blocks were forfeited from the per-element
        // counters at retirement, so a heavily degraded element stops
        // attracting writes.
        let n = self.elements.len();
        let mut best = self.cursor % n;
        let mut best_free = self.elements[best].free_pages;
        for k in 1..n {
            let idx = (self.cursor + k) % n;
            if self.elements[idx].free_pages > best_free {
                best = idx;
                best_free = self.elements[idx].free_pages;
            }
        }
        Some(best as u32)
    }

    fn reliability_counters(&self) -> ossd_flash::ReliabilityCounters {
        self.flash.reliability_counters()
    }

    fn wear_summary(&self) -> ossd_flash::WearSummary {
        self.flash.wear_summary()
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    fn map_stats(&self) -> MapStats {
        let total = self.logical_pages * ENTRY_BYTES;
        match &self.paging {
            None => MapStats {
                bytes_resident: total,
                bytes_total: total,
                ..MapStats::default()
            },
            Some(paging) => {
                let mut stats = MapStats {
                    bytes_total: total,
                    // SRAM the paged design holds besides the cached
                    // entries: the GTD, once the table actually spills
                    // (finite budget).  An infinite budget never
                    // materializes it.
                    bytes_resident: if paging.cache.config().entry_budget.is_some() {
                        paging.gtd.len() as u64 * ENTRY_BYTES
                    } else {
                        0
                    },
                    map_reads: paging.map_reads,
                    map_writes: paging.map_writes,
                    map_gc_moves: paging.map_gc_moves,
                    ..MapStats::default()
                };
                paging.cache.stats_into(&mut stats);
                stats
            }
        }
    }

    fn gc_backlog_blocks(&self) -> u64 {
        self.index.iter().map(|i| i.len() as u64).sum()
    }

    fn gc_stale_pages(&self) -> u64 {
        self.index.iter().map(|i| i.stale_pages()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_flash::FlashGeometry;

    fn tiny_ftl(config: FtlConfig) -> PageFtl {
        PageFtl::new(FlashGeometry::tiny(), FlashTiming::slc(), config).unwrap()
    }

    fn write_all(ftl: &mut PageFtl, lpns: impl Iterator<Item = u64>) {
        for lpn in lpns {
            ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
        }
    }

    /// Regression test: a device must survive a pure sequential fill of
    /// everything it advertises.  With zero stale pages cleaning cannot
    /// free anything, so exported capacity must never exceed the pages
    /// placeable outside the GC reserve (at 10% OP the tiny geometry's
    /// nominal 115 logical pages exceed the 112 placeable ones; the
    /// exported capacity is capped accordingly).
    #[test]
    fn full_sequential_fill_of_advertised_capacity_succeeds() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        let logical = ftl.logical_pages();
        assert_eq!(logical, 112, "2 reserved blocks cap the export");
        write_all(&mut ftl, 0..logical);
        assert_eq!(ftl.flash().valid_pages(), logical);
        // The device stays writable afterwards (overwrites create stale
        // pages for cleaning).
        write_all(&mut ftl, 0..logical);
        assert_eq!(ftl.flash().valid_pages(), logical);
    }

    #[test]
    fn exported_capacity_respects_overprovisioning() {
        let ftl = tiny_ftl(FtlConfig::default().with_overprovisioning(0.25));
        // tiny geometry = 128 physical pages; 25% OP leaves 96 logical.
        assert_eq!(ftl.logical_pages(), 96);
        assert_eq!(ftl.logical_page_bytes(), 4096);
        assert_eq!(ftl.exported_bytes(), 96 * 4096);
        assert!((ftl.free_page_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn read_of_unwritten_page_returns_no_ops() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        assert!(ftl.read(Lpn(0), 4096).unwrap().ops.is_empty());
        assert!(!ftl.is_mapped(Lpn(0)));
    }

    #[test]
    fn write_then_read_maps_and_reads_flash() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        let ops = ftl.write(Lpn(5), 4096, &WriteContext::idle()).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, FlashOpKind::ProgramPage);
        assert!(ftl.is_mapped(Lpn(5)));
        let outcome = ftl.read(Lpn(5), 4096).unwrap();
        assert_eq!(outcome.ops.len(), 1);
        assert_eq!(outcome.ops[0].kind, FlashOpKind::ReadPage);
        assert!(!outcome.uncorrectable);
        let s = ftl.stats();
        assert_eq!(s.host_writes, 1);
        assert_eq!(s.host_reads, 1);
        assert_eq!(s.pages_programmed_host, 1);
    }

    #[test]
    fn out_of_range_lpns_are_rejected() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        let bad = Lpn(ftl.logical_pages());
        assert!(matches!(
            ftl.read(bad, 4096),
            Err(FtlError::LpnOutOfRange { .. })
        ));
        assert!(matches!(
            ftl.write(bad, 4096, &WriteContext::idle()),
            Err(FtlError::LpnOutOfRange { .. })
        ));
        assert!(ftl.free(bad).is_err());
    }

    #[test]
    fn overwrite_invalidates_previous_mapping() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        ftl.write(Lpn(1), 4096, &WriteContext::idle()).unwrap();
        let before = ftl.flash().invalid_pages();
        ftl.write(Lpn(1), 4096, &WriteContext::idle()).unwrap();
        assert_eq!(ftl.flash().invalid_pages(), before + 1);
        // The logical page is still mapped (to the new location).
        assert!(ftl.is_mapped(Lpn(1)));
        assert_eq!(ftl.flash().valid_pages(), 1);
    }

    #[test]
    fn writes_spread_across_elements() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        let mut elements_touched = std::collections::HashSet::new();
        for lpn in 0..8 {
            let ops = ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            elements_touched.insert(ops.last().unwrap().element);
        }
        // The tiny geometry has 2 elements; round-robin must use both.
        assert_eq!(elements_touched.len(), 2);
    }

    #[test]
    fn next_write_element_predicts_the_allocation_target() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        for lpn in 0..12 {
            let predicted = ftl.next_write_element().unwrap();
            let ops = ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            let landed = ops.last().unwrap().element.0;
            assert_eq!(predicted, landed, "write {lpn} landed off the prediction");
        }
    }

    /// Writes the LPNs of `range` in a strided (permuted) order so that
    /// consecutive allocations come from scattered logical pages; later
    /// overwrites then leave blocks with a mix of valid and stale pages,
    /// which is what forces cleaning to migrate data.
    fn write_strided(ftl: &mut PageFtl, lpns: &[u64], stride: u64) {
        let n = lpns.len() as u64;
        for i in 0..n {
            let idx = ((i * stride) % n) as usize;
            ftl.write(Lpn(lpns[idx]), 4096, &WriteContext::idle())
                .unwrap();
        }
    }

    /// The refactored, policy-driven cleaner must reproduce the seed's
    /// hard-coded greedy cleaner bit-for-bit.  The expected victim sequence
    /// below was captured from the pre-refactor implementation on this
    /// exact deterministic trace (6 strided overwrite rounds on the tiny
    /// geometry): 478 victims with the given order-sensitive fingerprint,
    /// moving 3346 pages.
    #[test]
    fn greedy_policy_reproduces_seed_victim_sequence_bit_for_bit() {
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        assert_eq!(config.cleaning_policy, ossd_gc::CleaningPolicyKind::Greedy);
        let mut ftl = tiny_ftl(config);
        ftl.enable_victim_trace();
        let logical = ftl.logical_pages();
        let lpns: Vec<u64> = (0..logical).collect();
        for _ in 0..6 {
            write_strided(&mut ftl, &lpns, 13);
        }
        let trace = ftl.victim_trace();
        assert_eq!(trace.len(), 478, "victim count diverged from the seed");
        assert_eq!(
            &trace[..12],
            &[
                (0, 7),
                (1, 7),
                (0, 5),
                (1, 5),
                (0, 6),
                (1, 6),
                (0, 7),
                (1, 7),
                (0, 5),
                (1, 5),
                (0, 6),
                (1, 6)
            ],
            "leading victims diverged from the seed"
        );
        let fingerprint = trace.iter().fold(0u64, |h, &(e, b)| {
            h.wrapping_mul(1_000_003)
                .wrapping_add(((e as u64) << 32) | b as u64)
        });
        assert_eq!(
            fingerprint, 0x396967ec7d10dc88,
            "victim sequence fingerprint diverged from the seed"
        );
        let s = ftl.stats();
        assert_eq!(s.gc_blocks_erased, 478);
        assert_eq!(s.gc_pages_moved, 3346);
        assert_eq!(s.wear_level_moves, 8);
        assert!((s.write_amplification() - 6.822917).abs() < 1e-6);
    }

    /// Regression test for the unbounded-stall edge: when free space is
    /// below the watermark but no block holds a stale page (a device filled
    /// once with all-valid data), every write used to re-run a full
    /// fruitless victim scan.  The no-progress fast path must trigger at
    /// most one fruitless pass per element until an invalidation creates a
    /// victim, after which cleaning must resume.
    #[test]
    fn fruitless_cleaning_pass_is_not_retried_until_an_invalidation() {
        // 25% OP with a 0.4 low watermark: the initial fill (all first
        // writes, so zero stale pages) ends below the watermark.
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.4, 0.1);
        let mut ftl = tiny_ftl(config);
        let logical = ftl.logical_pages();
        write_all(&mut ftl, 0..logical);
        let after_fill = ftl.stats();
        assert!(
            ftl.free_page_fraction() < 0.4,
            "fill must end below the watermark"
        );
        assert_eq!(after_fill.gc_blocks_erased, 0, "nothing was reclaimable");
        // One fruitless pass per element at most — not one per write.
        assert!(
            after_fill.gc_fruitless_passes <= 2,
            "{} fruitless passes for a 2-element device",
            after_fill.gc_fruitless_passes
        );
        assert_eq!(after_fill.gc_invocations, after_fill.gc_fruitless_passes);

        // Overwrites invalidate pages, which un-stalls cleaning on the
        // elements holding the stale pages.
        for lpn in 0..8 {
            ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
        }
        let after_overwrite = ftl.stats();
        assert!(
            after_overwrite.gc_invocations > after_fill.gc_invocations,
            "cleaning must resume once an invalidation creates a victim"
        );
        assert!(after_overwrite.gc_blocks_erased > 0);
    }

    /// Background cleaning reclaims blocks without being driven by host
    /// writes, respects its erase budget, and stops at the free-space
    /// target.
    #[test]
    fn background_clean_is_budgeted_and_targets_free_space() {
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.05, 0.02); // foreground cleaning mostly idle
        let mut ftl = tiny_ftl(config);
        let logical = ftl.logical_pages();
        // Fill the device, then overwrite an eighth of it: enough stale
        // pages for background work, but free space stays above the (low)
        // foreground watermark on every element so only background cleaning
        // can reclaim.
        write_all(&mut ftl, 0..logical);
        write_all(&mut ftl, 0..logical / 8);
        let free_before = ftl.free_page_fraction();

        // Budget of one erase: exactly one block reclaimed.
        let ops = ftl.background_clean(1, 0.9).unwrap();
        let erases = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::EraseBlock)
            .count();
        assert_eq!(erases, 1);
        assert!(ops.iter().all(|o| o.purpose == OpPurpose::BackgroundClean));
        let s = ftl.stats();
        assert_eq!(s.bg_blocks_erased, 1);
        assert_eq!(s.gc_blocks_erased, 0, "foreground cleaning never ran");
        assert!(ftl.free_page_fraction() > free_before);

        // An unreachably high target with a huge budget cleans until no
        // block holds a stale page, then stops rather than spinning.
        ftl.background_clean(10_000, 0.9).unwrap();
        assert!(ftl.free_page_fraction() > free_before);
        // Nothing reclaimable is left, so another call is a no-op...
        assert!(ftl.background_clean(4, 0.9).unwrap().is_empty());
        // ...and a target at or below the current free fraction gates the
        // work off entirely.
        let reached = ftl.free_page_fraction();
        assert!(ftl.background_clean(4, reached).unwrap().is_empty());
        // Mapping integrity is preserved throughout.
        assert_eq!(ftl.flash().valid_pages(), logical);
    }

    /// Every built-in policy keeps the device writable and every logical
    /// page intact under heavy overwrite churn.
    #[test]
    fn all_policies_survive_churn_with_consistent_mappings() {
        for kind in ossd_gc::CleaningPolicyKind::all() {
            let config = FtlConfig::default()
                .with_overprovisioning(0.25)
                .with_watermarks(0.3, 0.1)
                .with_cleaning_policy(kind);
            let mut ftl = tiny_ftl(config);
            assert_eq!(ftl.policy_name(), kind.name());
            let logical = ftl.logical_pages();
            let lpns: Vec<u64> = (0..logical).collect();
            for round in 0..6 {
                write_strided(&mut ftl, &lpns, 13);
                assert!(
                    ftl.free_page_fraction() > 0.0,
                    "{}: round {round} exhausted free pages",
                    kind.name()
                );
            }
            let s = ftl.stats();
            assert!(
                s.gc_blocks_erased > 0,
                "{}: cleaning never ran",
                kind.name()
            );
            assert_eq!(
                ftl.flash().valid_pages(),
                logical,
                "{}: lost or duplicated logical pages",
                kind.name()
            );
        }
    }

    #[test]
    fn steady_overwrites_trigger_cleaning_and_stay_consistent() {
        // The tiny geometry has only 8 pages per block, so use watermarks
        // that are a few blocks wide.
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut ftl = tiny_ftl(config);
        let logical = ftl.logical_pages();
        let lpns: Vec<u64> = (0..logical).collect();
        // Fill the device once, then overwrite it several times over with a
        // strided pattern; GC must keep the device writable for the run.
        for round in 0..6 {
            write_strided(&mut ftl, &lpns, 13);
            assert!(
                ftl.free_page_fraction() > 0.0,
                "round {round} exhausted free pages"
            );
        }
        let s = ftl.stats();
        assert!(s.gc_blocks_erased > 0, "cleaning never ran");
        assert!(s.gc_pages_moved > 0, "cleaning never moved valid data");
        assert!(s.write_amplification() > 1.0);
        // Every logical page must still map to exactly one valid physical
        // page.
        assert_eq!(ftl.flash().valid_pages(), logical);
    }

    #[test]
    fn informed_cleaning_moves_fewer_pages() {
        // Two identical FTLs; one receives free notifications before the
        // overwrite churn, the other does not (the paper's Table 5 setup).
        // The prefill interleaves "cold" pages (later freed) with "hot"
        // pages (later overwritten) so every block contains both, as file
        // deletion under Postmark produces.
        let run = |honor_free: bool| -> FtlStats {
            let config = FtlConfig::default()
                .with_overprovisioning(0.25)
                .with_watermarks(0.3, 0.1)
                .with_honor_free(honor_free);
            let mut ftl = tiny_ftl(config);
            let logical = ftl.logical_pages();
            let half = logical / 2;
            let interleaved: Vec<u64> = (0..half).flat_map(|i| [i, i + half]).collect();
            write_strided(&mut ftl, &interleaved, 1);
            // The host frees the cold half of the address space.
            for lpn in 0..half {
                ftl.free(Lpn(lpn)).unwrap();
            }
            // Churn on the hot half forces cleaning of blocks that also
            // contain the freed (but physically still "valid"-looking) data.
            let hot: Vec<u64> = (half..logical).collect();
            for _ in 0..6 {
                write_strided(&mut ftl, &hot, 7);
            }
            ftl.stats()
        };
        let uninformed = run(false);
        let informed = run(true);
        assert!(uninformed.gc_pages_moved > 0);
        assert!(
            informed.gc_pages_moved < uninformed.gc_pages_moved,
            "informed {} should move fewer pages than uninformed {}",
            informed.gc_pages_moved,
            uninformed.gc_pages_moved
        );
        assert!(informed.frees_accepted > 0);
        assert_eq!(uninformed.frees_accepted, 0);
    }

    #[test]
    fn priority_aware_cleaning_postpones_under_priority_load() {
        // Watermarks sized in whole blocks for the tiny geometry.
        let config = FtlConfig::priority_aware()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.05);
        let mut ftl = tiny_ftl(config);
        let logical = ftl.logical_pages();
        write_all(&mut ftl, 0..logical);
        // Drive free space below the low watermark with priority requests
        // outstanding; cleaning must be postponed at least once (visible as
        // gc_postponements) as long as free space stays above critical.
        let mut postponed = 0;
        for round in 0..8 {
            for lpn in 0..logical {
                ftl.write(Lpn(lpn), 4096, &WriteContext::with_priority_pending())
                    .unwrap();
            }
            postponed = ftl.stats().gc_postponements;
            if postponed > 0 {
                break;
            }
            let _ = round;
        }
        assert!(postponed > 0, "cleaning was never postponed");

        // The same load without priority requests outstanding cleans at the
        // low watermark and never records a postponement.
        let config = FtlConfig::priority_aware()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.05);
        let mut ftl = tiny_ftl(config);
        write_all(&mut ftl, 0..logical);
        for _ in 0..4 {
            write_all(&mut ftl, 0..logical);
        }
        assert_eq!(ftl.stats().gc_postponements, 0);
        assert!(ftl.stats().gc_invocations > 0);
    }

    #[test]
    fn free_without_honor_is_ignored() {
        let mut ftl = tiny_ftl(FtlConfig::default());
        ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        assert!(!ftl.free(Lpn(0)).unwrap());
        assert!(ftl.is_mapped(Lpn(0)));
        assert_eq!(ftl.stats().frees_accepted, 0);
    }

    #[test]
    fn free_with_honor_unmaps_and_invalidates() {
        let mut ftl = tiny_ftl(FtlConfig::informed());
        ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        assert!(ftl.free(Lpn(0)).unwrap());
        assert!(!ftl.is_mapped(Lpn(0)));
        assert_eq!(ftl.flash().valid_pages(), 0);
        assert_eq!(ftl.flash().invalid_pages(), 1);
        // Freeing an unmapped page is a no-op that reports false.
        assert!(!ftl.free(Lpn(0)).unwrap());
    }

    #[test]
    fn wear_leveling_bounds_erase_spread() {
        // Hammer a single logical page; without wear-leveling only a few
        // blocks would absorb all erases.
        let config = FtlConfig::default()
            .with_overprovisioning(0.5)
            .with_watermarks(0.3, 0.1);
        let mut ftl = tiny_ftl(config);
        for _ in 0..5_000 {
            ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        }
        let wear = ftl.flash().wear_summary();
        assert!(wear.total_erases > 0);
        // The spread must stay well below the total number of erases, i.e.
        // erases are not all concentrated on one block.
        assert!(
            (wear.spread() as u64) < wear.total_erases / 2,
            "spread {} vs total {}",
            wear.spread(),
            wear.total_erases
        );
        assert!(ftl.stats().wear_level_moves > 0 || wear.spread() <= 32);
    }

    fn faulty_ftl(faults: ossd_flash::FaultConfig, config: FtlConfig) -> PageFtl {
        let reliability = ReliabilityConfig {
            faults,
            ..ReliabilityConfig::none()
        };
        PageFtl::with_reliability(
            FlashGeometry::tiny(),
            FlashTiming::slc(),
            config,
            reliability,
        )
        .unwrap()
    }

    /// Churns the FTL with strided overwrites, tolerating end-of-life:
    /// returns `true` when the device ran out of blocks (spares exhausted).
    fn churn_until_death_or(ftl: &mut PageFtl, rounds: usize) -> bool {
        let logical = ftl.logical_pages();
        for round in 0..rounds as u64 {
            for i in 0..logical {
                let lpn = (i * 13 + round) % logical;
                match ftl.write(Lpn(lpn), 4096, &WriteContext::idle()) {
                    Ok(_) => {}
                    Err(FtlError::NoFreeBlocks { .. }) => return true,
                    Err(e) => panic!("unexpected FTL error under faults: {e}"),
                }
            }
        }
        false
    }

    #[test]
    fn explicit_none_reliability_matches_the_default_bit_for_bit() {
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut plain = tiny_ftl(config.clone());
        let mut explicit = PageFtl::with_reliability(
            FlashGeometry::tiny(),
            FlashTiming::slc(),
            config,
            ReliabilityConfig::none(),
        )
        .unwrap();
        plain.enable_victim_trace();
        explicit.enable_victim_trace();
        let logical = plain.logical_pages();
        assert_eq!(logical, explicit.logical_pages());
        let lpns: Vec<u64> = (0..logical).collect();
        for _ in 0..6 {
            write_strided(&mut plain, &lpns, 13);
            write_strided(&mut explicit, &lpns, 13);
        }
        assert_eq!(plain.victim_trace(), explicit.victim_trace());
        assert_eq!(plain.stats(), explicit.stats());
        assert_eq!(
            explicit.reliability_counters(),
            ossd_flash::ReliabilityCounters::default()
        );
    }

    #[test]
    fn factory_bad_blocks_shrink_the_export_and_survive_a_full_fill() {
        let faults = ossd_flash::FaultConfig {
            seed: 9,
            factory_bad_prob: 0.2,
            ..ossd_flash::FaultConfig::none()
        };
        let mut ftl = faulty_ftl(faults, FtlConfig::default());
        let bad = ftl.wear_summary().retired_blocks;
        assert!(bad > 0, "p=0.2 over 16 blocks should mark some bad");
        let logical = ftl.logical_pages();
        assert!(
            logical <= 112 - bad * 8,
            "export {logical} must shrink by the {bad} factory-bad blocks"
        );
        // The advertised capacity must still fill sequentially.
        write_all(&mut ftl, 0..logical);
        assert_eq!(ftl.flash().valid_pages(), logical);
    }

    #[test]
    fn program_failures_reprogram_elsewhere_and_retire_the_block_later() {
        let faults = ossd_flash::FaultConfig {
            seed: 3,
            program_fail_base: 0.001,
            ..ossd_flash::FaultConfig::none()
        };
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut ftl = faulty_ftl(faults, config);
        let logical = ftl.logical_pages();
        let died = churn_until_death_or(&mut ftl, 8);
        let c = ftl.reliability_counters();
        assert!(c.program_fails > 0, "no program failures injected");
        if !died {
            // Every logical page survived the failures: the re-program
            // path kept the mapping intact.
            assert_eq!(ftl.flash().valid_pages(), logical);
        }
    }

    #[test]
    fn erase_failures_grow_bad_blocks_without_losing_data() {
        let faults = ossd_flash::FaultConfig {
            seed: 17,
            erase_fail_base: 0.02,
            ..ossd_flash::FaultConfig::none()
        };
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut ftl = faulty_ftl(faults, config);
        let logical = ftl.logical_pages();
        let died = churn_until_death_or(&mut ftl, 8);
        let c = ftl.reliability_counters();
        assert!(c.erase_fails > 0, "no erase failures injected");
        assert_eq!(c.retired_blocks, c.erase_fails);
        assert_eq!(ftl.wear_summary().retired_blocks, c.retired_blocks);
        if !died {
            assert_eq!(ftl.flash().valid_pages(), logical);
        }
    }

    #[test]
    fn marginal_reads_surface_retries_and_uncorrectable_outcomes() {
        let faults = ossd_flash::FaultConfig {
            seed: 23,
            raw_ber_base: 200.0,
            ..ossd_flash::FaultConfig::none()
        };
        let mut ftl = faulty_ftl(faults, FtlConfig::default());
        ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        let outcome = ftl.read(Lpn(0), 4096).unwrap();
        assert!(outcome.uncorrectable, "a 200-bit mean must defeat the ECC");
        let retries = outcome
            .ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::ReadRetry)
            .count();
        assert_eq!(outcome.ops.len(), 1 + retries);
        assert!(retries > 0);
        let c = ftl.reliability_counters();
        assert_eq!(c.uncorrectable_reads, 1);
        assert_eq!(c.read_retries, retries as u64);
    }

    #[test]
    fn write_amplification_reported() {
        let mut ftl = tiny_ftl(FtlConfig::default().with_overprovisioning(0.25));
        let logical = ftl.logical_pages();
        for _ in 0..4 {
            write_all(&mut ftl, 0..logical);
        }
        let wa = ftl.stats().write_amplification();
        assert!(wa >= 1.0);
        assert!(wa < 5.0, "write amplification {wa} unreasonably high");
    }

    // ---- Demand-paged mapping ------------------------------------------

    use ossd_mapcache::{EvictionPolicy, MapCacheConfig};

    /// A geometry with small (512 B) pages so that a translation page
    /// holds only 64 entries and a unit test exercises many translation
    /// pages and real map-area pressure.
    fn paging_geometry() -> FlashGeometry {
        FlashGeometry {
            packages: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 24,
            pages_per_block: 16,
            page_bytes: 512,
        }
    }

    /// An infinite-budget map cache must be *bit-for-bit* identical to the
    /// resident table: same ops from every call, same stats, same wear —
    /// while still counting cache traffic.
    #[test]
    fn infinite_budget_map_cache_is_bit_for_bit_inert() {
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.3, 0.1);
        let mut baseline = tiny_ftl(config.clone());
        let mut paged = tiny_ftl(config.with_map_cache(MapCacheConfig::infinite()));
        assert_eq!(baseline.logical_pages(), paged.logical_pages());
        let logical = baseline.logical_pages();
        for _ in 0..6 {
            for i in 0..logical {
                let lpn = Lpn((i * 13) % logical);
                let a = baseline.write(lpn, 4096, &WriteContext::idle()).unwrap();
                let b = paged.write(lpn, 4096, &WriteContext::idle()).unwrap();
                assert_eq!(a, b, "write ops diverged at lpn {lpn:?}");
            }
        }
        for lpn in 0..logical {
            let a = baseline.read(Lpn(lpn), 4096).unwrap();
            let b = paged.read(Lpn(lpn), 4096).unwrap();
            assert_eq!(a, b, "read outcome diverged at lpn {lpn}");
        }
        assert!(paged.flush().unwrap().is_empty(), "nothing to make durable");
        assert_eq!(baseline.stats(), paged.stats());
        assert_eq!(baseline.wear_summary(), paged.wear_summary());
        // The cache saw every access yet issued no map op and spilled
        // nothing.
        let ms = paged.map_stats();
        assert!(ms.hits > 0);
        assert_eq!(ms.misses, logical, "one compulsory miss per lpn");
        assert_eq!(ms.map_reads, 0);
        assert_eq!(ms.map_writes, 0);
        assert_eq!(ms.writebacks, 0);
        assert_eq!(ms.evictions_clean + ms.evictions_dirty, 0);
    }

    /// A finite budget reserves the map area out of the exported capacity
    /// and issues real map reads (misses) and map writes (writebacks),
    /// while every logical page stays intact through GC of both data and
    /// translation blocks.
    #[test]
    fn finite_budget_reserves_map_area_and_issues_map_traffic() {
        let geometry = paging_geometry();
        let resident = PageFtl::new(geometry, FlashTiming::slc(), FtlConfig::default()).unwrap();
        let budget = 32u64;
        let mut ftl = PageFtl::new(
            geometry,
            FlashTiming::slc(),
            FtlConfig::default().with_map_cache(MapCacheConfig::default().with_budget(budget)),
        )
        .unwrap();
        assert!(
            ftl.logical_pages() < resident.logical_pages(),
            "the map area must come out of the exported capacity"
        );
        let logical = ftl.logical_pages();
        let entries_per_tp = geometry.page_bytes as u64 / 8;
        let gtd_entries = logical.div_ceil(entries_per_tp);
        let (mut saw_map_read, mut saw_map_write) = (false, false);
        for _ in 0..4 {
            for i in 0..logical {
                let lpn = Lpn((i * 13) % logical);
                let ops = ftl.write(lpn, 512, &WriteContext::idle()).unwrap();
                for op in &ops {
                    match op.kind {
                        FlashOpKind::MapRead => saw_map_read = true,
                        FlashOpKind::MapWrite => saw_map_write = true,
                        _ => {}
                    }
                }
            }
        }
        assert!(
            saw_map_write,
            "dirty evictions must program translation pages"
        );
        assert!(saw_map_read, "misses on materialized tps must read them");
        let ms = ftl.map_stats();
        assert!(ms.misses > 0 && ms.map_writes > 0 && ms.writebacks > 0);
        assert!(ms.hit_rate() < 1.0);
        assert!(
            ms.bytes_resident <= (gtd_entries + budget) * 8,
            "SRAM footprint {} exceeds GTD + budget",
            ms.bytes_resident
        );
        assert!(ms.bytes_resident < ms.bytes_total / 4);
        // Mapping integrity held through cleaning of data and translation
        // blocks alike, and the victim index stayed consistent.
        for lpn in 0..logical {
            assert!(ftl.is_mapped(Lpn(lpn)));
        }
        ftl.check_victim_index().unwrap();
        // Flush makes the dirty tail durable; a second flush is a no-op.
        let flush_ops = ftl.flush().unwrap();
        assert!(!flush_ops.is_empty());
        assert!(flush_ops
            .iter()
            .all(|o| matches!(o.kind, FlashOpKind::MapRead | FlashOpKind::MapWrite)));
        assert!(ftl.flush().unwrap().is_empty());
    }

    /// Under churn heavy enough to clean translation blocks, map pages are
    /// relocated as first-class GC citizens (counted separately from host
    /// data moves).
    #[test]
    fn translation_blocks_are_cleanable_victims() {
        let mut ftl = PageFtl::new(
            paging_geometry(),
            FlashTiming::slc(),
            FtlConfig::default()
                .with_overprovisioning(0.25)
                .with_map_cache(
                    MapCacheConfig::default()
                        .with_budget(16)
                        .with_policy(EvictionPolicy::Lru),
                ),
        )
        .unwrap();
        let logical = ftl.logical_pages();
        for _ in 0..8 {
            for i in 0..logical {
                ftl.write(Lpn((i * 7) % logical), 512, &WriteContext::idle())
                    .unwrap();
            }
        }
        let ms = ftl.map_stats();
        assert!(
            ms.map_gc_moves > 0,
            "sustained churn must force relocation of live translation pages"
        );
        for lpn in 0..logical {
            assert!(ftl.is_mapped(Lpn(lpn)));
        }
        ftl.check_victim_index().unwrap();
    }

    /// TRIM with paging: a freed entry is served authoritatively (no data
    /// read for freed lpns) whether or not it is cached.
    #[test]
    fn trim_with_paging_keeps_values_authoritative() {
        let mut ftl = PageFtl::new(
            paging_geometry(),
            FlashTiming::slc(),
            FtlConfig::informed().with_map_cache(MapCacheConfig::default().with_budget(16)),
        )
        .unwrap();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(Lpn(lpn), 512, &WriteContext::idle()).unwrap();
        }
        for lpn in (0..logical).step_by(2) {
            assert!(ftl.free(Lpn(lpn)).unwrap());
        }
        for lpn in 0..logical {
            assert_eq!(ftl.is_mapped(Lpn(lpn)), lpn % 2 == 1);
            let outcome = ftl.read(Lpn(lpn), 512).unwrap();
            let has_data_read = outcome.ops.iter().any(|o| o.kind == FlashOpKind::ReadPage);
            assert_eq!(has_data_read, lpn % 2 == 1, "lpn {lpn}");
        }
    }
}
