//! Coarse-grained, stripe-mapped FTL.
//!
//! Low-end SSDs (the paper's S2slc and S3slc engineering samples) keep their
//! mapping tables small by mapping at the granularity of a large *logical
//! page* — the stripe that spans a whole gang of packages (1 MB on S2slc,
//! §3.4).  The consequence is the paper's write-amplification story:
//!
//! * a host write smaller than the stripe triggers a read-modify-write of
//!   the entire stripe (Figure 2's saw-tooth, Table 2's catastrophic random
//!   write bandwidth);
//! * only writes that are merged and aligned to stripe boundaries achieve
//!   full bandwidth, which is why the paper argues the *device* (which knows
//!   the stripe size) should perform that merging.
//!
//! The FTL keeps a one-stripe coalescing buffer: sequential writes into the
//! same stripe accumulate in controller RAM and are flushed as a single
//! full-stripe program; touching a different stripe forces the partial
//! stripe out with a read-modify-write.

use ossd_flash::{
    ElementId, FlashArray, FlashError, FlashGeometry, FlashTiming, ReliabilityConfig,
};
use ossd_gc::{AnyPolicy, CleaningPolicy, PickContext, VictimIndex};
use ossd_telemetry::{EventKind, TelemetryHandle, Track};

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::types::{FlashOp, FlashOpKind, Ftl, FtlStats, Lpn, OpPurpose, WriteContext};

const UNMAPPED: u64 = u64::MAX;

/// A stripe held in controller RAM waiting to be flushed.
#[derive(Clone, Copy, Debug)]
struct OpenStripe {
    lpn: Lpn,
    covered_bytes: u64,
}

/// State of one superblock (the same block index across every element).
#[derive(Clone, Debug)]
struct SuperBlock {
    /// Per-slot logical page, `UNMAPPED` when the slot is stale or unused.
    slot_lpns: Vec<u64>,
    /// Next slot to program.
    write_ptr: u32,
    /// Number of slots holding live data.
    valid: u32,
    /// Erase count (applies to every element's block in lockstep).
    erase_count: u32,
    /// Logical clock value of the last stripe programmed into this
    /// superblock; age-based cleaning policies compare it to the FTL clock.
    last_write: u64,
    /// Retired: one of the member blocks went bad (factory-marked, erase
    /// failure, or post-program-failure retirement) and the lockstep group
    /// is permanently out of service.
    bad: bool,
    /// A program failure occurred in this superblock; it is retired instead
    /// of recycled the next time cleaning reclaims it.
    retire_pending: bool,
}

impl SuperBlock {
    fn new(slots: u32) -> Self {
        SuperBlock {
            slot_lpns: vec![UNMAPPED; slots as usize],
            write_ptr: 0,
            valid: 0,
            erase_count: 0,
            last_write: 0,
            bad: false,
            retire_pending: false,
        }
    }

    fn slots(&self) -> u32 {
        self.slot_lpns.len() as u32
    }

    fn is_full(&self) -> bool {
        self.write_ptr == self.slots()
    }

    fn invalid(&self) -> u32 {
        self.write_ptr - self.valid
    }
}

/// A stripe-mapped FTL over a [`FlashArray`].
///
/// Every logical page (stripe) occupies `chunk_pages` consecutive flash
/// pages on *each* element; all elements are programmed and erased in
/// lockstep, so the mapping is per-superblock-slot rather than per flash
/// page.
#[derive(Clone, Debug)]
pub struct StripeFtl {
    flash: FlashArray,
    config: FtlConfig,
    /// Flash pages per element that one stripe occupies.
    chunk_pages: u32,
    /// Slots (stripes) per superblock.
    slots_per_superblock: u32,
    logical_pages: u64,
    /// Logical stripe -> global slot index, or `UNMAPPED`.
    map: Vec<u64>,
    superblocks: Vec<SuperBlock>,
    free_superblocks: Vec<u32>,
    active_superblock: Option<u32>,
    open: Option<OpenStripe>,
    /// Whether sequential sub-stripe writes are coalesced in controller RAM
    /// before being flushed (the device-side merge-and-align scheme of
    /// §3.4).  When disabled, every write is issued to flash as it arrives.
    coalesce: bool,
    free_slots: u64,
    total_slots: u64,
    stats: FtlStats,
    /// Victim-selection policy for superblock reclamation (built from
    /// [`FtlConfig::cleaning_policy`]).
    policy: AnyPolicy,
    /// Logical clock: host stripe writes served so far.
    clock: u64,
    /// When enabled, every cleaning victim (superblock index) is appended
    /// here; used by tests to pin victim sequences across refactors.
    victim_trace: Option<Vec<u32>>,
    /// Incremental victim-selection index over the superblocks (one
    /// "block" of `slots_per_superblock` slot-pages per superblock),
    /// maintained on every slot-state change.
    index: VictimIndex,
    /// Telemetry sink for GC and reliability instants; detached (free) by
    /// default.
    telemetry: TelemetryHandle,
}

impl StripeFtl {
    /// Builds a stripe-mapped FTL.  `stripe_bytes` must be a multiple of
    /// `elements × page_bytes`; the common configurations are 32 KB (one
    /// flash page per element on an 8-package gang, Table 3) and 1 MB
    /// (32 pages per element, S2slc in Figure 2).
    pub fn new(
        geometry: FlashGeometry,
        timing: FlashTiming,
        config: FtlConfig,
        stripe_bytes: u64,
    ) -> Result<Self, FtlError> {
        Self::with_reliability(
            geometry,
            timing,
            config,
            stripe_bytes,
            ReliabilityConfig::none(),
        )
    }

    /// Builds a stripe-mapped FTL over a flash array with the given
    /// reliability model.  A factory-bad block in *any* element retires the
    /// whole lockstep superblock up front.
    pub fn with_reliability(
        geometry: FlashGeometry,
        timing: FlashTiming,
        config: FtlConfig,
        stripe_bytes: u64,
        reliability: ReliabilityConfig,
    ) -> Result<Self, FtlError> {
        config.validate()?;
        reliability
            .validate()
            .map_err(|reason| FtlError::InvalidConfig { reason })?;
        let flash = FlashArray::with_reliability(geometry, timing, reliability)?;
        let elements = geometry.elements() as u64;
        let row_bytes = elements * geometry.page_bytes as u64;
        if stripe_bytes == 0 || !stripe_bytes.is_multiple_of(row_bytes) {
            return Err(FtlError::InvalidConfig {
                reason: format!(
                    "stripe size {stripe_bytes} must be a positive multiple of \
                     elements × page size ({row_bytes})"
                ),
            });
        }
        let chunk_pages = (stripe_bytes / row_bytes) as u32;
        if chunk_pages > geometry.pages_per_block {
            return Err(FtlError::InvalidConfig {
                reason: format!(
                    "stripe chunk of {chunk_pages} pages exceeds block size of {} pages",
                    geometry.pages_per_block
                ),
            });
        }
        let slots_per_superblock = geometry.pages_per_block / chunk_pages;
        let superblock_count = geometry.blocks_per_element();
        let total_slots = superblock_count as u64 * slots_per_superblock as u64;
        // A factory-bad block in any element poisons its whole lockstep
        // superblock.
        let mut superblocks: Vec<SuperBlock> = (0..superblock_count)
            .map(|_| SuperBlock::new(slots_per_superblock))
            .collect();
        let mut bad_superblocks = 0u64;
        for (idx, sb) in superblocks.iter_mut().enumerate() {
            let any_bad = (0..geometry.elements()).any(|e| {
                flash
                    .element(ElementId(e))
                    .expect("element in range")
                    .block(idx as u32)
                    .expect("block in range")
                    .is_bad()
            });
            if any_bad {
                sb.bad = true;
                bad_superblocks += 1;
            }
        }
        let bad_slots = bad_superblocks * slots_per_superblock as u64;
        // As in the page-mapped FTL, never export more than is placeable
        // without cleaning: superblocks reserved for GC hold no host data,
        // and retired superblocks hold nothing at all.
        let reserved_slots = config.gc_reserved_blocks as u64 * slots_per_superblock as u64;
        let placeable = total_slots
            .saturating_sub(reserved_slots)
            .saturating_sub(bad_slots);
        let logical_pages = (((total_slots as f64) * (1.0 - config.overprovisioning)).floor()
            as u64)
            .min(placeable);
        if logical_pages == 0 {
            return Err(FtlError::InvalidConfig {
                reason: "geometry too small: no logical stripes exported".to_string(),
            });
        }
        let policy = config.cleaning_policy.build();
        let free_superblocks: Vec<u32> = (0..superblock_count)
            .rev()
            .filter(|&sb| !superblocks[sb as usize].bad)
            .collect();
        let mut index = VictimIndex::new(superblock_count, slots_per_superblock);
        for (sb, state) in superblocks.iter().enumerate() {
            if state.bad {
                index.mark_bad(sb as u32);
            }
        }
        Ok(StripeFtl {
            flash,
            config,
            chunk_pages,
            slots_per_superblock,
            logical_pages,
            map: vec![UNMAPPED; logical_pages as usize],
            superblocks,
            free_superblocks,
            active_superblock: None,
            open: None,
            coalesce: true,
            free_slots: total_slots - bad_slots,
            total_slots,
            stats: FtlStats::default(),
            policy,
            clock: 0,
            victim_trace: None,
            index,
            telemetry: TelemetryHandle::noop(),
        })
    }

    /// Starts recording every cleaning victim (superblock index).
    ///
    /// A validation/debugging aid, like [`crate::PageFtl::enable_victim_trace`]:
    /// tests use it to pin the victim sequence of a deterministic trace.
    /// Recording is off by default and unbounded when on.
    pub fn enable_victim_trace(&mut self) {
        self.victim_trace = Some(Vec::new());
    }

    /// The victims recorded since [`StripeFtl::enable_victim_trace`].
    pub fn victim_trace(&self) -> &[u32] {
        self.victim_trace.as_deref().unwrap_or(&[])
    }

    /// Enables or disables write coalescing.  With coalescing off, every
    /// sub-stripe write is flushed to flash as it arrives ("issuing the
    /// writes as they arrive", the Table 3 baseline); with it on, the FTL
    /// merges sequential writes and aligns flushes to stripe boundaries.
    pub fn set_coalescing(&mut self, coalesce: bool) {
        self.coalesce = coalesce;
    }

    /// Whether write coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Stripe (logical page) size in bytes.
    pub fn stripe_bytes(&self) -> u64 {
        self.flash.geometry().elements() as u64
            * self.chunk_pages as u64
            * self.flash.geometry().page_bytes as u64
    }

    /// The FTL configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Read-only access to the underlying flash array.
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Validates the incremental victim index against a from-scratch
    /// recompute over the superblock table, and proves every built-in
    /// policy picks the same victim from both representations.  See
    /// [`crate::PageFtl::check_victim_index`].
    pub fn check_victim_index(&mut self) -> Result<(), String> {
        let rows: Vec<crate::indexcheck::CandidateRow> = self
            .superblocks
            .iter()
            .enumerate()
            .filter(|(_, sb)| !sb.bad && sb.invalid() > 0)
            .map(|(i, sb)| {
                (
                    i as u32,
                    sb.valid,
                    sb.invalid(),
                    sb.erase_count,
                    sb.last_write,
                )
            })
            .collect();
        crate::indexcheck::check_against_recompute(&self.index, &rows, "superblocks")?;
        let ctx = PickContext {
            clock: self.clock,
            exclude: self.active_superblock,
            exclude2: None,
        };
        crate::indexcheck::check_policy_equivalence(
            &mut self.index,
            &rows,
            self.slots_per_superblock,
            &ctx,
            "superblocks",
        )
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 >= self.logical_pages {
            Err(FtlError::LpnOutOfRange {
                lpn,
                logical_pages: self.logical_pages,
            })
        } else {
            Ok(())
        }
    }

    fn slot_superblock(&self, slot: u64) -> u32 {
        (slot / self.slots_per_superblock as u64) as u32
    }

    fn slot_row(&self, slot: u64) -> u32 {
        (slot % self.slots_per_superblock as u64) as u32
    }

    /// Emits the flash-state mutations and ops for reading `pages` physical
    /// pages of the stripe stored in `slot`, starting at element 0.
    ///
    /// Returns whether any page stayed uncorrectable after its ECC
    /// retries; the per-retry latency ops are appended alongside the reads.
    /// The host-read path surfaces the flag as a typed completion error;
    /// the RMW path ignores it (the stripe is being overwritten anyway).
    fn read_slot_pages(
        &mut self,
        slot: u64,
        pages: u32,
        purpose: OpPurpose,
        ops: &mut Vec<FlashOp>,
    ) -> Result<bool, FtlError> {
        let superblock = self.slot_superblock(slot);
        let row = self.slot_row(slot);
        let elements = self.flash.geometry().elements();
        let mut remaining = pages;
        let mut uncorrectable = false;
        'outer: for chunk in 0..self.chunk_pages {
            for element in 0..elements {
                if remaining == 0 {
                    break 'outer;
                }
                let page = row * self.chunk_pages + chunk;
                let status = self.flash.read(ossd_flash::PhysPageAddr {
                    element: ElementId(element),
                    block: superblock,
                    page,
                })?;
                self.stats.pages_read_host += 1;
                ops.push(FlashOp {
                    element: ElementId(element),
                    kind: FlashOpKind::ReadPage,
                    purpose,
                });
                for _ in 0..status.retries {
                    ops.push(FlashOp {
                        element: ElementId(element),
                        kind: FlashOpKind::ReadRetry,
                        purpose,
                    });
                }
                if status.retries > 0 {
                    self.telemetry.instant_now(
                        Track::Element(element),
                        EventKind::EccRetry,
                        status.retries as u64,
                        element as u64,
                    );
                }
                uncorrectable |= status.uncorrectable;
                remaining -= 1;
            }
        }
        Ok(uncorrectable)
    }

    /// Invalidates every physical page of the stripe stored in `slot`.
    fn invalidate_slot(&mut self, slot: u64) -> Result<(), FtlError> {
        let superblock = self.slot_superblock(slot);
        let row = self.slot_row(slot);
        let elements = self.flash.geometry().elements();
        for chunk in 0..self.chunk_pages {
            for element in 0..elements {
                let page = row * self.chunk_pages + chunk;
                self.flash.invalidate(ossd_flash::PhysPageAddr {
                    element: ElementId(element),
                    block: superblock,
                    page,
                })?;
            }
        }
        let sb = &mut self.superblocks[superblock as usize];
        sb.slot_lpns[row as usize] = UNMAPPED;
        sb.valid -= 1;
        self.index.on_invalidate(superblock);
        Ok(())
    }

    fn ensure_active_superblock(&mut self, allow_reserve: bool) -> Result<u32, FtlError> {
        let need_new = match self.active_superblock {
            Some(sb) => self.superblocks[sb as usize].is_full(),
            None => true,
        };
        if !need_new {
            return Ok(self.active_superblock.expect("checked above"));
        }
        let reserve = if allow_reserve {
            0
        } else {
            self.config.gc_reserved_blocks as usize
        };
        if self.free_superblocks.len() <= reserve {
            return Err(FtlError::NoFreeBlocks { element: 0 });
        }
        // Lowest erase count first.
        let mut best_idx = 0usize;
        let mut best_erases = u32::MAX;
        for (i, &sb) in self.free_superblocks.iter().enumerate() {
            let erases = self.superblocks[sb as usize].erase_count;
            if erases < best_erases {
                best_erases = erases;
                best_idx = i;
            }
        }
        let sb = self.free_superblocks.swap_remove(best_idx);
        self.active_superblock = Some(sb);
        Ok(sb)
    }

    /// Programs a whole stripe for `lpn` into the active superblock and
    /// updates the mapping.  Emits one program op per physical page.
    ///
    /// A program failure on any element burns the whole lockstep row: the
    /// already-programmed siblings are invalidated, the remaining positions
    /// are padded past the failed row, the superblock is scheduled for
    /// retirement, and the stripe is re-programmed on a fresh superblock.
    fn program_stripe(
        &mut self,
        lpn: Lpn,
        purpose: OpPurpose,
        allow_reserve: bool,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let mut allow_reserve = allow_reserve;
        'attempt: loop {
            let superblock = self.ensure_active_superblock(allow_reserve)?;
            let row = self.superblocks[superblock as usize].write_ptr;
            let elements = self.flash.geometry().elements();
            for chunk in 0..self.chunk_pages {
                for element in 0..elements {
                    let addr = match self.flash.program(ElementId(element), superblock) {
                        Ok(addr) => addr,
                        Err(FlashError::ProgramFailed { .. }) => {
                            // The failed attempt still occupied the element
                            // for a full program pass (the erase-failure
                            // convention); the lockstep padding of the
                            // remaining positions costs nothing.
                            ops.push(FlashOp {
                                element: ElementId(element),
                                kind: if purpose.is_background() {
                                    FlashOpKind::CopybackPage
                                } else {
                                    FlashOpKind::ProgramPage
                                },
                                purpose,
                            });
                            self.abandon_row(superblock, row, chunk, element)?;
                            // Failure recovery may dip into the GC reserve
                            // even on the host path — re-programming the
                            // stripe is relocation of data that would
                            // otherwise be lost.
                            allow_reserve = true;
                            continue 'attempt;
                        }
                        Err(e) => return Err(e.into()),
                    };
                    debug_assert_eq!(addr.page, row * self.chunk_pages + chunk);
                    ops.push(FlashOp {
                        element: ElementId(element),
                        kind: if purpose.is_background() {
                            FlashOpKind::CopybackPage
                        } else {
                            FlashOpKind::ProgramPage
                        },
                        purpose,
                    });
                    if purpose.is_background() {
                        self.stats.gc_pages_moved += 1;
                    } else {
                        self.stats.pages_programmed_host += 1;
                    }
                }
            }
            let slot = superblock as u64 * self.slots_per_superblock as u64 + row as u64;
            // Supersede the previous copy of this stripe, if any.
            let old = self.map[lpn.index()];
            if old != UNMAPPED {
                self.invalidate_slot(old)?;
            }
            let sb = &mut self.superblocks[superblock as usize];
            sb.slot_lpns[row as usize] = lpn.0;
            sb.write_ptr += 1;
            sb.valid += 1;
            sb.last_write = self.clock;
            self.index.on_program(superblock, self.clock);
            self.map[lpn.index()] = slot;
            self.free_slots -= 1;
            return Ok(());
        }
    }

    /// Burns the rest of a lockstep row after a program failure at
    /// `(failed_chunk, failed_element)`: invalidates the siblings already
    /// programmed for this stripe, pads the positions not yet reached (the
    /// failed page itself was consumed by the flash), consumes the slot,
    /// and schedules the superblock for retirement.
    fn abandon_row(
        &mut self,
        superblock: u32,
        row: u32,
        failed_chunk: u32,
        failed_element: u32,
    ) -> Result<(), FtlError> {
        let elements = self.flash.geometry().elements();
        for chunk in 0..self.chunk_pages {
            for element in 0..elements {
                let before_failure =
                    chunk < failed_chunk || (chunk == failed_chunk && element < failed_element);
                let is_failed = chunk == failed_chunk && element == failed_element;
                if before_failure {
                    self.flash.invalidate(ossd_flash::PhysPageAddr {
                        element: ElementId(element),
                        block: superblock,
                        page: row * self.chunk_pages + chunk,
                    })?;
                } else if !is_failed {
                    self.flash.skip_page(ElementId(element), superblock)?;
                }
            }
        }
        self.telemetry.instant_now(
            Track::Element(failed_element),
            EventKind::ProgramFail,
            superblock as u64,
            failed_element as u64,
        );
        let sb = &mut self.superblocks[superblock as usize];
        sb.write_ptr += 1;
        sb.retire_pending = true;
        // The burned row is a fresh stale slot: the superblock becomes (or
        // stays) a cleaning candidate, which is how it gets reclaimed and
        // then retired.
        self.index.on_skip(superblock);
        self.free_slots -= 1;
        // Stop appending to the suspect superblock; cleaning will reclaim
        // and retire it.
        self.active_superblock = None;
        Ok(())
    }

    /// Flushes the open stripe buffer, performing a read-modify-write when
    /// the buffer covers only part of the stripe and an older copy exists.
    fn flush_open(&mut self, ops: &mut Vec<FlashOp>) -> Result<(), FtlError> {
        let Some(open) = self.open.take() else {
            return Ok(());
        };
        let stripe_bytes = self.stripe_bytes();
        let old_slot = self.map[open.lpn.index()];
        if open.covered_bytes < stripe_bytes && old_slot != UNMAPPED {
            // Read back the part of the old stripe the buffer does not
            // cover before rewriting the whole stripe.
            let page_bytes = self.flash.geometry().page_bytes as u64;
            let missing_bytes = stripe_bytes - open.covered_bytes;
            let missing_pages = missing_bytes.div_ceil(page_bytes) as u32;
            // An uncorrectable read here would corrupt the merged stripe on
            // real hardware; the simulator records it in the reliability
            // counters and lets the overwrite proceed.
            let _ = self.read_slot_pages(old_slot, missing_pages, OpPurpose::HostWrite, ops)?;
        }
        self.program_stripe(open.lpn, OpPurpose::HostWrite, false, ops)?;
        Ok(())
    }

    fn free_slot_fraction(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        self.free_slots as f64 / self.total_slots as f64
    }

    /// Policy-driven cleaning of one superblock; returns false when nothing
    /// could be reclaimed.  The incremental [`VictimIndex`] treats each
    /// superblock as one "block" of `slots_per_superblock` pages (the
    /// mapping granularity of this FTL), so the same policy objects drive
    /// both FTLs; the active superblock is excluded at pick time.
    ///
    /// Deliberate behaviour change vs. the pre-policy cleaner: the shared
    /// `Greedy` breaks equal-staleness ties towards the superblock with
    /// fewer erases, where the old inline loop kept the first candidate
    /// regardless of wear.  Both FTLs' greedy victim sequences are now
    /// pinned bit-for-bit across index refactors
    /// (`greedy_victim_sequence_is_pinned_across_index_refactors`).
    fn clean_one_superblock(&mut self, ops: &mut Vec<FlashOp>) -> Result<bool, FtlError> {
        let ctx = PickContext {
            clock: self.clock,
            exclude: self.active_superblock,
            exclude2: None,
        };
        let Some(victim) = self.policy.select_from_index(&mut self.index, &ctx) else {
            return Ok(false);
        };
        if let Some(trace) = self.victim_trace.as_mut() {
            trace.push(victim);
        }
        self.telemetry.instant_now(
            Track::Device,
            EventKind::GcVictimPick,
            victim as u64,
            OpPurpose::Clean.telemetry_code(),
        );
        // Move live stripes.
        let live: Vec<(u32, u64)> = self.superblocks[victim as usize]
            .slot_lpns
            .iter()
            .enumerate()
            .filter(|(_, &lpn)| lpn != UNMAPPED)
            .map(|(row, &lpn)| (row as u32, lpn))
            .collect();
        for (row, lpn) in live {
            let slot = victim as u64 * self.slots_per_superblock as u64 + row as u64;
            // Read the stripe out (internal move) then rewrite it at the
            // append point.
            self.read_slot_pages_internal(slot, ops)?;
            self.program_stripe(Lpn(lpn), OpPurpose::Clean, true, ops)?;
            let _ = slot;
        }
        let elements = self.flash.geometry().elements();
        let reclaimed = self.superblocks[victim as usize].write_ptr as u64;
        // Deferred retirement after a program failure: the live stripes are
        // out, so take the whole lockstep group out of service without
        // spending erases on it.
        if self.superblocks[victim as usize].retire_pending {
            self.retire_superblock(victim)?;
            return Ok(true);
        }
        // Erase the victim's block on every element; an erase failure on
        // any element retires the whole group (a grown bad superblock).
        let mut erase_failed = false;
        for element in 0..elements {
            match self.flash.erase(ElementId(element), victim) {
                Ok(()) => {}
                Err(FlashError::EraseFailed { .. }) => {
                    // The failed erase still took the erase latency; stop
                    // erasing the siblings — the group is dead either way.
                    ops.push(FlashOp {
                        element: ElementId(element),
                        kind: FlashOpKind::EraseBlock,
                        purpose: OpPurpose::Clean,
                    });
                    self.telemetry.instant_now(
                        Track::Element(element),
                        EventKind::EraseFail,
                        victim as u64,
                        element as u64,
                    );
                    erase_failed = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
            ops.push(FlashOp {
                element: ElementId(element),
                kind: FlashOpKind::EraseBlock,
                purpose: OpPurpose::Clean,
            });
        }
        if erase_failed {
            self.retire_superblock(victim)?;
            return Ok(true);
        }
        let sb = &mut self.superblocks[victim as usize];
        sb.slot_lpns.fill(UNMAPPED);
        sb.write_ptr = 0;
        sb.valid = 0;
        sb.erase_count += 1;
        self.index.on_erase(victim);
        self.free_superblocks.push(victim);
        self.free_slots += reclaimed;
        self.stats.gc_blocks_erased += elements as u64;
        Ok(true)
    }

    /// Takes a superblock permanently out of service: retires every
    /// element's block (live data must already have been relocated) and
    /// forfeits its unwritten slots from the free-space accounting.
    fn retire_superblock(&mut self, superblock: u32) -> Result<(), FtlError> {
        let elements = self.flash.geometry().elements();
        for element in 0..elements {
            // Idempotent: the element whose erase failed is already bad.
            self.flash.retire(ElementId(element), superblock)?;
        }
        self.telemetry
            .instant_now(Track::Device, EventKind::BlockRetired, superblock as u64, 0);
        let sb = &mut self.superblocks[superblock as usize];
        debug_assert_eq!(sb.valid, 0, "retiring a superblock with live stripes");
        let unwritten = (sb.slots() - sb.write_ptr) as u64;
        sb.bad = true;
        sb.retire_pending = false;
        self.index.on_retire(superblock);
        self.free_slots -= unwritten;
        Ok(())
    }

    /// Reads every page of a live stripe without bus transfers (GC move).
    fn read_slot_pages_internal(
        &mut self,
        slot: u64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let superblock = self.slot_superblock(slot);
        let row = self.slot_row(slot);
        let elements = self.flash.geometry().elements();
        for chunk in 0..self.chunk_pages {
            for element in 0..elements {
                let page = row * self.chunk_pages + chunk;
                // Cleaning moves the stripe regardless of its raw error
                // count; the reliability outcome is recorded in the flash
                // counters but does not abort the relocation.
                let _ = self.flash.read(ossd_flash::PhysPageAddr {
                    element: ElementId(element),
                    block: superblock,
                    page,
                })?;
                ops.push(FlashOp {
                    element: ElementId(element),
                    kind: FlashOpKind::CopybackPage,
                    purpose: OpPurpose::Clean,
                });
            }
        }
        Ok(())
    }

    fn maybe_clean(&mut self, ops: &mut Vec<FlashOp>) -> Result<(), FtlError> {
        let free_fraction = self.free_slot_fraction();
        if free_fraction >= self.config.gc_low_watermark {
            return Ok(());
        }
        self.stats.gc_invocations += 1;
        self.telemetry.instant_now(
            Track::Device,
            EventKind::GcTrigger,
            (free_fraction * 1e6) as u64,
            0,
        );
        let mut passes = 0;
        while self.free_slot_fraction() < self.config.gc_low_watermark && passes < 4 {
            if !self.clean_one_superblock(ops)? {
                break;
            }
            passes += 1;
        }
        Ok(())
    }
}

impl Ftl for StripeFtl {
    fn geometry(&self) -> &FlashGeometry {
        self.flash.geometry()
    }

    fn logical_page_bytes(&self) -> u64 {
        self.stripe_bytes()
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn read_into(
        &mut self,
        lpn: Lpn,
        covered_bytes: u64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<bool, FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_reads += 1;
        // Reads of a stripe still sitting in the open buffer are served from
        // RAM.
        if let Some(open) = self.open {
            if open.lpn == lpn {
                return Ok(false);
            }
        }
        let slot = self.map[lpn.index()];
        if slot == UNMAPPED {
            return Ok(false);
        }
        let page_bytes = self.flash.geometry().page_bytes as u64;
        let pages = covered_bytes
            .min(self.stripe_bytes())
            .div_ceil(page_bytes)
            .max(1) as u32;
        let uncorrectable = self.read_slot_pages(slot, pages, OpPurpose::HostRead, ops)?;
        if uncorrectable {
            self.telemetry
                .instant_now(Track::Device, EventKind::ReadUncorrectable, lpn.0, 0);
        }
        Ok(uncorrectable)
    }

    fn write_into(
        &mut self,
        lpn: Lpn,
        covered_bytes: u64,
        _ctx: &WriteContext,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        self.check_lpn(lpn)?;
        self.stats.host_writes += 1;
        self.clock += 1;
        self.maybe_clean(ops)?;
        let stripe_bytes = self.stripe_bytes();
        let covered = covered_bytes.min(stripe_bytes);
        match self.open {
            Some(ref mut open) if open.lpn == lpn && self.coalesce => {
                // Sequential fill of the open stripe: absorb in RAM.
                open.covered_bytes = (open.covered_bytes + covered).min(stripe_bytes);
                if open.covered_bytes >= stripe_bytes {
                    self.flush_open(ops)?;
                }
            }
            Some(_) => {
                // A different stripe (or coalescing is disabled): the open
                // one must be written out first.
                self.flush_open(ops)?;
                self.open = Some(OpenStripe {
                    lpn,
                    covered_bytes: covered,
                });
                if covered >= stripe_bytes || !self.coalesce {
                    self.flush_open(ops)?;
                }
            }
            None => {
                self.open = Some(OpenStripe {
                    lpn,
                    covered_bytes: covered,
                });
                if covered >= stripe_bytes || !self.coalesce {
                    self.flush_open(ops)?;
                }
            }
        }
        Ok(())
    }

    fn free(&mut self, lpn: Lpn) -> Result<bool, FtlError> {
        self.check_lpn(lpn)?;
        if !self.config.honor_free {
            return Ok(false);
        }
        self.stats.frees_accepted += 1;
        if let Some(open) = self.open {
            if open.lpn == lpn {
                self.open = None;
            }
        }
        let slot = self.map[lpn.index()];
        if slot == UNMAPPED {
            return Ok(false);
        }
        self.invalidate_slot(slot)?;
        self.map[lpn.index()] = UNMAPPED;
        Ok(true)
    }

    fn flush_into(&mut self, ops: &mut Vec<FlashOp>) -> Result<(), FtlError> {
        self.flush_open(ops)
    }

    fn stats(&self) -> FtlStats {
        self.stats
    }

    fn map_stats(&self) -> ossd_mapcache::MapStats {
        // The stripe map holds one entry per logical *stripe* (not per
        // flash page), which is exactly why low-end devices get away with
        // a fully resident table: coarse mapping shrinks it by the
        // stripe-to-page ratio.  Resident equals total — nothing is paged.
        let bytes = self.map.len() as u64 * ossd_mapcache::ENTRY_BYTES;
        ossd_mapcache::MapStats {
            bytes_resident: bytes,
            bytes_total: bytes,
            ..ossd_mapcache::MapStats::default()
        }
    }

    fn free_page_fraction(&self) -> f64 {
        self.free_slot_fraction()
    }

    fn is_mapped(&self, lpn: Lpn) -> bool {
        if lpn.0 >= self.logical_pages {
            return false;
        }
        self.map[lpn.index()] != UNMAPPED || self.open.map(|o| o.lpn == lpn).unwrap_or(false)
    }

    fn reliability_counters(&self) -> ossd_flash::ReliabilityCounters {
        self.flash.reliability_counters()
    }

    fn wear_summary(&self) -> ossd_flash::WearSummary {
        self.flash.wear_summary()
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    fn gc_backlog_blocks(&self) -> u64 {
        self.index.len() as u64
    }

    fn gc_stale_pages(&self) -> u64 {
        self.index.stale_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_flash::FlashGeometry;

    /// Tiny geometry: 2 elements × 8 blocks × 8 pages × 4 KB.
    /// With a 8 KB stripe (1 page per element), a superblock holds 8 slots.
    fn tiny_stripe_ftl(config: FtlConfig, stripe_bytes: u64) -> StripeFtl {
        StripeFtl::new(
            FlashGeometry::tiny(),
            FlashTiming::slc(),
            config,
            stripe_bytes,
        )
        .unwrap()
    }

    /// Regression test: a full sequential fill of the advertised stripe
    /// capacity must succeed (reserved superblocks are not exported).
    #[test]
    fn full_sequential_fill_of_advertised_capacity_succeeds() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        let logical = ftl.logical_pages();
        assert_eq!(logical, 56, "1 reserved superblock caps the export");
        for lpn in 0..logical {
            ftl.write(Lpn(lpn), 8192, &WriteContext::idle()).unwrap();
        }
        ftl.flush().unwrap();
        assert_eq!(ftl.flash().valid_pages(), logical * 2);
    }

    #[test]
    fn stripe_size_validation() {
        let g = FlashGeometry::tiny();
        let t = FlashTiming::slc();
        // Not a multiple of elements × page size.
        assert!(StripeFtl::new(g, t, FtlConfig::default(), 4096).is_err());
        assert!(StripeFtl::new(g, t, FtlConfig::default(), 0).is_err());
        // Chunk larger than a block.
        assert!(StripeFtl::new(g, t, FtlConfig::default(), 2 * 8 * 4096 * 16).is_err());
        // Valid: one page per element.
        let ftl = StripeFtl::new(g, t, FtlConfig::default(), 8192).unwrap();
        assert_eq!(ftl.stripe_bytes(), 8192);
        assert_eq!(ftl.logical_page_bytes(), 8192);
    }

    #[test]
    fn full_stripe_write_programs_every_element_once() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        let ops = ftl.write(Lpn(0), 8192, &WriteContext::idle()).unwrap();
        let programs = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::ProgramPage)
            .count();
        assert_eq!(programs, 2); // one page on each of the two elements
        assert!(ftl.is_mapped(Lpn(0)));
        assert_eq!(ftl.stats().pages_programmed_host, 2);
        assert_eq!(ftl.stats().pages_read_host, 0);
    }

    #[test]
    fn partial_write_is_buffered_until_another_stripe_is_touched() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        // Half a stripe: absorbed in RAM, no flash ops yet.
        let ops = ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        assert!(ops.is_empty());
        assert!(ftl.is_mapped(Lpn(0)), "open stripe counts as mapped");
        // Touching another stripe forces the partial one out (no RMW reads
        // because stripe 0 had never been written before).
        let ops = ftl.write(Lpn(1), 4096, &WriteContext::idle()).unwrap();
        let programs = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::ProgramPage)
            .count();
        assert_eq!(programs, 2);
        assert!(ops.iter().all(|o| o.kind != FlashOpKind::ReadPage));
    }

    #[test]
    fn sub_stripe_overwrite_causes_read_modify_write() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        // Write the full stripe first so an old copy exists.
        ftl.write(Lpn(0), 8192, &WriteContext::idle()).unwrap();
        // Now overwrite half of it and force the flush by touching stripe 1.
        ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        let ops = ftl.write(Lpn(1), 8192, &WriteContext::idle()).unwrap();
        let reads = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::ReadPage)
            .count();
        let programs = ops
            .iter()
            .filter(|o| o.kind == FlashOpKind::ProgramPage)
            .count();
        assert_eq!(reads, 1, "missing half of the old stripe must be read");
        assert_eq!(programs, 4, "both stripes are programmed in full");
        assert!(ftl.stats().write_amplification() > 1.0);
    }

    #[test]
    fn sequential_fill_of_a_stripe_flushes_once_without_reads() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        let first = ftl.write(Lpn(3), 4096, &WriteContext::idle()).unwrap();
        assert!(first.is_empty());
        let second = ftl.write(Lpn(3), 4096, &WriteContext::idle()).unwrap();
        // The stripe is now fully covered and flushed with no reads.
        assert_eq!(
            second
                .iter()
                .filter(|o| o.kind == FlashOpKind::ProgramPage)
                .count(),
            2
        );
        assert!(second.iter().all(|o| o.kind != FlashOpKind::ReadPage));
    }

    #[test]
    fn explicit_flush_drains_the_open_stripe() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        ftl.write(Lpn(0), 4096, &WriteContext::idle()).unwrap();
        let ops = ftl.flush().unwrap();
        assert!(!ops.is_empty());
        // A second flush is a no-op.
        assert!(ftl.flush().unwrap().is_empty());
    }

    #[test]
    fn reads_touch_only_needed_pages() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        ftl.write(Lpn(0), 8192, &WriteContext::idle()).unwrap();
        // 4 KB read needs one page; full-stripe read needs two.
        assert_eq!(ftl.read(Lpn(0), 4096).unwrap().ops.len(), 1);
        assert_eq!(ftl.read(Lpn(0), 8192).unwrap().ops.len(), 2);
        // Reads of unwritten stripes and of the open buffer cost nothing.
        assert!(ftl.read(Lpn(5), 4096).unwrap().ops.is_empty());
        ftl.write(Lpn(6), 4096, &WriteContext::idle()).unwrap();
        assert!(ftl.read(Lpn(6), 4096).unwrap().ops.is_empty());
    }

    #[test]
    fn overwrite_churn_triggers_cleaning() {
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.2, 0.05);
        let mut ftl = tiny_stripe_ftl(config, 8192);
        let logical = ftl.logical_pages();
        for _ in 0..8 {
            for lpn in 0..logical {
                ftl.write(Lpn(lpn), 8192, &WriteContext::idle()).unwrap();
            }
        }
        let s = ftl.stats();
        assert!(s.gc_blocks_erased > 0, "cleaning never ran");
        assert!(ftl.free_page_fraction() > 0.0);
    }

    /// Pins the stripe FTL's greedy victim sequence on a deterministic
    /// strided-overwrite churn.  The expected fingerprint was captured from
    /// the scan-based victim selection before the incremental
    /// [`ossd_gc::VictimIndex`] landed; the index must reproduce it
    /// bit-for-bit.
    #[test]
    fn greedy_victim_sequence_is_pinned_across_index_refactors() {
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.2, 0.05);
        let mut ftl = tiny_stripe_ftl(config, 8192);
        ftl.enable_victim_trace();
        let logical = ftl.logical_pages();
        for round in 0..8u64 {
            for i in 0..logical {
                let lpn = (i * 13 + round) % logical;
                ftl.write(Lpn(lpn), 8192, &WriteContext::idle()).unwrap();
            }
        }
        let trace = ftl.victim_trace();
        assert_eq!(trace.len(), 164, "victim count diverged");
        let fingerprint = trace.iter().fold(0u64, |h, &v| {
            h.wrapping_mul(1_000_003).wrapping_add(v as u64)
        });
        assert_eq!(
            fingerprint, 0x7d23_9f6a_7eb2_10ca,
            "victim sequence fingerprint diverged"
        );
    }

    #[test]
    fn free_with_honor_invalidates_stripe() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::informed(), 8192);
        ftl.write(Lpn(2), 8192, &WriteContext::idle()).unwrap();
        assert!(ftl.free(Lpn(2)).unwrap());
        assert!(!ftl.is_mapped(Lpn(2)));
        assert_eq!(ftl.flash().valid_pages(), 0);
        // Uninformed configuration ignores frees.
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        ftl.write(Lpn(2), 8192, &WriteContext::idle()).unwrap();
        assert!(!ftl.free(Lpn(2)).unwrap());
        assert!(ftl.is_mapped(Lpn(2)));
    }

    #[test]
    fn out_of_range_lpn_rejected() {
        let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
        let bad = Lpn(ftl.logical_pages());
        assert!(ftl.read(bad, 4096).is_err());
        assert!(ftl.write(bad, 4096, &WriteContext::idle()).is_err());
        assert!(ftl.free(bad).is_err());
    }

    fn faulty_stripe_ftl(faults: ossd_flash::FaultConfig, config: FtlConfig) -> StripeFtl {
        let reliability = ReliabilityConfig {
            faults,
            ..ReliabilityConfig::none()
        };
        StripeFtl::with_reliability(
            FlashGeometry::tiny(),
            FlashTiming::slc(),
            config,
            8192,
            reliability,
        )
        .unwrap()
    }

    #[test]
    fn factory_bad_superblocks_shrink_the_export() {
        let faults = ossd_flash::FaultConfig {
            seed: 29,
            factory_bad_prob: 0.2,
            ..ossd_flash::FaultConfig::none()
        };
        let mut ftl = faulty_stripe_ftl(faults, FtlConfig::default());
        let retired = ftl.wear_summary().retired_blocks;
        assert!(retired > 0, "some blocks should be factory-marked");
        let logical = ftl.logical_pages();
        assert!(logical < 56, "export {logical} must shrink below 56");
        for lpn in 0..logical {
            ftl.write(Lpn(lpn), 8192, &WriteContext::idle()).unwrap();
        }
        ftl.flush().unwrap();
        assert_eq!(ftl.flash().valid_pages(), logical * 2);
    }

    #[test]
    fn program_failures_burn_the_row_and_reprogram_the_stripe() {
        let faults = ossd_flash::FaultConfig {
            seed: 31,
            program_fail_base: 0.002,
            ..ossd_flash::FaultConfig::none()
        };
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.2, 0.05);
        let mut ftl = faulty_stripe_ftl(faults, config);
        let logical = ftl.logical_pages();
        let mut died = false;
        'churn: for _ in 0..10 {
            for lpn in 0..logical {
                match ftl.write(Lpn(lpn), 8192, &WriteContext::idle()) {
                    Ok(_) => {}
                    Err(FtlError::NoFreeBlocks { .. }) => {
                        died = true;
                        break 'churn;
                    }
                    Err(e) => panic!("unexpected stripe FTL error: {e}"),
                }
            }
        }
        let c = ftl.reliability_counters();
        assert!(c.program_fails > 0, "no program failures injected");
        if !died {
            ftl.flush().unwrap();
            assert_eq!(ftl.flash().valid_pages(), logical * 2);
        }
    }

    #[test]
    fn erase_failures_retire_whole_superblocks() {
        let faults = ossd_flash::FaultConfig {
            seed: 37,
            erase_fail_base: 0.05,
            ..ossd_flash::FaultConfig::none()
        };
        let config = FtlConfig::default()
            .with_overprovisioning(0.25)
            .with_watermarks(0.2, 0.05);
        let mut ftl = faulty_stripe_ftl(faults, config);
        let logical = ftl.logical_pages();
        let mut died = false;
        'churn: for _ in 0..12 {
            for lpn in 0..logical {
                match ftl.write(Lpn(lpn), 8192, &WriteContext::idle()) {
                    Ok(_) => {}
                    Err(FtlError::NoFreeBlocks { .. }) => {
                        died = true;
                        break 'churn;
                    }
                    Err(e) => panic!("unexpected stripe FTL error: {e}"),
                }
            }
        }
        let c = ftl.reliability_counters();
        assert!(c.erase_fails > 0, "no erase failures injected");
        // Retirement is per lockstep group: every element's block of the
        // failed superblock goes out of service.
        let elements = ftl.flash().geometry().elements() as u64;
        assert_eq!(c.retired_blocks % elements, 0);
        assert!(c.retired_blocks >= elements);
        if !died {
            ftl.flush().unwrap();
            assert_eq!(ftl.flash().valid_pages(), logical * 2);
        }
    }

    #[test]
    fn random_small_writes_amplify_far_more_than_sequential() {
        // The essence of Table 2's S2slc row and Figure 2: random sub-stripe
        // writes pay a full-stripe RMW, sequential full-stripe writes do not.
        let run = |lpns: &[u64]| -> f64 {
            let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
            // Pre-fill every stripe we will touch so overwrites do RMW.
            for &lpn in lpns {
                ftl.write(Lpn(lpn), 8192, &WriteContext::idle()).unwrap();
            }
            let base = ftl.stats().pages_programmed_host + ftl.stats().pages_read_host;
            for &lpn in lpns {
                ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            }
            ftl.flush().unwrap();
            let after = ftl.stats().pages_programmed_host + ftl.stats().pages_read_host;
            (after - base) as f64 / lpns.len() as f64
        };
        // "Random": alternate between far-apart stripes so nothing coalesces.
        let random_cost = run(&[0, 3, 1, 4, 2, 5]);
        // "Sequential": the same stripe is filled by consecutive writes.
        let sequential_cost = {
            let mut ftl = tiny_stripe_ftl(FtlConfig::default(), 8192);
            for lpn in 0..6u64 {
                ftl.write(Lpn(lpn), 8192, &WriteContext::idle()).unwrap();
            }
            let base = ftl.stats().pages_programmed_host + ftl.stats().pages_read_host;
            for lpn in 0..6u64 {
                ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
                ftl.write(Lpn(lpn), 4096, &WriteContext::idle()).unwrap();
            }
            ftl.flush().unwrap();
            let after = ftl.stats().pages_programmed_host + ftl.stats().pages_read_host;
            (after - base) as f64 / 12.0
        };
        assert!(
            random_cost > 1.5 * sequential_cost,
            "random cost {random_cost} should far exceed sequential cost {sequential_cost}"
        );
    }
}
