//! Shared FTL types: logical page numbers, flash operations, statistics and
//! the [`Ftl`] trait both mapping schemes implement.

use ossd_flash::{ElementId, FlashGeometry};

use crate::error::FtlError;

/// A logical page number in the device's exported address space.
///
/// The size of a logical page is an FTL property ([`Ftl::logical_page_bytes`]):
/// 4 KB for the page-mapped FTL, a whole stripe for the stripe-mapped FTL.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lpn(pub u64);

impl Lpn {
    /// The LPN as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a scheduled flash operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlashOpKind {
    /// Array read followed by a bus transfer to the controller.
    ReadPage,
    /// An ECC read-retry: the array re-reads the page with shifted
    /// thresholds and re-transfers it.  Emitted (after the initial
    /// [`FlashOpKind::ReadPage`]) once per retry the reliability model
    /// required, so marginal pages cost real latency at the device.
    ReadRetry,
    /// Bus transfer from the controller followed by an array program.
    ProgramPage,
    /// Internal read+program without a bus transfer (GC page move).
    CopybackPage,
    /// Block erase.
    EraseBlock,
    /// Demand-paged mapping: read of a translation page from the map area
    /// (a map-cache miss whose translation page is materialized on
    /// flash).  Timed like a page read — array read then bus transfer.
    MapRead,
    /// Demand-paged mapping: program of a translation page into the map
    /// area (batched dirty-entry writeback, or GC relocating a valid
    /// translation page).  Timed like a page program — bus transfer then
    /// array program.
    MapWrite,
}

/// Why an operation was issued; the device accounts foreground and
/// background (cleaning/wear-leveling) time separately, which is what
/// Table 5's "cleaning time" and Figure 3's interference measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpPurpose {
    /// Servicing a host read.
    HostRead,
    /// Servicing a host write.
    HostWrite,
    /// Foreground garbage collection (cleaning in the write path; the host
    /// write waits for it).
    Clean,
    /// Background garbage collection (idle-window cleaning driven by the
    /// device's [`ossd_gc::BackgroundCleaner`]; no host request waits).
    BackgroundClean,
    /// Explicit wear-leveling migration.
    WearLevel,
}

impl OpPurpose {
    /// Whether the operation is non-host work (cleaning or wear-leveling).
    pub fn is_background(self) -> bool {
        matches!(
            self,
            OpPurpose::Clean | OpPurpose::BackgroundClean | OpPurpose::WearLevel
        )
    }

    /// The purpose code trace events carry (see [`ossd_telemetry::purpose`]).
    pub fn telemetry_code(self) -> u64 {
        match self {
            OpPurpose::HostRead => ossd_telemetry::purpose::HOST_READ,
            OpPurpose::HostWrite => ossd_telemetry::purpose::HOST_WRITE,
            OpPurpose::Clean => ossd_telemetry::purpose::CLEAN,
            OpPurpose::BackgroundClean => ossd_telemetry::purpose::BACKGROUND_CLEAN,
            OpPurpose::WearLevel => ossd_telemetry::purpose::WEAR_LEVEL,
        }
    }
}

/// One flash-level operation for the device to schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlashOp {
    /// The element (die) the operation occupies.
    pub element: ElementId,
    /// What the element does.
    pub kind: FlashOpKind,
    /// Why it does it.
    pub purpose: OpPurpose,
}

impl FlashOp {
    /// Convenience constructor for a host read of one page.
    pub fn host_read(element: ElementId) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::ReadPage,
            purpose: OpPurpose::HostRead,
        }
    }

    /// Convenience constructor for a host program of one page.
    pub fn host_program(element: ElementId) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::ProgramPage,
            purpose: OpPurpose::HostWrite,
        }
    }

    /// Convenience constructor for an ECC read-retry of one page.
    pub fn host_read_retry(element: ElementId) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::ReadRetry,
            purpose: OpPurpose::HostRead,
        }
    }

    /// Convenience constructor for a GC copy-back move.
    pub fn gc_copyback(element: ElementId) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::CopybackPage,
            purpose: OpPurpose::Clean,
        }
    }

    /// Convenience constructor for a GC erase.
    pub fn gc_erase(element: ElementId) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::EraseBlock,
            purpose: OpPurpose::Clean,
        }
    }

    /// Convenience constructor for a translation-page read (map-cache
    /// miss) on behalf of `purpose`.
    pub fn map_read(element: ElementId, purpose: OpPurpose) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::MapRead,
            purpose,
        }
    }

    /// Convenience constructor for a translation-page program (writeback
    /// or relocation) on behalf of `purpose`.
    pub fn map_write(element: ElementId, purpose: OpPurpose) -> Self {
        FlashOp {
            element,
            kind: FlashOpKind::MapWrite,
            purpose,
        }
    }
}

/// The result of one logical-page read: the flash operations to schedule
/// plus the reliability verdict.
///
/// `ops` includes one [`FlashOpKind::ReadRetry`] per ECC retry the
/// reliability model required, so the device times marginal reads
/// truthfully.  `uncorrectable` is set when the data stayed unreadable
/// after every retry; the device completes the request with a typed error
/// status (`CompletionStatus::UncorrectableRead` in `ossd-block`) instead
/// of aborting the session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Flash operations to schedule (empty for unwritten/buffered data).
    pub ops: Vec<FlashOp>,
    /// The read failed every ECC retry; the host sees a typed error.
    pub uncorrectable: bool,
}

impl ReadOutcome {
    /// A successful read with the given operations.
    pub fn ok(ops: Vec<FlashOp>) -> Self {
        ReadOutcome {
            ops,
            uncorrectable: false,
        }
    }

    /// A read served without flash work (unwritten or buffered data).
    pub fn buffered() -> Self {
        ReadOutcome::ok(Vec::new())
    }
}

/// Context the device passes to the FTL alongside a host write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteContext {
    /// Whether high-priority (foreground) host requests are currently
    /// queued at the device.  Priority-aware cleaning postpones garbage
    /// collection while this is true (§3.6).
    pub priority_pending: bool,
}

impl WriteContext {
    /// Context with no priority requests outstanding.
    pub fn idle() -> Self {
        WriteContext {
            priority_pending: false,
        }
    }

    /// Context with priority requests outstanding.
    pub fn with_priority_pending() -> Self {
        WriteContext {
            priority_pending: true,
        }
    }
}

/// Cumulative FTL statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host logical page reads served.
    pub host_reads: u64,
    /// Host logical page writes served.
    pub host_writes: u64,
    /// Physical pages programmed on behalf of host writes (including
    /// read-modify-write expansion on the stripe FTL).
    pub pages_programmed_host: u64,
    /// Physical pages read on behalf of host operations (including RMW
    /// reads).
    pub pages_read_host: u64,
    /// Valid pages moved by foreground cleaning.
    pub gc_pages_moved: u64,
    /// Pages that cleaning skipped because the host had freed them
    /// (informed cleaning, §3.5).
    pub gc_pages_skipped_free: u64,
    /// Blocks erased by foreground cleaning.
    pub gc_blocks_erased: u64,
    /// Valid pages moved by background (idle-window) cleaning.
    pub bg_pages_moved: u64,
    /// Blocks erased by background cleaning.
    pub bg_blocks_erased: u64,
    /// Number of foreground cleaning passes.
    pub gc_invocations: u64,
    /// Foreground cleaning passes that reclaimed nothing (no block held a
    /// stale page); after such a pass the FTL stops re-triggering until a
    /// page is invalidated, so a full device is not re-scanned on every
    /// write.
    pub gc_fruitless_passes: u64,
    /// Number of cleaning passes that were postponed because priority
    /// requests were outstanding (priority-aware cleaning, §3.6).
    pub gc_postponements: u64,
    /// Valid pages moved by explicit wear-leveling.
    pub wear_level_moves: u64,
    /// Free (TRIM) notifications accepted.
    pub frees_accepted: u64,
}

impl FtlStats {
    /// Write amplification: physical pages programmed (host + foreground
    /// and background GC + wear leveling) divided by host logical pages
    /// written.  1.0 means no amplification; the paper's §3.4 discusses why
    /// SSDs exceed it.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 0.0;
        }
        (self.pages_programmed_host
            + self.gc_pages_moved
            + self.bg_pages_moved
            + self.wear_level_moves) as f64
            / self.host_writes as f64
    }

    /// Converts the counters into a [`ossd_gc::WriteAmpAccounting`] ledger
    /// (the timed device model adds stall time on top).
    pub fn accounting(&self) -> ossd_gc::WriteAmpAccounting {
        ossd_gc::WriteAmpAccounting {
            host_pages: self.host_writes,
            host_programs: self.pages_programmed_host,
            cleaning_moves: self.gc_pages_moved,
            background_moves: self.bg_pages_moved,
            wear_moves: self.wear_level_moves,
            cleaning_erases: self.gc_blocks_erased,
            background_erases: self.bg_blocks_erased,
            // The page-mapped FTL erases exactly one block per wear-level
            // migration; the move counter tracks pages, so erases are
            // reported by the device stats instead.
            wear_erases: 0,
            stall_nanos: 0,
            background_nanos: 0,
        }
    }
}

/// The interface both FTLs expose to the SSD device model.
///
/// `Send` is a supertrait so a boxed FTL (and the `Ssd` holding it) can be
/// moved to a fleet worker thread; both concrete FTLs own all their state,
/// so the bound costs nothing.
pub trait Ftl: Send {
    /// The geometry of the flash array the FTL manages.
    fn geometry(&self) -> &FlashGeometry;

    /// Size of one logical page in bytes.
    fn logical_page_bytes(&self) -> u64;

    /// Number of logical pages exported to the host (after over-provisioning).
    fn logical_pages(&self) -> u64;

    /// Exported capacity in bytes.
    fn exported_bytes(&self) -> u64 {
        self.logical_pages() * self.logical_page_bytes()
    }

    /// Reads one logical page, *appending* the flash operations to schedule
    /// to `ops` (one [`FlashOpKind::ReadRetry`] per ECC retry after the
    /// initial read) and returning whether the data stayed uncorrectable.
    /// `covered_bytes` says how many bytes of the logical page the host
    /// actually asked for, so a coarse-grained FTL only reads the physical
    /// pages it needs.
    ///
    /// This is the device's hot path: the caller owns a scratch buffer it
    /// reuses across commands, so steady-state service performs no per-read
    /// allocation.  [`Ftl::read`] is the allocating convenience wrapper.
    fn read_into(
        &mut self,
        lpn: Lpn,
        covered_bytes: u64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<bool, FtlError>;

    /// Allocating wrapper over [`Ftl::read_into`], returning a
    /// [`ReadOutcome`] (kept for tests and simple callers).
    fn read(&mut self, lpn: Lpn, covered_bytes: u64) -> Result<ReadOutcome, FtlError> {
        let mut ops = Vec::new();
        let uncorrectable = self.read_into(lpn, covered_bytes, &mut ops)?;
        Ok(ReadOutcome { ops, uncorrectable })
    }

    /// Writes one logical page, *appending* the flash operations to schedule
    /// — including any cleaning or wear-leveling work triggered by the
    /// allocation — to `ops`.  `covered_bytes` says how many bytes of the
    /// logical page the host actually supplied (a sub-page write forces the
    /// stripe FTL into a read-modify-write).
    ///
    /// Like [`Ftl::read_into`], this is the allocation-free hot path;
    /// [`Ftl::write`] is the allocating convenience wrapper.
    fn write_into(
        &mut self,
        lpn: Lpn,
        covered_bytes: u64,
        ctx: &WriteContext,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError>;

    /// Allocating wrapper over [`Ftl::write_into`] (kept for tests and
    /// simple callers).
    fn write(
        &mut self,
        lpn: Lpn,
        covered_bytes: u64,
        ctx: &WriteContext,
    ) -> Result<Vec<FlashOp>, FtlError> {
        let mut ops = Vec::new();
        self.write_into(lpn, covered_bytes, ctx, &mut ops)?;
        Ok(ops)
    }

    /// Accepts a free (TRIM) notification for one logical page.  Returns
    /// `true` if the FTL used the information (informed cleaning enabled and
    /// the page was mapped).
    fn free(&mut self, lpn: Lpn) -> Result<bool, FtlError>;

    /// Flushes any data held in the FTL's volatile buffers to flash,
    /// *appending* the flash operations to schedule to `ops`.  The default
    /// implementation does nothing; the stripe-mapped FTL uses this to
    /// drain its open-stripe coalescing buffer.
    fn flush_into(&mut self, ops: &mut Vec<FlashOp>) -> Result<(), FtlError> {
        let _ = ops;
        Ok(())
    }

    /// Allocating wrapper over [`Ftl::flush_into`].
    fn flush(&mut self) -> Result<Vec<FlashOp>, FtlError> {
        let mut ops = Vec::new();
        self.flush_into(&mut ops)?;
        Ok(ops)
    }

    /// Performs up to `max_erases` block reclamations of background
    /// cleaning, stopping early once the free-page fraction reaches
    /// `target_free_fraction` or nothing is reclaimable, *appending* the
    /// flash operations performed to `ops`.  Called by the device during
    /// idle windows (see [`ossd_gc::BackgroundCleaner`]); the operations
    /// carry [`OpPurpose::BackgroundClean`] so the device accounts their
    /// time separately from host-visible stalls.  The default
    /// implementation does nothing.
    fn background_clean_into(
        &mut self,
        max_erases: u32,
        target_free_fraction: f64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<(), FtlError> {
        let _ = (max_erases, target_free_fraction, ops);
        Ok(())
    }

    /// Allocating wrapper over [`Ftl::background_clean_into`].
    fn background_clean(
        &mut self,
        max_erases: u32,
        target_free_fraction: f64,
    ) -> Result<Vec<FlashOp>, FtlError> {
        let mut ops = Vec::new();
        self.background_clean_into(max_erases, target_free_fraction, &mut ops)?;
        Ok(ops)
    }

    /// Cumulative statistics.
    fn stats(&self) -> FtlStats;

    /// The element a read of `lpn` would primarily occupy, if the page is
    /// mapped.  Schedulers (SWTF, §3.2) use this to estimate per-request
    /// queue wait times; `None` means the scheduler should treat the target
    /// as unknown/idle.
    fn locate(&self, lpn: Lpn) -> Option<u32> {
        let _ = lpn;
        None
    }

    /// The element the FTL would allocate the *next* host write on, if it
    /// can predict one.  The open-queue controller uses this as the element
    /// hint for queued writes to pages with no current mapping, where
    /// [`Ftl::locate`] has nothing to report — SWTF then estimates the wait
    /// of the element the allocation will actually land on instead of
    /// guessing.  `None` (the default, and the stripe FTL's answer, since a
    /// stripe spans every element) means the target is unknown.
    fn next_write_element(&self) -> Option<u32> {
        None
    }

    /// Fraction of physical pages currently free (erased and writable).
    fn free_page_fraction(&self) -> f64;

    /// Whether a logical page currently has a mapping.
    fn is_mapped(&self, lpn: Lpn) -> bool;

    /// Cumulative media-reliability counters (program/erase failures,
    /// retired blocks, ECC retries, uncorrectable reads).  The default
    /// implementation reports a fault-free medium.
    fn reliability_counters(&self) -> ossd_flash::ReliabilityCounters {
        ossd_flash::ReliabilityCounters::default()
    }

    /// Aggregate wear statistics of the managed flash, including the
    /// retired-block population.  The default reports a pristine medium.
    fn wear_summary(&self) -> ossd_flash::WearSummary {
        ossd_flash::WearSummary::default()
    }

    /// Attaches a telemetry handle the FTL uses to emit GC and reliability
    /// instants (victim picks, trigger decisions, ECC retries, failures).
    /// The default implementation discards it — an FTL without hooks simply
    /// stays silent.
    fn set_telemetry(&mut self, telemetry: ossd_telemetry::TelemetryHandle) {
        let _ = telemetry;
    }

    /// Number of blocks (superblocks on the stripe FTL) currently holding
    /// at least one stale page — the cleaning backlog.  Sampled by the
    /// device's metrics time-series; the default reports none.
    fn gc_backlog_blocks(&self) -> u64 {
        0
    }

    /// Total stale pages awaiting reclamation across the backlog.  O(blocks);
    /// sampled periodically, not read on the hot path.  The default reports
    /// none.
    fn gc_stale_pages(&self) -> u64 {
        0
    }

    /// Mapping-table statistics: SRAM footprint (resident vs. full-table
    /// bytes) and, for a demand-paged FTL, the map-cache hit/miss/evict/
    /// writeback counters.  The default reports a fully resident table —
    /// the whole map in SRAM, no cache traffic.
    fn map_stats(&self) -> ossd_mapcache::MapStats {
        let bytes = self.logical_pages() * ossd_mapcache::ENTRY_BYTES;
        ossd_mapcache::MapStats {
            bytes_resident: bytes,
            bytes_total: bytes,
            ..ossd_mapcache::MapStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_purpose_background_classification() {
        assert!(!OpPurpose::HostRead.is_background());
        assert!(!OpPurpose::HostWrite.is_background());
        assert!(OpPurpose::Clean.is_background());
        assert!(OpPurpose::BackgroundClean.is_background());
        assert!(OpPurpose::WearLevel.is_background());
    }

    #[test]
    fn flash_op_constructors() {
        let e = ElementId(2);
        assert_eq!(FlashOp::host_read(e).kind, FlashOpKind::ReadPage);
        assert_eq!(FlashOp::host_program(e).purpose, OpPurpose::HostWrite);
        assert_eq!(FlashOp::gc_copyback(e).kind, FlashOpKind::CopybackPage);
        assert_eq!(FlashOp::gc_erase(e).purpose, OpPurpose::Clean);
        assert_eq!(FlashOp::gc_erase(e).element, e);
    }

    #[test]
    fn write_context_constructors() {
        assert!(!WriteContext::idle().priority_pending);
        assert!(WriteContext::with_priority_pending().priority_pending);
        assert_eq!(WriteContext::default(), WriteContext::idle());
    }

    #[test]
    fn write_amplification_metric() {
        let mut s = FtlStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        s.host_writes = 100;
        s.pages_programmed_host = 100;
        assert!((s.write_amplification() - 1.0).abs() < 1e-9);
        s.gc_pages_moved = 50;
        assert!((s.write_amplification() - 1.5).abs() < 1e-9);
        s.wear_level_moves = 50;
        assert!((s.write_amplification() - 2.0).abs() < 1e-9);
        s.bg_pages_moved = 100;
        assert!((s.write_amplification() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_convert_to_an_accounting_ledger() {
        let s = FtlStats {
            host_writes: 10,
            pages_programmed_host: 10,
            gc_pages_moved: 4,
            bg_pages_moved: 2,
            wear_level_moves: 4,
            gc_blocks_erased: 3,
            bg_blocks_erased: 1,
            ..FtlStats::default()
        };
        let acct = s.accounting();
        assert_eq!(acct.host_pages, 10);
        assert_eq!(acct.flash_programs(), 20);
        assert_eq!(acct.total_erases(), 4);
        assert!((acct.write_amplification() - s.write_amplification()).abs() < 1e-12);
    }

    #[test]
    fn lpn_index() {
        assert_eq!(Lpn(7).index(), 7);
        assert!(Lpn(3) < Lpn(9));
    }
}
