//! Write-amplification accounting.
//!
//! A single ledger of the quantities every cleaning-policy comparison needs:
//! host page writes vs. total flash page programs, erase counts split by
//! cause, and the time host requests spent stalled behind cleaning.  The
//! FTL fills in the page/erase counters as it works; the (timed) device
//! model adds stall time; experiments read the ratios.
//!
//! The analytical baseline (Desnoyers, *Analytic Modeling of SSD Write
//! Performance*; Dayan et al., *Modelling and Managing SSD
//! Write-amplification*) for greedy cleaning under uniform random writes is
//! provided as [`analytic_greedy_wa`], so measured curves can be validated
//! against theory.

/// The write-amplification ledger for one device/policy run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteAmpAccounting {
    /// Logical pages the host asked to write.
    pub host_pages: u64,
    /// Physical pages programmed to serve host writes (RMW expansion
    /// included).
    pub host_programs: u64,
    /// Pages migrated by foreground (write-path) cleaning.
    pub cleaning_moves: u64,
    /// Pages migrated by background (idle-window) cleaning.
    pub background_moves: u64,
    /// Pages migrated by explicit wear-leveling.
    pub wear_moves: u64,
    /// Blocks erased by foreground cleaning.
    pub cleaning_erases: u64,
    /// Blocks erased by background cleaning.
    pub background_erases: u64,
    /// Blocks erased by wear-leveling.
    pub wear_erases: u64,
    /// Nanoseconds host requests spent stalled behind foreground cleaning.
    pub stall_nanos: u64,
    /// Nanoseconds of background cleaning work (does not stall the host).
    pub background_nanos: u64,
}

impl WriteAmpAccounting {
    /// Total physical page programs (host + every kind of migration).
    pub fn flash_programs(&self) -> u64 {
        self.host_programs + self.cleaning_moves + self.background_moves + self.wear_moves
    }

    /// Total block erases.
    pub fn total_erases(&self) -> u64 {
        self.cleaning_erases + self.background_erases + self.wear_erases
    }

    /// Write amplification: physical programs per host page write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages == 0 {
            return 0.0;
        }
        self.flash_programs() as f64 / self.host_pages as f64
    }

    /// Fraction of all cleaning migrations done in the background (0 when
    /// no cleaning ran).
    pub fn background_fraction(&self) -> f64 {
        let total = self.cleaning_moves + self.background_moves;
        if total == 0 {
            return 0.0;
        }
        self.background_moves as f64 / total as f64
    }

    /// Mean host-visible cleaning stall per host page write, in
    /// microseconds.
    pub fn stall_micros_per_write(&self) -> f64 {
        if self.host_pages == 0 {
            return 0.0;
        }
        self.stall_nanos as f64 / 1_000.0 / self.host_pages as f64
    }

    /// Merges another ledger into this one (e.g. per-element ledgers).
    pub fn merge(&mut self, other: &WriteAmpAccounting) {
        self.host_pages += other.host_pages;
        self.host_programs += other.host_programs;
        self.cleaning_moves += other.cleaning_moves;
        self.background_moves += other.background_moves;
        self.wear_moves += other.wear_moves;
        self.cleaning_erases += other.cleaning_erases;
        self.background_erases += other.background_erases;
        self.wear_erases += other.wear_erases;
        self.stall_nanos += other.stall_nanos;
        self.background_nanos += other.background_nanos;
    }
}

/// The analytical write amplification of greedy cleaning under uniform
/// random writes at device utilization `u` (live fraction of physical
/// space): `WA ≈ 1 / (2 · (1 − u))`.
///
/// This is the standard closed-form approximation from the write-
/// amplification modelling literature (Desnoyers '12; Dayan et al. '15
/// use a refinement with the same asymptotics).  It is exact in the limit
/// of large blocks and steady state; at moderate utilizations the measured
/// value sits within a few tens of percent, which is what experiment
/// validation checks.
pub fn analytic_greedy_wa(utilization: f64) -> f64 {
    if utilization <= 0.0 {
        return 1.0;
    }
    let u = utilization.min(0.999);
    (1.0 / (2.0 * (1.0 - u))).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let acct = WriteAmpAccounting {
            host_pages: 100,
            host_programs: 100,
            cleaning_moves: 30,
            background_moves: 10,
            wear_moves: 10,
            cleaning_erases: 5,
            background_erases: 2,
            wear_erases: 1,
            stall_nanos: 2_000_000,
            background_nanos: 500_000,
        };
        assert_eq!(acct.flash_programs(), 150);
        assert_eq!(acct.total_erases(), 8);
        assert!((acct.write_amplification() - 1.5).abs() < 1e-12);
        assert!((acct.background_fraction() - 0.25).abs() < 1e-12);
        assert!((acct.stall_micros_per_write() - 20.0).abs() < 1e-12);
        assert_eq!(WriteAmpAccounting::default().write_amplification(), 0.0);
        assert_eq!(WriteAmpAccounting::default().background_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = WriteAmpAccounting {
            host_pages: 1,
            ..Default::default()
        };
        let b = WriteAmpAccounting {
            host_pages: 2,
            cleaning_moves: 3,
            stall_nanos: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.host_pages, 3);
        assert_eq!(a.cleaning_moves, 3);
        assert_eq!(a.stall_nanos, 4);
    }

    #[test]
    fn analytic_curve_shape() {
        // WA grows monotonically with utilization and matches the closed
        // form at spot values.
        assert_eq!(analytic_greedy_wa(0.0), 1.0);
        assert!((analytic_greedy_wa(0.8) - 2.5).abs() < 1e-12);
        assert!((analytic_greedy_wa(0.9) - 5.0).abs() < 1e-12);
        assert!(analytic_greedy_wa(0.95) > analytic_greedy_wa(0.9));
        // Low utilization floors at 1 (a write is at least itself).
        assert_eq!(analytic_greedy_wa(0.3), 1.0);
    }
}
