//! Erase-budgeted background cleaning.
//!
//! The seed FTL only cleans in the write path, so every reclaimed block is
//! paid for by a stalled host write.  Nagel et al. (*Time-efficient Garbage
//! Collection in SSDs*) observe that most cleaning can instead run during
//! idle windows, bounded by an erase budget so a long idle gap is never
//! followed by a cleaning storm when traffic resumes.  [`BackgroundCleaner`]
//! is the device-side controller for that scheme: the device reports idle
//! gaps, the cleaner answers with an erase budget, and the FTL performs at
//! most that many block reclamations towards a free-space target above the
//! foreground watermark.

/// Configuration of the background cleaner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackgroundGcConfig {
    /// Minimum idle gap before background cleaning may start.  Short gaps
    /// are left alone so background work never competes with a busy device.
    pub min_idle_micros: u64,
    /// Maximum block erases per idle window.
    pub erase_budget: u32,
    /// Background cleaning stops once the free fraction reaches this target
    /// (set it above the foreground low watermark so foreground cleaning
    /// rarely triggers at all).
    pub target_free_fraction: f64,
}

impl Default for BackgroundGcConfig {
    fn default() -> Self {
        BackgroundGcConfig {
            min_idle_micros: 2_000,
            erase_budget: 4,
            target_free_fraction: 0.10,
        }
    }
}

impl BackgroundGcConfig {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.erase_budget == 0 {
            return Err("background erase budget must be non-zero".to_string());
        }
        if !(0.0..1.0).contains(&self.target_free_fraction) {
            return Err(format!(
                "background target free fraction {} must be in [0, 1)",
                self.target_free_fraction
            ));
        }
        Ok(())
    }
}

/// Cumulative background-cleaning statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackgroundGcStats {
    /// Idle windows in which cleaning ran.
    pub windows_cleaned: u64,
    /// Idle windows long enough to clean but with nothing to do (already at
    /// the free-space target).
    pub windows_idle: u64,
    /// Block erases performed in the background.
    pub erases: u64,
    /// Pages migrated in the background.
    pub pages_moved: u64,
}

/// Decides when and how much to clean during idle windows.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundCleaner {
    config: BackgroundGcConfig,
    stats: BackgroundGcStats,
}

impl BackgroundCleaner {
    /// A cleaner with the given configuration.
    pub fn new(config: BackgroundGcConfig) -> Self {
        BackgroundCleaner {
            config,
            stats: BackgroundGcStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BackgroundGcConfig {
        &self.config
    }

    /// The free-space target background cleaning works towards.
    pub fn target_free_fraction(&self) -> f64 {
        self.config.target_free_fraction
    }

    /// Given an idle gap and the device's current free fraction, returns
    /// the erase budget for this window (0 = do nothing).
    pub fn plan(&mut self, idle_micros: u64, free_fraction: f64) -> u32 {
        if idle_micros < self.config.min_idle_micros {
            return 0;
        }
        if free_fraction >= self.config.target_free_fraction {
            self.stats.windows_idle += 1;
            return 0;
        }
        self.config.erase_budget
    }

    /// Records the outcome of one planned window.
    pub fn record(&mut self, erases: u64, pages_moved: u64) {
        if erases == 0 && pages_moved == 0 {
            self.stats.windows_idle += 1;
            return;
        }
        self.stats.windows_cleaned += 1;
        self.stats.erases += erases;
        self.stats.pages_moved += pages_moved;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BackgroundGcStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_gaps_and_healthy_devices_are_left_alone() {
        let mut bc = BackgroundCleaner::new(BackgroundGcConfig::default());
        // Gap below the idle threshold: no budget.
        assert_eq!(bc.plan(1_000, 0.01), 0);
        // Long gap but free space already at target: no budget.
        assert_eq!(bc.plan(10_000, 0.5), 0);
        assert_eq!(bc.stats().windows_cleaned, 0);
        // Long gap and low free space: full budget.
        assert_eq!(bc.plan(10_000, 0.01), 4);
    }

    #[test]
    fn record_accumulates_and_classifies_windows() {
        let mut bc = BackgroundCleaner::new(BackgroundGcConfig::default());
        bc.record(3, 12);
        bc.record(0, 0);
        bc.record(1, 0);
        let s = bc.stats();
        assert_eq!(s.windows_cleaned, 2);
        assert_eq!(s.windows_idle, 1);
        assert_eq!(s.erases, 4);
        assert_eq!(s.pages_moved, 12);
    }

    #[test]
    fn config_validation() {
        assert!(BackgroundGcConfig::default().validate().is_ok());
        assert!(BackgroundGcConfig {
            erase_budget: 0,
            ..BackgroundGcConfig::default()
        }
        .validate()
        .is_err());
        assert!(BackgroundGcConfig {
            target_free_fraction: 1.5,
            ..BackgroundGcConfig::default()
        }
        .validate()
        .is_err());
    }
}
