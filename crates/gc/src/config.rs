//! Policy selection: the [`CleaningPolicyKind`] configuration enum and the
//! [`AnyPolicy`] dispatcher the FTLs embed.

use crate::index::{PickContext, VictimIndex};
use crate::policies::{CostAge, CostBenefit, Greedy, WindowedGreedy};
use crate::policy::{BlockInfo, CleaningPolicy, TriggerContext, TriggerDecision};

/// Which cleaning policy a device uses.  This is the value that travels
/// through `FtlConfig` → `SsdConfig` → `DeviceProfile`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CleaningPolicyKind {
    /// Most stale pages first (the classic baseline; seed-compatible).
    #[default]
    Greedy,
    /// Rosenblum-style cost-benefit: `age · (1 − u) / (1 + u)`.
    CostBenefit,
    /// Wear-aware cost-benefit (cost-benefit score over erase count).
    CostAge,
    /// Greedy over the `window` oldest candidate blocks.
    WindowedGreedy {
        /// Number of oldest candidates greedy may choose from (0 = all).
        window: u32,
    },
}

impl CleaningPolicyKind {
    /// The four built-in policies with their default parameters, in the
    /// order experiments report them.
    pub fn all() -> [CleaningPolicyKind; 4] {
        [
            CleaningPolicyKind::Greedy,
            CleaningPolicyKind::CostBenefit,
            CleaningPolicyKind::CostAge,
            CleaningPolicyKind::WindowedGreedy { window: 8 },
        ]
    }

    /// The policy's report name.
    pub fn name(&self) -> &'static str {
        match self {
            CleaningPolicyKind::Greedy => Greedy.name(),
            CleaningPolicyKind::CostBenefit => CostBenefit.name(),
            CleaningPolicyKind::CostAge => CostAge.name(),
            CleaningPolicyKind::WindowedGreedy { .. } => "windowed-greedy",
        }
    }

    /// Builds the policy object this kind describes.
    pub fn build(&self) -> AnyPolicy {
        match *self {
            CleaningPolicyKind::Greedy => AnyPolicy::Greedy(Greedy),
            CleaningPolicyKind::CostBenefit => AnyPolicy::CostBenefit(CostBenefit),
            CleaningPolicyKind::CostAge => AnyPolicy::CostAge(CostAge),
            CleaningPolicyKind::WindowedGreedy { window } => {
                AnyPolicy::WindowedGreedy(WindowedGreedy::new(window))
            }
        }
    }
}

/// Enum dispatcher over the built-in policies.
///
/// The FTLs embed an `AnyPolicy` (rather than a `Box<dyn CleaningPolicy>`)
/// so they stay `Clone` and the per-victim dispatch is a jump table instead
/// of a vtable call.  External policies can still be plugged in at the
/// trait level by code that owns its own FTL wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnyPolicy {
    /// See [`Greedy`].
    Greedy(Greedy),
    /// See [`CostBenefit`].
    CostBenefit(CostBenefit),
    /// See [`CostAge`].
    CostAge(CostAge),
    /// See [`WindowedGreedy`].
    WindowedGreedy(WindowedGreedy),
}

impl CleaningPolicy for AnyPolicy {
    fn name(&self) -> &'static str {
        match self {
            AnyPolicy::Greedy(p) => p.name(),
            AnyPolicy::CostBenefit(p) => p.name(),
            AnyPolicy::CostAge(p) => p.name(),
            AnyPolicy::WindowedGreedy(p) => p.name(),
        }
    }

    fn should_trigger(&self, ctx: &TriggerContext) -> TriggerDecision {
        match self {
            AnyPolicy::Greedy(p) => p.should_trigger(ctx),
            AnyPolicy::CostBenefit(p) => p.should_trigger(ctx),
            AnyPolicy::CostAge(p) => p.should_trigger(ctx),
            AnyPolicy::WindowedGreedy(p) => p.should_trigger(ctx),
        }
    }

    fn select_victim(&mut self, candidates: &[BlockInfo]) -> Option<u32> {
        match self {
            AnyPolicy::Greedy(p) => p.select_victim(candidates),
            AnyPolicy::CostBenefit(p) => p.select_victim(candidates),
            AnyPolicy::CostAge(p) => p.select_victim(candidates),
            AnyPolicy::WindowedGreedy(p) => p.select_victim(candidates),
        }
    }

    fn select_from_index(&mut self, index: &mut VictimIndex, ctx: &PickContext) -> Option<u32> {
        match self {
            AnyPolicy::Greedy(p) => p.select_from_index(index, ctx),
            AnyPolicy::CostBenefit(p) => p.select_from_index(index, ctx),
            AnyPolicy::CostAge(p) => p.select_from_index(index, ctx),
            AnyPolicy::WindowedGreedy(p) => p.select_from_index(index, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_matching_policies() {
        for kind in CleaningPolicyKind::all() {
            let mut policy = kind.build();
            assert_eq!(policy.name(), kind.name());
            assert_eq!(policy.select_victim(&[]), None);
        }
        assert_eq!(CleaningPolicyKind::default(), CleaningPolicyKind::Greedy);
    }

    #[test]
    fn windowed_kind_carries_its_window() {
        let kind = CleaningPolicyKind::WindowedGreedy { window: 3 };
        match kind.build() {
            AnyPolicy::WindowedGreedy(p) => assert_eq!(p.window, 3),
            other => panic!("built {other:?}"),
        }
    }
}
