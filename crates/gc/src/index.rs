//! The incremental victim-selection index.
//!
//! Before this module, every victim pick re-scanned every block of the
//! element and heap-allocated a fresh candidate vector — quadratic-ish in
//! device size for the GC-heavy sweeps the paper's cleaning study rests on
//! (§4, Figures 2–3, Table 5).  Nagel et al. (*Time-efficient Garbage
//! Collection in SSDs*) make the case that victim selection must be
//! sub-linear to matter at scale; [`VictimIndex`] is that structure:
//!
//! * **Invalid-count buckets.**  Bucket `i` holds the blocks with exactly
//!   `i` stale pages, ordered by `(erase_count, block)` ascending — exactly
//!   the greedy tie-break (most stale pages, then fewest erases, then the
//!   lowest block index), so a [`Greedy`](crate::Greedy) pick is the first
//!   entry of the highest non-empty bucket: O(1) amortized via the
//!   `max_invalid` cursor.
//! * **Incremental maintenance.**  The FTL notifies the index on every
//!   program, invalidation, burned/padded page, erase and retirement; no
//!   operation ever walks all blocks.
//! * **Reusable scratch.**  Policies whose score genuinely drifts with age
//!   ([`CostBenefit`](crate::CostBenefit), [`CostAge`](crate::CostAge))
//!   select over a scratch buffer filled from the non-empty buckets only —
//!   no per-pick allocation once the buffer has warmed up, and candidates
//!   are presented in the ascending-block order the pre-index scan used, so
//!   victim sequences stay bit-for-bit identical.
//!
//! A block is a *candidate* (an index member) exactly when it is not
//! retired and holds at least one stale page; the currently active (append)
//! block is excluded at pick time via [`PickContext::exclude`] rather than
//! by membership, because it can become eligible (a full append block) and
//! ineligible without any page-state change.

use crate::policy::{BlockInfo, CleaningPolicy};

/// Everything a pick needs beyond the index itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PickContext {
    /// The FTL's logical clock (host writes served); candidate ages are
    /// `clock - last_write`.
    pub clock: u64,
    /// Block excluded from this pick (the element's active append block,
    /// unless the caller deliberately admits it once full).
    pub exclude: Option<u32>,
    /// Second excluded block: an FTL with a separate append point for
    /// metadata (the demand-paged map area's translation-page log) excludes
    /// that block too, for the same reason as [`PickContext::exclude`].
    pub exclude2: Option<u32>,
}

impl PickContext {
    /// A pick context with the given clock and no exclusion.
    pub fn at(clock: u64) -> Self {
        PickContext {
            clock,
            exclude: None,
            exclude2: None,
        }
    }

    /// Returns this context with `exclude` set.
    pub fn excluding(mut self, block: Option<u32>) -> Self {
        self.exclude = block;
        self
    }

    /// Returns this context with the second exclusion slot set.
    pub fn excluding2(mut self, block: Option<u32>) -> Self {
        self.exclude2 = block;
        self
    }

    /// Whether `block` is excluded from this pick.
    pub fn excludes(&self, block: u32) -> bool {
        Some(block) == self.exclude || Some(block) == self.exclude2
    }
}

/// Per-block state mirrored by the index.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    valid: u32,
    invalid: u32,
    erase: u32,
    last_write: u64,
    bad: bool,
}

impl Slot {
    /// Candidate membership: not retired and holding at least one stale
    /// page.  (A block with a stale page is necessarily not erased.)
    fn is_member(&self) -> bool {
        !self.bad && self.invalid > 0
    }
}

/// Incremental invalid-count index over the blocks of one element (or the
/// superblocks of a stripe-mapped FTL).
#[derive(Clone, Debug)]
pub struct VictimIndex {
    /// Pages per block, reported as `BlockInfo::total_pages` (slots per
    /// superblock on the stripe FTL).
    pages_per_block: u32,
    slots: Vec<Slot>,
    /// `buckets[i]`: blocks with exactly `i` stale pages, sorted by
    /// `(erase_count, block)` ascending.  Bucket 0 is never populated.
    buckets: Vec<Vec<u32>>,
    /// Upper bound on the highest non-empty bucket, settled lazily.
    max_invalid: usize,
    /// Number of candidate blocks across all buckets.
    members: usize,
    /// Reusable candidate buffer for scan-tier policies.
    scratch: Vec<BlockInfo>,
}

impl VictimIndex {
    /// An index over `blocks` erased blocks of `pages_per_block` pages.
    pub fn new(blocks: u32, pages_per_block: u32) -> Self {
        VictimIndex {
            pages_per_block,
            slots: vec![Slot::default(); blocks as usize],
            buckets: vec![Vec::new(); pages_per_block as usize + 1],
            max_invalid: 0,
            members: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of candidate blocks currently indexed.
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether no block is a cleaning candidate.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Total stale (invalid) pages across all candidate blocks — the
    /// reclaimable backlog a cleaning pass is working against.  O(blocks);
    /// intended for periodic telemetry sampling, not the pick hot path.
    pub fn stale_pages(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.is_member())
            .map(|s| s.invalid as u64)
            .sum()
    }

    /// Number of candidates a pick under `ctx`'s exclusions would consider.
    pub fn candidates_excluding(&self, ctx: &PickContext) -> usize {
        let mut excluded = 0usize;
        let mut counted: Option<u32> = None;
        for block in [ctx.exclude, ctx.exclude2].into_iter().flatten() {
            if counted == Some(block) {
                continue;
            }
            if let Some(slot) = self.slots.get(block as usize) {
                excluded += slot.is_member() as usize;
            }
            counted = Some(block);
        }
        self.members - excluded
    }

    /// The block's logical-clock timestamp of its youngest data.
    pub fn last_write(&self, block: u32) -> u64 {
        self.slots[block as usize].last_write
    }

    /// The block's erase count as tracked by the index.
    pub fn erase_count(&self, block: u32) -> u32 {
        self.slots[block as usize].erase
    }

    /// Whether `block` is currently a cleaning candidate.
    pub fn is_member(&self, block: u32) -> bool {
        self.slots[block as usize].is_member()
    }

    /// Position of `block` in `bucket` under the `(erase, block)` order.
    fn bucket_pos(&self, bucket: &[u32], block: u32) -> Result<usize, usize> {
        let key = (self.slots[block as usize].erase, block);
        bucket.binary_search_by_key(&key, |&b| (self.slots[b as usize].erase, b))
    }

    fn bucket_insert(&mut self, block: u32) {
        let invalid = self.slots[block as usize].invalid as usize;
        debug_assert!(invalid > 0 && invalid < self.buckets.len());
        let bucket = std::mem::take(&mut self.buckets[invalid]);
        let pos = self
            .bucket_pos(&bucket, block)
            .expect_err("block already in its bucket");
        self.buckets[invalid] = bucket;
        self.buckets[invalid].insert(pos, block);
        self.max_invalid = self.max_invalid.max(invalid);
    }

    fn bucket_remove(&mut self, block: u32, invalid: u32) {
        let bucket = std::mem::take(&mut self.buckets[invalid as usize]);
        let pos = self
            .bucket_pos(&bucket, block)
            .expect("member block missing from its bucket");
        self.buckets[invalid as usize] = bucket;
        self.buckets[invalid as usize].remove(pos);
    }

    /// Marks a block permanently out of service at construction time
    /// (factory-marked bad).  For blocks retiring mid-life use
    /// [`VictimIndex::on_retire`].
    pub fn mark_bad(&mut self, block: u32) {
        debug_assert!(!self.slots[block as usize].is_member());
        self.slots[block as usize].bad = true;
    }

    /// One page of `block` was programmed with data stamped `last_write`
    /// (the block's new youngest-data timestamp, which the FTL computes —
    /// host clock for host writes, the source block's timestamp for
    /// relocations).
    pub fn on_program(&mut self, block: u32, last_write: u64) {
        let slot = &mut self.slots[block as usize];
        slot.valid += 1;
        slot.last_write = last_write;
    }

    /// A previously valid page of `block` went stale.
    pub fn on_invalidate(&mut self, block: u32) {
        let was_member = self.slots[block as usize].is_member();
        let old_invalid = self.slots[block as usize].invalid;
        {
            let slot = &mut self.slots[block as usize];
            debug_assert!(slot.valid > 0, "invalidate with no valid pages");
            slot.valid -= 1;
            slot.invalid += 1;
        }
        if self.slots[block as usize].bad {
            return;
        }
        if was_member {
            self.bucket_remove(block, old_invalid);
        } else {
            self.members += 1;
        }
        self.bucket_insert(block);
    }

    /// A free page of `block` was consumed as stale without being
    /// programmed (a burned page after a program failure, or lockstep
    /// padding past a failed row).
    pub fn on_skip(&mut self, block: u32) {
        let was_member = self.slots[block as usize].is_member();
        let old_invalid = self.slots[block as usize].invalid;
        self.slots[block as usize].invalid += 1;
        if self.slots[block as usize].bad {
            return;
        }
        if was_member {
            self.bucket_remove(block, old_invalid);
        } else {
            self.members += 1;
        }
        self.bucket_insert(block);
    }

    /// `block` was erased and recycled.
    pub fn on_erase(&mut self, block: u32) {
        let slot = self.slots[block as usize];
        debug_assert_eq!(slot.valid, 0, "erase with valid pages");
        if slot.is_member() {
            self.bucket_remove(block, slot.invalid);
            self.members -= 1;
        }
        let slot = &mut self.slots[block as usize];
        slot.valid = 0;
        slot.invalid = 0;
        slot.erase += 1;
    }

    /// `block` was permanently retired (grown bad).
    pub fn on_retire(&mut self, block: u32) {
        let slot = self.slots[block as usize];
        if slot.bad {
            return;
        }
        if slot.is_member() {
            self.bucket_remove(block, slot.invalid);
            self.members -= 1;
        }
        let slot = &mut self.slots[block as usize];
        slot.valid = 0;
        slot.invalid = 0;
        slot.bad = true;
    }

    /// Settles the lazy `max_invalid` cursor onto the highest non-empty
    /// bucket (amortized O(1): every decrement is paid for by an earlier
    /// insertion that raised the cursor).
    fn settle_max(&mut self) {
        while self.max_invalid > 0 && self.buckets[self.max_invalid].is_empty() {
            self.max_invalid -= 1;
        }
    }

    /// The greedy victim: most stale pages, then fewest erases, then the
    /// lowest block index — the first entry of the highest non-empty bucket,
    /// skipping the excluded blocks.  O(1) amortized.
    pub fn pick_greedy(&mut self, exclude: Option<u32>, exclude2: Option<u32>) -> Option<u32> {
        self.settle_max();
        let mut level = self.max_invalid;
        while level > 0 {
            for &block in &self.buckets[level] {
                if Some(block) != exclude && Some(block) != exclude2 {
                    return Some(block);
                }
            }
            // Only excluded blocks live at this level; look lower.
            level -= 1;
        }
        None
    }

    /// Fills the scratch buffer with every candidate except the excluded
    /// blocks.  When `by_block` is set the candidates are sorted into the
    /// ascending block order of the pre-index scan (required for bit-for-bit
    /// victim sequences on tie-breaking scan policies).
    fn fill_scratch(&mut self, ctx: &PickContext, by_block: bool) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for bucket in &self.buckets[1..=self.max_invalid] {
            for &block in bucket {
                if ctx.excludes(block) {
                    continue;
                }
                let slot = &self.slots[block as usize];
                scratch.push(BlockInfo {
                    block,
                    valid_pages: slot.valid,
                    invalid_pages: slot.invalid,
                    total_pages: self.pages_per_block,
                    erase_count: slot.erase,
                    age: ctx.clock.saturating_sub(slot.last_write),
                });
            }
        }
        if by_block {
            scratch.sort_unstable_by_key(|c| c.block);
        }
        self.scratch = scratch;
    }

    /// The candidate snapshot a scan-tier policy selects over: every
    /// candidate except the excluded block, in ascending block order,
    /// built in the index's reusable scratch buffer (no allocation once
    /// the buffer is warm).
    pub fn scan_candidates(&mut self, ctx: &PickContext) -> &[BlockInfo] {
        self.settle_max();
        self.fill_scratch(ctx, true);
        &self.scratch
    }

    /// The windowed-greedy victim: greedy restricted to the `window` oldest
    /// candidates (largest age, ties towards the lower block index).  Cost
    /// is O(candidates) via `select_nth_unstable` on the scratch buffer —
    /// no allocation, no full-device scan.
    ///
    /// Callers should fall back to [`VictimIndex::pick_greedy`] when the
    /// candidate count (excluding `exclude`) does not exceed the window;
    /// [`crate::WindowedGreedy`] does.
    pub fn pick_windowed(&mut self, window: usize, ctx: &PickContext) -> Option<u32> {
        self.settle_max();
        self.fill_scratch(ctx, false);
        let mut scratch = std::mem::take(&mut self.scratch);
        let pick = windowed_best(&mut scratch, window);
        self.scratch = scratch;
        pick
    }

    /// A debug/validation snapshot of every candidate as
    /// `(block, valid, invalid, erase_count, last_write)`, sorted by block.
    /// Used by the FTLs' index-verification helpers and property tests.
    pub fn snapshot(&self) -> Vec<(u32, u32, u32, u32, u64)> {
        let mut out: Vec<(u32, u32, u32, u32, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_member())
            .map(|(b, s)| (b as u32, s.valid, s.invalid, s.erase, s.last_write))
            .collect();
        out.sort_unstable_by_key(|&(b, ..)| b);
        out
    }

    /// Verifies the index's internal invariants (bucket placement and
    /// ordering, member count, cursor bound).  Test/validation aid.
    pub fn verify_internal(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for (invalid, bucket) in self.buckets.iter().enumerate() {
            let mut prev: Option<(u32, u32)> = None;
            for &block in bucket {
                let slot = &self.slots[block as usize];
                if slot.invalid as usize != invalid || !slot.is_member() {
                    return Err(format!(
                        "block {block} in bucket {invalid} has invalid={} bad={}",
                        slot.invalid, slot.bad
                    ));
                }
                let key = (slot.erase, block);
                if let Some(p) = prev {
                    if p >= key {
                        return Err(format!("bucket {invalid} out of order at block {block}"));
                    }
                }
                prev = Some(key);
                counted += 1;
            }
            if invalid > self.max_invalid && !bucket.is_empty() {
                return Err(format!("bucket {invalid} above the max_invalid cursor"));
            }
        }
        if counted != self.members {
            return Err(format!(
                "member count {} != bucketed blocks {counted}",
                self.members
            ));
        }
        for (block, slot) in self.slots.iter().enumerate() {
            if slot.is_member() {
                let bucket = &self.buckets[slot.invalid as usize];
                if self.bucket_pos(bucket, block as u32).is_err() {
                    return Err(format!("member block {block} missing from its bucket"));
                }
            }
        }
        Ok(())
    }
}

/// Greedy over the `window` oldest entries of `candidates` (which is
/// consumed as scratch): the age order is `(age descending, block
/// ascending)`, matching the pre-index windowed scan.  The window is then
/// re-sorted into the ascending block order [`crate::Greedy`] expects and
/// handed to it, so the greedy tie-break lives in exactly one place.
fn windowed_best(candidates: &mut [BlockInfo], window: usize) -> Option<u32> {
    if candidates.is_empty() || window == 0 {
        return None;
    }
    let cmp_age =
        |a: &BlockInfo, b: &BlockInfo| b.age.cmp(&a.age).then_with(|| a.block.cmp(&b.block));
    if candidates.len() > window {
        // Partition so the first `window` entries are exactly the `window`
        // oldest candidates; the comparator is a total order (the block
        // index breaks age ties), so the partition set is deterministic.
        candidates.select_nth_unstable_by(window - 1, cmp_age);
    }
    let pool_len = window.min(candidates.len());
    let pool = &mut candidates[..pool_len];
    pool.sort_unstable_by_key(|c| c.block);
    crate::policies::Greedy.select_victim(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{Greedy, WindowedGreedy};
    use crate::policy::CleaningPolicy;

    /// Builds the legacy candidate slice (ascending block order) from the
    /// index's own snapshot, for equivalence checks.
    fn legacy_candidates(index: &VictimIndex, ctx: &PickContext) -> Vec<BlockInfo> {
        index
            .snapshot()
            .into_iter()
            .filter(|&(b, ..)| !ctx.excludes(b))
            .map(|(b, valid, invalid, erase, lw)| BlockInfo {
                block: b,
                valid_pages: valid,
                invalid_pages: invalid,
                total_pages: index.pages_per_block,
                erase_count: erase,
                age: ctx.clock.saturating_sub(lw),
            })
            .collect()
    }

    #[test]
    fn greedy_pick_matches_the_linear_scan() {
        let mut index = VictimIndex::new(8, 4);
        // Block 1: 2 stale; block 3: 3 stale; block 5: 3 stale, more worn.
        for (block, programs, stales) in [(1, 4, 2), (3, 4, 3), (5, 4, 3)] {
            for _ in 0..programs {
                index.on_program(block, 7);
            }
            for _ in 0..stales {
                index.on_invalidate(block);
            }
        }
        // Give block 5 a higher erase count by cycling it once first is not
        // possible post-hoc; instead check the base tie-break: equal stale
        // counts break towards the lower block.
        assert_eq!(index.pick_greedy(None, None), Some(3));
        assert_eq!(index.pick_greedy(Some(3), None), Some(5));
        // A second exclusion slot skips both append points.
        assert_eq!(index.pick_greedy(Some(3), Some(5)), Some(1));
        let ctx = PickContext::at(10);
        let legacy = legacy_candidates(&index, &ctx);
        assert_eq!(Greedy.select_victim(&legacy), index.pick_greedy(None, None));
        assert_eq!(index.len(), 3);
        assert_eq!(index.candidates_excluding(&ctx.excluding(Some(3))), 2);
        assert_eq!(index.candidates_excluding(&ctx.excluding(Some(0))), 3);
        assert_eq!(
            index.candidates_excluding(&ctx.excluding(Some(3)).excluding2(Some(5))),
            1
        );
        assert_eq!(
            index.candidates_excluding(&ctx.excluding(Some(3)).excluding2(Some(3))),
            2,
            "the same block in both slots is excluded once"
        );
        index.verify_internal().unwrap();
    }

    #[test]
    fn stale_pages_sums_candidate_backlog() {
        let mut index = VictimIndex::new(8, 4);
        assert_eq!(index.stale_pages(), 0);
        for (block, programs, stales) in [(1, 4, 2), (3, 4, 4)] {
            for _ in 0..programs {
                index.on_program(block, 7);
            }
            for _ in 0..stales {
                index.on_invalidate(block);
            }
        }
        assert_eq!(index.stale_pages(), 6);
        index.on_erase(3);
        assert_eq!(index.stale_pages(), 2);
    }

    #[test]
    fn erase_tie_break_prefers_less_worn_blocks() {
        let mut index = VictimIndex::new(4, 4);
        // Cycle block 0 once so its erase count is 1.
        for _ in 0..4 {
            index.on_program(0, 1);
        }
        for _ in 0..4 {
            index.on_invalidate(0);
        }
        index.on_erase(0);
        assert_eq!(index.erase_count(0), 1);
        // Now blocks 0 and 2 both reach 2 stale pages; block 2 has fewer
        // erases and must win despite the higher index.
        for block in [0, 2] {
            for _ in 0..3 {
                index.on_program(block, 2);
            }
            index.on_invalidate(block);
            index.on_invalidate(block);
        }
        assert_eq!(index.pick_greedy(None, None), Some(2));
        let ctx = PickContext::at(5);
        let mut idx2 = index.clone();
        let legacy = legacy_candidates(&index, &ctx);
        assert_eq!(Greedy.select_victim(&legacy), idx2.pick_greedy(None, None));
    }

    #[test]
    fn erase_and_retire_remove_membership() {
        let mut index = VictimIndex::new(4, 4);
        for block in 0..3 {
            index.on_program(block, 1);
            index.on_invalidate(block);
        }
        assert_eq!(index.len(), 3);
        index.on_erase(0);
        assert!(!index.is_member(0));
        index.on_retire(1);
        assert!(!index.is_member(1));
        // Retire is idempotent; further events on a bad block do not
        // resurrect it.
        index.on_retire(1);
        index.on_skip(1);
        assert!(!index.is_member(1));
        assert_eq!(index.len(), 1);
        assert_eq!(index.pick_greedy(None, None), Some(2));
        assert_eq!(index.pick_greedy(Some(2), None), None);
        index.verify_internal().unwrap();
    }

    #[test]
    fn skip_counts_as_stale_without_valid_pages() {
        let mut index = VictimIndex::new(2, 4);
        index.on_skip(0);
        assert!(index.is_member(0));
        assert_eq!(index.pick_greedy(None, None), Some(0));
        let snap = index.snapshot();
        assert_eq!(snap, vec![(0, 0, 1, 0, 0)]);
    }

    #[test]
    fn scan_candidates_are_in_ascending_block_order() {
        let mut index = VictimIndex::new(16, 4);
        for block in [9, 2, 13, 4] {
            index.on_program(block, block as u64);
            index.on_invalidate(block);
        }
        let ctx = PickContext::at(20).excluding(Some(4));
        let blocks: Vec<u32> = index
            .scan_candidates(&ctx)
            .iter()
            .map(|c| c.block)
            .collect();
        assert_eq!(blocks, vec![2, 9, 13]);
        let ages: Vec<u64> = index.scan_candidates(&ctx).iter().map(|c| c.age).collect();
        assert_eq!(ages, vec![18, 11, 7]);
    }

    #[test]
    fn windowed_pick_matches_the_legacy_windowed_scan() {
        let mut index = VictimIndex::new(32, 8);
        // Ages descend with the block index; staleness ascends, so the
        // overall-stalest block is the youngest.
        for block in 0..8u32 {
            for _ in 0..(block + 1) {
                index.on_program(block, (block as u64) * 10);
            }
            for _ in 0..(block + 1) {
                index.on_invalidate(block);
            }
        }
        let ctx = PickContext::at(100);
        let legacy = legacy_candidates(&index, &ctx);
        for window in [1usize, 2, 3, 5, 8, 16] {
            let mut policy = WindowedGreedy::new(window as u32);
            let expected = policy.select_victim(&legacy);
            let got = if legacy.len() <= window {
                index.pick_greedy(ctx.exclude, ctx.exclude2)
            } else {
                index.pick_windowed(window, &ctx)
            };
            assert_eq!(got, expected, "window {window}");
        }
    }

    #[test]
    fn windowed_best_handles_degenerate_inputs() {
        assert_eq!(windowed_best(&mut [], 4), None);
        let mut one = [BlockInfo {
            block: 3,
            valid_pages: 1,
            invalid_pages: 2,
            total_pages: 4,
            erase_count: 0,
            age: 5,
        }];
        assert_eq!(windowed_best(&mut one, 0), None);
        assert_eq!(windowed_best(&mut one, 1), Some(3));
        assert_eq!(windowed_best(&mut one, 9), Some(3));
    }

    #[test]
    fn bucket_moves_track_invalidation_counts() {
        let mut index = VictimIndex::new(2, 8);
        for _ in 0..8 {
            index.on_program(0, 3);
        }
        for expected in 1..=8u32 {
            index.on_invalidate(0);
            assert_eq!(index.snapshot()[0].2, expected);
            index.verify_internal().unwrap();
        }
        index.on_erase(0);
        assert!(index.is_empty());
        index.verify_internal().unwrap();
    }
}
