//! Pluggable cleaning-policy subsystem for solid-state block management.
//!
//! The paper's central claim is that block management — cleaning,
//! allocation, wear-leveling — belongs in the device (§2).  The seed
//! reproduction hard-coded one cleaning policy (greedy, watermark-triggered,
//! write-path-only) inside the FTL; this crate makes the policy a
//! first-class, pluggable value so devices can be compared along the
//! cleaning axis:
//!
//! * [`policy`] — the [`CleaningPolicy`] trait: trigger decision plus
//!   victim selection over a snapshot of candidate blocks ([`BlockInfo`]).
//! * [`policies`] — four implementations spanning the classic design
//!   space: [`Greedy`], [`CostBenefit`] (Rosenblum's LFS cleaner),
//!   [`CostAge`] (wear-aware) and [`WindowedGreedy`].
//! * [`config`] — [`CleaningPolicyKind`], the configuration value threaded
//!   through `FtlConfig` → `SsdConfig` → `DeviceProfile`, and
//!   [`AnyPolicy`], the `Clone`-able dispatcher the FTLs embed.
//! * [`index`] — [`VictimIndex`]: the incremental invalid-count-bucket
//!   index the FTLs maintain on every page-state change, making a greedy
//!   victim pick O(1) amortized and scan-tier picks allocation-free
//!   (candidates drawn from the non-empty buckets only).
//! * [`background`] — [`BackgroundCleaner`]: erase-budgeted incremental
//!   cleaning during idle windows instead of only stalling host writes.
//! * [`accounting`] — [`WriteAmpAccounting`]: host-writes vs.
//!   flash-writes, erase counts and cleaning stall time per policy, plus
//!   the analytical greedy write-amplification curve
//!   ([`analytic_greedy_wa`]) measured results are validated against.
//!
//! The crate is dependency-free and untimed: policies see logical clocks
//! (host-write counts) and page counts, never flash state or simulated
//! time, so the same policy objects drive the page-mapped FTL, the stripe
//! FTL's superblock reclamation, and unit tests over hand-crafted block
//! states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod background;
pub mod config;
pub mod index;
pub mod policies;
pub mod policy;

pub use accounting::{analytic_greedy_wa, WriteAmpAccounting};
pub use background::{BackgroundCleaner, BackgroundGcConfig, BackgroundGcStats};
pub use config::{AnyPolicy, CleaningPolicyKind};
pub use index::{PickContext, VictimIndex};
pub use policies::{CostAge, CostBenefit, Greedy, WindowedGreedy};
pub use policy::{watermark_trigger, BlockInfo, CleaningPolicy, TriggerContext, TriggerDecision};
