//! The built-in cleaning policies.
//!
//! Four policies spanning the classic design space:
//!
//! * [`Greedy`] — most stale pages first; the seed FTL's behaviour and the
//!   baseline of every analytical write-amplification model.
//! * [`CostBenefit`] — Rosenblum & Ousterhout's LFS segment cleaner:
//!   `benefit/cost = age · (1 − u) / (1 + u)`.  Prefers cold, mostly-stale
//!   blocks; beats greedy under hot/cold skew.
//! * [`CostAge`] — a wear-aware cost-benefit variant (after Chiang's CAT):
//!   the cost-benefit score divided by the block's erase count, so victim
//!   selection doubles as implicit wear-leveling.
//! * [`WindowedGreedy`] — greedy restricted to the oldest *W* candidates;
//!   approximates cost-benefit's hot/cold separation at greedy's cost.

use crate::index::{PickContext, VictimIndex};
use crate::policy::{BlockInfo, CleaningPolicy};

/// Greedy cleaning: reclaim the block with the most stale pages; ties break
/// towards the block with fewer erases, then towards the lower block index.
///
/// This reproduces the seed FTL's victim selection bit-for-bit: candidates
/// are scanned in ascending block order and a candidate replaces the
/// incumbent only when strictly better.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Greedy;

impl CleaningPolicy for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select_victim(&mut self, candidates: &[BlockInfo]) -> Option<u32> {
        let mut best: Option<&BlockInfo> = None;
        for c in candidates {
            let better = match best {
                None => true,
                Some(b) => {
                    c.invalid_pages > b.invalid_pages
                        || (c.invalid_pages == b.invalid_pages && c.erase_count < b.erase_count)
                }
            };
            if better {
                best = Some(c);
            }
        }
        best.map(|b| b.block)
    }

    /// Index-native fast path: the first entry of the highest non-empty
    /// bucket, O(1) amortized.
    fn select_from_index(&mut self, index: &mut VictimIndex, ctx: &PickContext) -> Option<u32> {
        index.pick_greedy(ctx.exclude, ctx.exclude2)
    }
}

/// Rosenblum-style cost-benefit cleaning (LFS, SOSP '91):
/// maximize `age · (1 − u) / (1 + u)`.
///
/// `1 − u` is the space reclaimed, `1 + u` the cost to read the block and
/// rewrite its live fraction, and `age` (host writes since the block was
/// last programmed) estimates how long the reclaimed space will stay free.
/// Ages are offset by one so a fully-stale block is still worth reclaiming
/// the instant it turns stale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostBenefit;

fn cost_benefit_score(c: &BlockInfo) -> f64 {
    let u = c.utilization();
    (c.age + 1) as f64 * (1.0 - u) / (1.0 + u)
}

/// Deterministic "strictly better" comparison for score-based policies:
/// greater score wins; ties break towards more stale pages, then fewer
/// erases, then the earlier (lower-index) candidate.
fn score_better(candidate: &BlockInfo, score: f64, best: &BlockInfo, best_score: f64) -> bool {
    if score != best_score {
        return score > best_score;
    }
    if candidate.invalid_pages != best.invalid_pages {
        return candidate.invalid_pages > best.invalid_pages;
    }
    candidate.erase_count < best.erase_count
}

fn select_by_score(candidates: &[BlockInfo], score: impl Fn(&BlockInfo) -> f64) -> Option<u32> {
    let mut best: Option<(&BlockInfo, f64)> = None;
    for c in candidates {
        let s = score(c);
        let better = match best {
            None => true,
            Some((b, bs)) => score_better(c, s, b, bs),
        };
        if better {
            best = Some((c, s));
        }
    }
    best.map(|(b, _)| b.block)
}

impl CleaningPolicy for CostBenefit {
    fn name(&self) -> &'static str {
        "cost-benefit"
    }

    fn select_victim(&mut self, candidates: &[BlockInfo]) -> Option<u32> {
        select_by_score(candidates, cost_benefit_score)
    }
}

/// Wear-aware cost-benefit (after Chiang et al.'s Cost-Age-Times):
/// maximize `age · (1 − u) / ((1 + u) · (1 + erases))`.
///
/// Dividing by the erase count steers cleaning away from already-worn
/// blocks, trading a little extra migration for a tighter erase spread —
/// victim selection doubles as implicit wear-leveling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostAge;

impl CleaningPolicy for CostAge {
    fn name(&self) -> &'static str {
        "cost-age"
    }

    fn select_victim(&mut self, candidates: &[BlockInfo]) -> Option<u32> {
        select_by_score(candidates, |c| {
            cost_benefit_score(c) / (1.0 + c.erase_count as f64)
        })
    }
}

/// Greedy over the `window` oldest candidates.
///
/// Restricting greedy's scan to the coldest blocks keeps hot blocks — whose
/// remaining live pages are about to be invalidated anyway — out of the
/// victim pool, which approximates cost-benefit's hot/cold separation
/// without scoring every block.  A window at least as large as the
/// candidate set degenerates to plain greedy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowedGreedy {
    /// Number of oldest candidates greedy may choose from.
    pub window: u32,
}

impl WindowedGreedy {
    /// A windowed-greedy policy over the `window` oldest candidates.
    pub fn new(window: u32) -> Self {
        WindowedGreedy { window }
    }
}

impl Default for WindowedGreedy {
    fn default() -> Self {
        WindowedGreedy { window: 8 }
    }
}

impl CleaningPolicy for WindowedGreedy {
    fn name(&self) -> &'static str {
        "windowed-greedy"
    }

    fn select_victim(&mut self, candidates: &[BlockInfo]) -> Option<u32> {
        let window = self.window as usize;
        if window == 0 || candidates.len() <= window {
            return Greedy.select_victim(candidates);
        }
        // Indices of the `window` oldest candidates; age ties keep the
        // earlier candidate so the scan below stays deterministic.
        let mut by_age: Vec<usize> = (0..candidates.len()).collect();
        by_age.sort_by(|&a, &b| candidates[b].age.cmp(&candidates[a].age).then(a.cmp(&b)));
        by_age.truncate(window);
        // Greedy expects candidates in ascending block order.
        by_age.sort_unstable();
        let pool: Vec<BlockInfo> = by_age.into_iter().map(|i| candidates[i]).collect();
        Greedy.select_victim(&pool)
    }

    /// Index-native fast path: a window at least as large as the candidate
    /// set degenerates to the O(1) greedy pick; otherwise the `window`
    /// oldest candidates are partitioned out of the index's scratch buffer
    /// in O(candidates) without touching non-candidate blocks.
    fn select_from_index(&mut self, index: &mut VictimIndex, ctx: &PickContext) -> Option<u32> {
        let window = self.window as usize;
        if window == 0 || index.candidates_excluding(ctx) <= window {
            return index.pick_greedy(ctx.exclude, ctx.exclude2);
        }
        index.pick_windowed(window, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(block: u32, valid: u32, invalid: u32, erases: u32, age: u64) -> BlockInfo {
        BlockInfo {
            block,
            valid_pages: valid,
            invalid_pages: invalid,
            total_pages: 8,
            erase_count: erases,
            age,
        }
    }

    #[test]
    fn greedy_prefers_most_invalid_then_fewest_erases() {
        let candidates = [
            block(0, 4, 4, 9, 0),
            block(1, 2, 6, 5, 0), // most stale pages: the victim
            block(2, 3, 5, 0, 0),
        ];
        assert_eq!(Greedy.select_victim(&candidates), Some(1));

        // Equal staleness: fewer erases wins.
        let tied = [
            block(0, 2, 6, 9, 0),
            block(1, 2, 6, 3, 0),
            block(2, 2, 6, 5, 0),
        ];
        assert_eq!(Greedy.select_victim(&tied), Some(1));

        // Fully tied: the first candidate wins (seed-compatible scan).
        let all_tied = [block(0, 2, 6, 5, 0), block(1, 2, 6, 5, 0)];
        assert_eq!(Greedy.select_victim(&all_tied), Some(0));

        assert_eq!(Greedy.select_victim(&[]), None);
    }

    #[test]
    fn cost_benefit_prefers_cold_blocks_over_slightly_staler_hot_ones() {
        // Block 0 is marginally staler but hot (age 1); block 1 is cold
        // (age 100) with almost as much stale space.  Greedy picks 0,
        // cost-benefit picks 1.
        let candidates = [block(0, 3, 5, 0, 1), block(1, 4, 4, 0, 100)];
        assert_eq!(Greedy.select_victim(&candidates), Some(0));
        assert_eq!(CostBenefit.select_victim(&candidates), Some(1));
    }

    #[test]
    fn cost_benefit_scores_follow_the_lfs_formula() {
        // u = 0.5 → (1 - u)/(1 + u) = 1/3; age+1 = 11 → score 11/3.
        let c = block(0, 4, 4, 0, 10);
        assert!((cost_benefit_score(&c) - 11.0 / 3.0).abs() < 1e-12);
        // A fully stale block the instant it turns stale still scores > 0.
        let stale = block(1, 0, 8, 0, 0);
        assert!(cost_benefit_score(&stale) > 0.0);
    }

    #[test]
    fn cost_age_penalises_worn_blocks() {
        // Identical blocks except erase count: cost-age avoids the worn one,
        // cost-benefit is indifferent (ties break towards fewer erases, so
        // both pick block 1 here) — so give the worn block a slight edge in
        // staleness that cost-benefit takes and cost-age declines.
        let candidates = [block(0, 3, 5, 40, 10), block(1, 4, 4, 0, 10)];
        assert_eq!(CostBenefit.select_victim(&candidates), Some(0));
        assert_eq!(CostAge.select_victim(&candidates), Some(1));
    }

    #[test]
    fn windowed_greedy_ignores_staler_but_young_blocks_outside_the_window() {
        // Block 2 is the stalest but the youngest; with a window of 2 only
        // the two oldest candidates (0 and 1) are eligible.
        let candidates = [
            block(0, 4, 4, 0, 50),
            block(1, 3, 5, 0, 40),
            block(2, 1, 7, 0, 1),
        ];
        assert_eq!(WindowedGreedy::new(2).select_victim(&candidates), Some(1));
        // A window covering everything degenerates to greedy.
        assert_eq!(WindowedGreedy::new(3).select_victim(&candidates), Some(2));
        assert_eq!(Greedy.select_victim(&candidates), Some(2));
        // A zero window is treated as unbounded rather than empty.
        assert_eq!(WindowedGreedy::new(0).select_victim(&candidates), Some(2));
    }

    #[test]
    fn policies_report_distinct_names() {
        let names = [
            Greedy.name(),
            CostBenefit.name(),
            CostAge.name(),
            WindowedGreedy::default().name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
