//! The cleaning-policy abstraction: block views, trigger decisions and the
//! [`CleaningPolicy`] trait.
//!
//! The paper's position is that block management — and cleaning above all —
//! belongs inside the device (§2, §3.5, §3.6).  This module makes the
//! cleaning *policy* a first-class value: the FTL exposes a snapshot of the
//! candidate blocks (a slice of [`BlockInfo`]) and delegates both the
//! trigger decision ("should this write wait for cleaning?") and victim
//! selection ("which block is cheapest to reclaim?") to a policy object.
//! The mechanics of moving pages and erasing blocks stay in the FTL; the
//! policy never touches flash state.

use crate::index::{PickContext, VictimIndex};

/// A snapshot of one candidate victim block, as seen by a cleaning policy.
///
/// The FTL builds one `BlockInfo` per *candidate* block — blocks that are
/// not the current append point, not erased, and hold at least one stale
/// page (cleaning a block with no stale pages frees nothing).  Candidates
/// are presented in ascending block order, so policies that scan linearly
/// and keep the first best candidate are deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block index within its element (or superblock index on the stripe
    /// FTL).
    pub block: u32,
    /// Pages still holding live data (must be migrated before erase).
    pub valid_pages: u32,
    /// Stale pages (reclaimed by an erase).
    pub invalid_pages: u32,
    /// Total pages in the block.
    pub total_pages: u32,
    /// Number of times the block has been erased.
    pub erase_count: u32,
    /// Host writes since the block was last programmed (a logical clock,
    /// not wall time).  Large means cold.
    pub age: u64,
}

impl BlockInfo {
    /// Fraction of the block still holding live data (LFS's `u`).
    pub fn utilization(&self) -> f64 {
        if self.total_pages == 0 {
            return 0.0;
        }
        self.valid_pages as f64 / self.total_pages as f64
    }
}

/// Everything a policy may consult when deciding whether to clean ahead of a
/// host write.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriggerContext {
    /// Fraction of physical pages currently free on the allocation target.
    pub free_fraction: f64,
    /// Cleaning should start below this free fraction.
    pub low_watermark: f64,
    /// Cleaning may not be postponed below this free fraction.
    pub critical_watermark: f64,
    /// Whether high-priority host requests are outstanding.
    pub priority_pending: bool,
    /// Whether the device is configured to postpone cleaning for priority
    /// requests (the paper's priority-aware cleaning, §3.6).
    pub priority_aware: bool,
}

/// A policy's answer to "should this host write wait for cleaning?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerDecision {
    /// Clean now, ahead of the host write.
    Clean,
    /// Cleaning is due (below the low watermark) but deliberately postponed
    /// — the FTL accounts this as a postponement.
    Postponed,
    /// No cleaning required.
    Idle,
}

/// The watermark trigger shared by the built-in policies; reproduces the
/// paper's scheme exactly (§3.6): clean below the low watermark, but under
/// priority-aware cleaning postpone until the critical watermark while
/// high-priority requests are outstanding.
pub fn watermark_trigger(ctx: &TriggerContext) -> TriggerDecision {
    if ctx.priority_aware && ctx.priority_pending {
        if ctx.free_fraction < ctx.critical_watermark {
            TriggerDecision::Clean
        } else if ctx.free_fraction < ctx.low_watermark {
            TriggerDecision::Postponed
        } else {
            TriggerDecision::Idle
        }
    } else if ctx.free_fraction < ctx.low_watermark {
        TriggerDecision::Clean
    } else {
        TriggerDecision::Idle
    }
}

/// A pluggable cleaning policy: trigger decision plus victim selection.
///
/// Implementations must be deterministic — given the same candidate slice
/// they must return the same victim — because the simulators promise
/// bit-for-bit reproducible experiments.
///
/// Victim selection is a two-tier API.  [`select_from_index`] is the hot
/// path the FTLs call: policies whose order the index maintains directly
/// ([`crate::Greedy`], [`crate::WindowedGreedy`]) override it with O(1) /
/// O(candidates) picks, while score-drifting policies ([`crate::CostBenefit`],
/// [`crate::CostAge`]) inherit the default, which materialises the
/// candidates into the index's reusable scratch buffer — no per-pick
/// allocation, candidates drawn from the non-empty buckets only — and
/// falls through to the slice tier, [`select_victim`].
///
/// Policies must also be `Send`: a boxed policy travels inside its FTL
/// (and `Ssd`) to a fleet worker thread.
///
/// [`select_from_index`]: CleaningPolicy::select_from_index
/// [`select_victim`]: CleaningPolicy::select_victim
pub trait CleaningPolicy: Send {
    /// Human-readable policy name (used in reports and experiment output).
    fn name(&self) -> &'static str;

    /// Whether a host write should wait for cleaning.  The default is the
    /// paper's watermark scheme ([`watermark_trigger`]).
    fn should_trigger(&self, ctx: &TriggerContext) -> TriggerDecision {
        watermark_trigger(ctx)
    }

    /// Picks the block to reclaim next from `candidates`, or `None` when
    /// no candidate is worth cleaning.  Candidates are in ascending block
    /// order and each holds at least one stale page.
    fn select_victim(&mut self, candidates: &[BlockInfo]) -> Option<u32>;

    /// Picks the block to reclaim next from the incremental
    /// [`VictimIndex`], or `None` when no candidate is worth cleaning.
    ///
    /// The default drains the index's non-empty buckets into its scratch
    /// buffer (ascending block order, the exact presentation of the
    /// pre-index full scan) and delegates to
    /// [`select_victim`](CleaningPolicy::select_victim); index-native
    /// policies override it.  Either way the choice must equal what
    /// `select_victim` would return over the equivalent snapshot.
    fn select_from_index(&mut self, index: &mut VictimIndex, ctx: &PickContext) -> Option<u32> {
        let candidates = index.scan_candidates(ctx);
        self.select_victim(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(free: f64, pending: bool, aware: bool) -> TriggerContext {
        TriggerContext {
            free_fraction: free,
            low_watermark: 0.05,
            critical_watermark: 0.02,
            priority_pending: pending,
            priority_aware: aware,
        }
    }

    #[test]
    fn agnostic_trigger_is_a_plain_watermark() {
        assert_eq!(
            watermark_trigger(&ctx(0.10, false, false)),
            TriggerDecision::Idle
        );
        assert_eq!(
            watermark_trigger(&ctx(0.04, false, false)),
            TriggerDecision::Clean
        );
        // Priority pending is irrelevant without priority awareness.
        assert_eq!(
            watermark_trigger(&ctx(0.04, true, false)),
            TriggerDecision::Clean
        );
    }

    #[test]
    fn aware_trigger_postpones_between_watermarks() {
        assert_eq!(
            watermark_trigger(&ctx(0.04, true, true)),
            TriggerDecision::Postponed
        );
        assert_eq!(
            watermark_trigger(&ctx(0.01, true, true)),
            TriggerDecision::Clean
        );
        assert_eq!(
            watermark_trigger(&ctx(0.10, true, true)),
            TriggerDecision::Idle
        );
        // Without priority requests outstanding it degenerates to the plain
        // watermark.
        assert_eq!(
            watermark_trigger(&ctx(0.04, false, true)),
            TriggerDecision::Clean
        );
    }

    #[test]
    fn utilization_is_valid_over_total() {
        let info = BlockInfo {
            block: 0,
            valid_pages: 3,
            invalid_pages: 5,
            total_pages: 8,
            erase_count: 0,
            age: 0,
        };
        assert!((info.utilization() - 0.375).abs() < 1e-12);
        let empty = BlockInfo {
            total_pages: 0,
            ..info
        };
        assert_eq!(empty.utilization(), 0.0);
    }
}
