//! Disk model parameters.

use ossd_sim::SimDuration;

/// Parameters of the analytic disk model.
///
/// Defaults approximate a 7200 RPM desktop drive of the paper's era
/// (Seagate Barracuda 7200.11 class): ~8.5 ms average seek, ~120 MB/s outer
/// and ~60 MB/s inner media rate.
#[derive(Clone, Debug, PartialEq)]
pub struct HddConfig {
    /// Device name used in reports.
    pub name: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Single-track (minimum) seek time.
    pub track_to_track_seek: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub full_stroke_seek: SimDuration,
    /// Media transfer rate at the outermost zone, bytes per second.
    pub outer_zone_bytes_per_sec: u64,
    /// Media transfer rate at the innermost zone, bytes per second.
    pub inner_zone_bytes_per_sec: u64,
    /// Fixed command processing overhead per request.
    pub command_overhead: SimDuration,
    /// Whether the drive has a write-back cache that absorbs small writes
    /// (completes them at interface speed and destages lazily).
    pub write_cache: bool,
    /// Interface (SATA) bandwidth in bytes per second, used for cache hits.
    pub interface_bytes_per_sec: u64,
    /// Seed for the rotational-position randomness, so runs are reproducible.
    pub seed: u64,
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig {
            name: "HDD-7200rpm".to_string(),
            capacity_bytes: 500 * 1_000_000_000,
            rpm: 7200,
            track_to_track_seek: SimDuration::from_micros(800),
            full_stroke_seek: SimDuration::from_millis(18),
            outer_zone_bytes_per_sec: 120_000_000,
            inner_zone_bytes_per_sec: 60_000_000,
            command_overhead: SimDuration::from_micros(100),
            write_cache: true,
            interface_bytes_per_sec: 300_000_000,
            seed: 0x5EEDBA5E,
        }
    }
}

impl HddConfig {
    /// The configuration used for the paper's Table 2 comparison.
    pub fn barracuda_7200() -> Self {
        HddConfig::default()
    }

    /// Full revolution time.
    pub fn rotation_time(&self) -> SimDuration {
        if self.rpm == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Average rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> SimDuration {
        self.rotation_time() / 2
    }

    /// Media rate at a given byte offset: interpolates linearly from the
    /// outer (fast) zone at offset 0 to the inner (slow) zone at the end of
    /// the device, modelling zoned recording (§3.3).
    pub fn media_rate_at(&self, offset: u64) -> u64 {
        if self.capacity_bytes == 0 {
            return self.outer_zone_bytes_per_sec;
        }
        let frac = (offset.min(self.capacity_bytes)) as f64 / self.capacity_bytes as f64;
        let outer = self.outer_zone_bytes_per_sec as f64;
        let inner = self.inner_zone_bytes_per_sec as f64;
        (outer + (inner - outer) * frac) as u64
    }

    /// Seek time for a given seek distance, expressed as a fraction of the
    /// full stroke.  Uses the standard square-root-of-distance model with a
    /// minimum of the track-to-track time; zero distance means no seek.
    pub fn seek_time(&self, distance_fraction: f64) -> SimDuration {
        if distance_fraction <= 0.0 {
            return SimDuration::ZERO;
        }
        let d = distance_fraction.min(1.0);
        let min = self.track_to_track_seek.as_secs_f64();
        let max = self.full_stroke_seek.as_secs_f64();
        SimDuration::from_secs_f64(min + (max - min) * d.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_times() {
        let c = HddConfig::default();
        assert!((c.rotation_time().as_millis_f64() - 8.333).abs() < 0.01);
        assert!((c.avg_rotational_latency().as_millis_f64() - 4.166).abs() < 0.01);
        let zero = HddConfig {
            rpm: 0,
            ..HddConfig::default()
        };
        assert_eq!(zero.rotation_time(), SimDuration::ZERO);
    }

    #[test]
    fn zoned_media_rate_decreases_inward() {
        let c = HddConfig::default();
        let outer = c.media_rate_at(0);
        let middle = c.media_rate_at(c.capacity_bytes / 2);
        let inner = c.media_rate_at(c.capacity_bytes);
        assert_eq!(outer, 120_000_000);
        assert_eq!(inner, 60_000_000);
        assert!(outer > middle && middle > inner);
        // Beyond-capacity offsets clamp instead of extrapolating.
        assert_eq!(c.media_rate_at(c.capacity_bytes * 2), inner);
    }

    #[test]
    fn seek_curve_is_monotone_and_bounded() {
        let c = HddConfig::default();
        assert_eq!(c.seek_time(0.0), SimDuration::ZERO);
        let short = c.seek_time(0.001);
        let medium = c.seek_time(0.25);
        let full = c.seek_time(1.0);
        assert!(short >= c.track_to_track_seek);
        assert!(short < medium && medium < full);
        assert!(full <= c.full_stroke_seek);
        // Average-ish seek (quarter stroke) lands in a plausible range.
        let ms = medium.as_millis_f64();
        assert!(ms > 4.0 && ms < 14.0, "quarter-stroke seek {ms} ms");
        // Distances beyond 1.0 are clamped.
        assert_eq!(c.seek_time(5.0), full);
    }
}
