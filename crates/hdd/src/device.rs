//! The analytic disk device.

use ossd_block::{
    arbitrate_round_robin, BlockDevice, BlockOpKind, BlockRequest, Completion, DeviceError,
    DeviceInfo, HostCommand, HostInterface, HostQueue,
};
use ossd_sim::engine::{Controller, DispatchedOp};
use ossd_sim::{Server, SimDuration, SimRng, SimTime};

use crate::config::HddConfig;

/// Cumulative disk statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HddStats {
    /// Host read requests served.
    pub host_reads: u64,
    /// Host write requests served.
    pub host_writes: u64,
    /// Requests recognised as sequential (no seek, no rotational latency).
    pub sequential_hits: u64,
    /// Writes absorbed by the write-back cache.
    pub cached_writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// A simulated hard disk drive.
pub struct Hdd {
    config: HddConfig,
    arm: Server,
    rng: SimRng,
    head_position: u64,
    last_end: Option<u64>,
    stats: HddStats,
}

impl Hdd {
    /// Builds a disk from its configuration.
    pub fn new(config: HddConfig) -> Self {
        let rng = SimRng::seed_from_u64(config.seed);
        Hdd {
            config,
            arm: Server::new(),
            rng,
            head_position: 0,
            last_end: None,
            stats: HddStats::default(),
        }
    }

    /// The disk configuration.
    pub fn config(&self) -> &HddConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> HddStats {
        self.stats
    }

    /// Computes the mechanical + transfer service time for a request and
    /// whether it was a sequential continuation of the previous access.
    fn service_time(&mut self, req: &BlockRequest) -> (SimDuration, bool) {
        let sequential = self.last_end == Some(req.range.offset);
        let transfer = SimDuration::from_bytes_at_rate(
            req.range.len,
            self.config.media_rate_at(req.range.offset),
        );
        let mechanical = if sequential {
            // Streaming: the head is already positioned and the next sector
            // is about to pass under it.
            SimDuration::ZERO
        } else {
            let distance = req.range.offset.abs_diff(self.head_position) as f64
                / self.config.capacity_bytes.max(1) as f64;
            let seek = self.config.seek_time(distance);
            let rotation = self
                .rng
                .uniform_duration(SimDuration::ZERO, self.config.rotation_time());
            seek + rotation
        };
        (
            self.config.command_overhead + mechanical + transfer,
            sequential,
        )
    }

    /// Runs one session of queue-pair commands through the event engine,
    /// returning one completion per command in the input order.
    fn serve_session(&mut self, commands: &[HddCommand]) -> Result<Vec<Completion>, DeviceError> {
        let arrivals: Vec<SimTime> = commands.iter().map(|c| c.arrival).collect();
        let initiators = commands.iter().map(|c| c.initiator + 1).max().unwrap_or(0);
        let mut controller = HddController {
            hdd: self,
            commands,
            ready: Vec::new(),
            unfinished: 0,
            initiator_finish: vec![SimTime::ZERO; initiators],
            completions: vec![None; commands.len()],
        };
        ossd_sim::engine::run(&mut controller, &arrivals)?;
        Ok(controller
            .completions
            .into_iter()
            .map(|c| c.expect("every command was dispatched"))
            .collect())
    }

    /// Runs an open-arrival simulation of `requests` through the event
    /// engine, returning one completion per request in the input order.
    ///
    /// The disk has a single mechanical resource (the arm), so its
    /// controller dispatches in arrival order: each arrival is issued
    /// immediately and the arm's busy-until-time accounting serializes
    /// service.  The value of routing the disk through the same
    /// [`Controller`] engine as the SSD is that mixed-device experiments
    /// share one notion of arrivals, completions and idle windows.
    pub fn simulate_open(
        &mut self,
        requests: &[BlockRequest],
    ) -> Result<Vec<Completion>, DeviceError> {
        let commands: Vec<HddCommand> = requests
            .iter()
            .map(|r| HddCommand {
                initiator: 0,
                id: r.id,
                arrival: r.arrival,
                payload: HddPayload::Data(*r),
            })
            .collect();
        self.serve_session(&commands)
    }
}

/// What one session command asks the disk to do.
#[derive(Clone, Copy, Debug)]
enum HddPayload {
    /// A block data operation.
    Data(BlockRequest),
    /// Ordering fence: completes when every earlier command of its
    /// initiator has (the arm's serial service already enforces the
    /// ordering for data that follows).
    Barrier,
    /// Like a barrier, but additionally waits for the write-back cache to
    /// destage: cached writes complete at interface speed while the arm
    /// keeps working, and a flush forces that dirty data to stable media,
    /// so it cannot return before the arm goes idle.
    Flush,
}

/// One queue-pair command in a disk session.
#[derive(Clone, Copy, Debug)]
struct HddCommand {
    initiator: usize,
    id: u64,
    arrival: SimTime,
    payload: HddPayload,
}

/// Engine controller over an [`Hdd`] for one session of commands.
struct HddController<'a> {
    hdd: &'a mut Hdd,
    commands: &'a [HddCommand],
    /// Arrived commands not yet issued to the arm.
    ready: Vec<usize>,
    unfinished: usize,
    /// Latest finish time of each initiator's dispatched commands (what a
    /// fence reports as its completion).
    initiator_finish: Vec<SimTime>,
    completions: Vec<Option<Completion>>,
}

impl Controller for HddController<'_> {
    type Error = DeviceError;

    fn on_arrival(&mut self, index: usize, _now: SimTime) -> Result<(), DeviceError> {
        self.ready.push(index);
        Ok(())
    }

    fn poll_dispatch(&mut self, _now: SimTime) -> Result<Vec<DispatchedOp>, DeviceError> {
        let mut out = Vec::new();
        for index in std::mem::take(&mut self.ready) {
            let command = &self.commands[index];
            let completion = match command.payload {
                HddPayload::Data(ref request) => self.hdd.submit(request)?,
                HddPayload::Barrier | HddPayload::Flush => {
                    // Commands dispatch in arrival order, so every earlier
                    // command of this initiator has already been timed; the
                    // fence completes once the last of them finishes.  A
                    // flush additionally waits for the arm to finish
                    // destaging cached writes to the platters.
                    let mut drained = command
                        .arrival
                        .max(self.initiator_finish[command.initiator]);
                    if matches!(command.payload, HddPayload::Flush) {
                        drained = drained.max(self.hdd.arm.next_free());
                    }
                    Completion::ok(command.id, command.arrival, drained, drained)
                }
            };
            self.initiator_finish[command.initiator] =
                self.initiator_finish[command.initiator].max(completion.finish);
            self.unfinished += 1;
            out.push(DispatchedOp {
                token: index as u64,
                start: completion.start,
                complete: completion.finish,
            });
            self.completions[index] = Some(completion);
        }
        Ok(out)
    }

    fn on_op_complete(&mut self, _token: u64, _now: SimTime) -> Result<(), DeviceError> {
        self.unfinished -= 1;
        Ok(())
    }

    fn in_flight(&self) -> usize {
        self.unfinished + self.ready.len()
    }
}

impl HostInterface for Hdd {
    /// Serves the initiator queues through the event engine: submissions
    /// are arbitrated round-robin into one session and completions are
    /// posted back to each initiator's completion queue in completion
    /// order.  Object commands are rejected — a disk only speaks the block
    /// subset of the protocol.
    fn serve(&mut self, queues: &mut [HostQueue]) -> Result<(), DeviceError> {
        let arbitrated = arbitrate_round_robin(queues);
        let mut initiators = Vec::with_capacity(arbitrated.len());
        let mut commands = Vec::with_capacity(arbitrated.len());
        for cmd in &arbitrated {
            let sub = cmd.submission;
            let payload = match sub.command {
                HostCommand::Flush => HddPayload::Flush,
                HostCommand::Barrier => HddPayload::Barrier,
                ref c if c.is_object_command() => {
                    return Err(DeviceError::Unsupported {
                        what: "object commands on a block device",
                    });
                }
                ref c => {
                    let request = c
                        .to_request(sub.id, sub.arrival, sub.priority)
                        .expect("block data command");
                    self.check_bounds(&request)?;
                    HddPayload::Data(request)
                }
            };
            initiators.push(cmd.initiator);
            commands.push(HddCommand {
                initiator: cmd.initiator,
                id: sub.id,
                arrival: sub.arrival,
                payload,
            });
        }
        let completions = self.serve_session(&commands)?;
        ossd_block::host::complete_session(
            queues,
            initiators.into_iter().zip(completions).collect(),
        );
        Ok(())
    }
}

impl BlockDevice for Hdd {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: self.config.name.clone(),
            capacity_bytes: self.config.capacity_bytes,
            supports_free: false,
        }
    }

    fn submit(&mut self, request: &BlockRequest) -> Result<Completion, DeviceError> {
        self.check_bounds(request)?;
        let start = request.arrival.max(self.arm.next_free());
        let finish = match request.kind {
            BlockOpKind::Free => {
                // Disks have no notion of free blocks; the notification is
                // accepted and ignored (the contract-violation the paper
                // describes is precisely that only the file system knows).
                request.arrival
            }
            BlockOpKind::Read | BlockOpKind::Write => {
                let (mut service, sequential) = self.service_time(request);
                if sequential {
                    self.stats.sequential_hits += 1;
                }
                let mut cached = false;
                if request.kind == BlockOpKind::Write
                    && self.config.write_cache
                    && !sequential
                    && self.arm.is_idle_at(request.arrival)
                {
                    // A burst of random writes hitting an idle drive is
                    // absorbed by the write-back cache at interface speed;
                    // the destage still occupies the arm, so *sustained*
                    // random writes remain seek-bound (which is what the
                    // closed-loop bandwidth of Table 2 measures).
                    let cache_time = self.config.command_overhead
                        + SimDuration::from_bytes_at_rate(
                            request.range.len,
                            self.config.interface_bytes_per_sec,
                        );
                    if cache_time < service {
                        self.arm.serve(request.arrival, service);
                        service = cache_time;
                        cached = true;
                        self.stats.cached_writes += 1;
                    }
                }
                if !cached {
                    self.arm.serve(request.arrival, service);
                }
                match request.kind {
                    BlockOpKind::Read => {
                        self.stats.host_reads += 1;
                        self.stats.bytes_read += request.range.len;
                    }
                    BlockOpKind::Write => {
                        self.stats.host_writes += 1;
                        self.stats.bytes_written += request.range.len;
                    }
                    BlockOpKind::Free => {}
                }
                self.head_position = request.range.end();
                self.last_end = Some(request.range.end());
                start + service
            }
        };
        Ok(Completion::ok(
            request.id,
            request.arrival,
            start,
            finish.max(start),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossd_block::{replay_closed, BlockRequest};
    use ossd_sim::SimTime;

    fn hdd() -> Hdd {
        Hdd::new(HddConfig::default())
    }

    fn sequential_reads(count: u64, size: u64) -> Vec<BlockRequest> {
        (0..count)
            .map(|i| BlockRequest::read(i, i * size, size, SimTime::ZERO))
            .collect()
    }

    fn random_reads(count: u64, size: u64, capacity: u64) -> Vec<BlockRequest> {
        (0..count)
            .map(|i| {
                let offset = ((i * 2_654_435_761) % (capacity / size)) * size;
                BlockRequest::read(i, offset, size, SimTime::ZERO)
            })
            .collect()
    }

    #[test]
    fn info_and_bounds() {
        let mut d = hdd();
        assert_eq!(d.info().name, "HDD-7200rpm");
        assert!(!d.info().supports_free);
        let too_far = BlockRequest::read(0, d.capacity_bytes(), 4096, SimTime::ZERO);
        assert!(matches!(
            d.submit(&too_far),
            Err(DeviceError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn sequential_reads_stream_at_media_rate() {
        let mut d = hdd();
        let reqs = sequential_reads(256, 64 * 1024);
        let report = replay_closed(&mut d, &reqs).unwrap();
        let mbps = report.read_bandwidth_mbps();
        // Outer zone is 120 MB/s; command overhead shaves a little off.
        assert!(mbps > 60.0 && mbps <= 121.0, "sequential read {mbps} MB/s");
        assert!(d.stats().sequential_hits >= 255);
    }

    #[test]
    fn random_reads_are_dominated_by_seek_and_rotation() {
        let mut d = hdd();
        let reqs = random_reads(200, 4096, d.capacity_bytes());
        let report = replay_closed(&mut d, &reqs).unwrap();
        let mbps = report.read_bandwidth_mbps();
        assert!(mbps < 2.0, "random read {mbps} MB/s should be tiny");
        // Average service ≈ seek + half rotation: several milliseconds.
        let mean_ms = report.reads.mean_millis();
        assert!(mean_ms > 3.0 && mean_ms < 30.0, "mean {mean_ms} ms");
    }

    #[test]
    fn sequential_to_random_ratio_is_large() {
        let mut seq_dev = hdd();
        let seq = replay_closed(&mut seq_dev, &sequential_reads(256, 4096)).unwrap();
        let mut rnd_dev = hdd();
        let rnd_reqs = random_reads(256, 4096, rnd_dev.capacity_bytes());
        let rnd = replay_closed(&mut rnd_dev, &rnd_reqs).unwrap();
        let ratio = seq.read_bandwidth_mbps() / rnd.read_bandwidth_mbps();
        // Table 2 reports ~144x for reads; anything north of 30x shows the
        // contract clearly holds for disks.
        assert!(ratio > 30.0, "seq/rand ratio {ratio}");
    }

    #[test]
    fn write_cache_absorbs_idle_bursts_but_not_sustained_writes() {
        // Widely spaced random writes hit an idle drive and are absorbed by
        // the cache; the same writes issued back-to-back are seek-bound.
        let spaced_writes = |cache: bool| -> f64 {
            let mut d = Hdd::new(HddConfig {
                write_cache: cache,
                ..HddConfig::default()
            });
            let mut total = 0.0;
            for i in 0..50u64 {
                let offset = ((i * 2_654_435_761) % 1_000_000) * 4096;
                // 100 ms apart: the arm has always finished destaging.
                let req = BlockRequest::write(i, offset, 4096, SimTime::from_millis(i * 100));
                total += d.submit(&req).unwrap().response_time().as_millis_f64();
            }
            total / 50.0
        };
        assert!(spaced_writes(true) < spaced_writes(false));

        // Sustained (closed-loop) random writes are not masked by the cache:
        // Table 2's random-write bandwidth stays tiny.
        let mut d = hdd();
        let reqs: Vec<BlockRequest> = random_reads(200, 4096, d.capacity_bytes())
            .into_iter()
            .map(|r| BlockRequest::write(r.id, r.range.offset, r.range.len, r.arrival))
            .collect();
        let report = replay_closed(&mut d, &reqs).unwrap();
        assert!(report.write_bandwidth_mbps() < 3.0);
    }

    #[test]
    fn free_notifications_are_ignored_but_accepted() {
        let mut d = hdd();
        let f = BlockRequest::free(0, 0, 4096, SimTime::from_micros(5));
        let c = d.submit(&f).unwrap();
        assert_eq!(c.finish, SimTime::from_micros(5));
        assert_eq!(d.stats().host_reads + d.stats().host_writes, 0);
    }

    #[test]
    fn inner_zone_transfers_are_slower() {
        let mut d = hdd();
        let outer = BlockRequest::read(0, 0, 8 * 1024 * 1024, SimTime::ZERO);
        let outer_c = d.submit(&outer).unwrap();
        let inner_offset = d.capacity_bytes() - 8 * 1024 * 1024;
        let inner = BlockRequest::read(1, inner_offset, 8 * 1024 * 1024, outer_c.finish);
        let inner_c = d.submit(&inner).unwrap();
        // Both include one seek + rotation, but the inner transfer of 8 MB
        // takes measurably longer.
        assert!(inner_c.response_time() > outer_c.response_time());
    }

    #[test]
    fn open_simulation_matches_sequential_submission() {
        // The engine-driven open simulation must agree with submitting the
        // same trace directly: the arm's busy-until-time accounting is the
        // only scheduler either path has.
        let reqs: Vec<BlockRequest> = (0..64u64)
            .map(|i| {
                let offset = ((i * 2_654_435_761) % 1_000_000) * 4096;
                BlockRequest::read(i, offset, 4096, SimTime::from_micros(i * 500))
            })
            .collect();
        let mut direct = hdd();
        let expected: Vec<Completion> = reqs.iter().map(|r| direct.submit(r).unwrap()).collect();
        let mut open = hdd();
        let got = open.simulate_open(&reqs).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn determinism_with_same_seed() {
        let run = || {
            let mut d = hdd();
            let reqs = random_reads(64, 4096, d.capacity_bytes());
            replay_closed(&mut d, &reqs).unwrap().reads.mean_millis()
        };
        assert_eq!(run(), run());
    }
}
