//! Hard-disk-drive simulator.
//!
//! The paper contrasts SSDs with a conventional disk (a 7200 RPM Seagate
//! Barracuda) whose sequential bandwidth is two orders of magnitude higher
//! than its random bandwidth (Table 2) and whose "unwritten contract"
//! assumptions — sequential ≫ random, nearby LBNs mean short seeks, zoned
//! recording, passive device — the rest of the paper examines.  This crate
//! provides an analytic disk model sufficient to reproduce those properties:
//! a seek-time curve, rotational latency, zoned transfer rates, and
//! streaming detection for sequential access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod device;

pub use config::HddConfig;
pub use device::Hdd;
