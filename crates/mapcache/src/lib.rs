//! SRAM-budgeted demand-paged mapping cache (DFTL-style).
//!
//! A page-mapped FTL at TB-class capacity cannot hold its full
//! logical-to-physical table in controller SRAM: at 8 bytes per entry a
//! 1 TiB device with 16 KiB pages needs 512 MiB of map.  DFTL's answer —
//! and this crate's — is to keep the authoritative map in *translation
//! pages* on flash and cache only the hot entries in a budget-limited
//! SRAM cache:
//!
//! * each **translation page** packs `entries_per_tp` consecutive map
//!   entries (`page_bytes / 8`), addressed by a *translation page number*
//!   `tpn = lpn / entries_per_tp`;
//! * a small SRAM **global translation directory** (owned by the FTL, not
//!   this crate) maps each tpn to the flash page holding its current
//!   version;
//! * the **map cache** (this crate) holds individual `lpn → ppn` entries
//!   under a configurable entry budget with CLOCK or LRU eviction; a miss
//!   costs a real map-read flash operation, and evicting a *dirty* entry
//!   costs a read-modify-write of its translation page — batched, so every
//!   dirty entry of the same translation page rides along and is cleaned
//!   in one writeback.
//!
//! The cache is a pure, deterministic data structure: it never performs
//! I/O itself but tells its caller (the FTL) exactly which translation
//! pages to read and write back.  All iteration orders are deterministic
//! (the internal hash index is only ever probed by key; writeback batches
//! are sorted), so seeded simulations stay bit-for-bit reproducible.
//!
//! With an infinite budget ([`MapCacheConfig::entry_budget`]` = None`) the
//! cache never evicts, therefore never writes back, therefore never
//! materializes a translation page on flash — and a demand-paged FTL
//! degenerates to its resident-table behavior exactly, which is what the
//! equivalence suite pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Bytes per map entry (a packed 64-bit physical page number).
pub const ENTRY_BYTES: u64 = 8;

const NIL: u32 = u32::MAX;

/// Eviction policy of the map cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// CLOCK (second chance): a hand sweeps the entries oldest-first,
    /// clearing reference bits; the first unreferenced entry is evicted.
    /// O(1) amortized and within a few percent of LRU's hit rate — what
    /// real controllers ship.
    #[default]
    Clock,
    /// Strict least-recently-used via an intrusive recency list.
    Lru,
}

impl EvictionPolicy {
    /// Short lowercase name for CSV/report columns.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Clock => "clock",
            EvictionPolicy::Lru => "lru",
        }
    }
}

/// Configuration of the demand-paged map cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MapCacheConfig {
    /// Maximum cached entries; `None` means infinite (every entry fits, no
    /// eviction ever happens, and the FTL behaves exactly like its
    /// resident-table variant while still exercising the cache code).
    pub entry_budget: Option<u64>,
    /// Eviction policy once the budget is reached.
    pub policy: EvictionPolicy,
}

impl MapCacheConfig {
    /// An infinite-budget cache (resident-table equivalent).
    pub fn infinite() -> Self {
        MapCacheConfig::default()
    }

    /// Returns this config with the entry budget set.
    pub fn with_budget(mut self, entries: u64) -> Self {
        self.entry_budget = Some(entries);
        self
    }

    /// Returns this config with the eviction policy set.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry_budget == Some(0) {
            return Err("map cache entry budget must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Cumulative demand-paged-mapping statistics, reported by the FTL through
/// `Ftl::map_stats` and surfaced in `SsdStats` and the telemetry series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Mapping bytes currently resident in (simulated) SRAM: the cached
    /// entries plus the global translation directory for a demand-paged
    /// FTL; the whole table for a resident FTL.
    pub bytes_resident: u64,
    /// Bytes the full mapping table would occupy resident (the SRAM the
    /// demand-paged cache is saving).
    pub bytes_total: u64,
    /// Map-cache lookups satisfied from SRAM.
    pub hits: u64,
    /// Map-cache lookups that missed (each costs a map read once the
    /// translation page is materialized on flash).
    pub misses: u64,
    /// Clean entries evicted (dropped for free).
    pub evictions_clean: u64,
    /// Dirty entries evicted (each forces a translation-page writeback).
    pub evictions_dirty: u64,
    /// Translation-page writeback programs triggered by dirty evictions
    /// and flushes (batched: one per translation page, not per entry).
    pub writebacks: u64,
    /// Dirty entries cleaned by those writebacks.
    pub entries_written_back: u64,
    /// Translation-page read operations issued to flash.
    pub map_reads: u64,
    /// Translation-page program operations issued to flash (writebacks
    /// plus GC relocations of translation pages).
    pub map_writes: u64,
    /// Valid translation pages relocated by cleaning/wear-leveling.
    pub map_gc_moves: u64,
}

impl MapStats {
    /// Total map-cache accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; a resident table (no accesses) reports 1.0.
    pub fn hit_rate(&self) -> f64 {
        let accesses = self.accesses();
        if accesses == 0 {
            1.0
        } else {
            self.hits as f64 / accesses as f64
        }
    }
}

/// An entry pushed out of the cache by [`MapCache::insert`].
///
/// A dirty eviction obliges the caller to write the entry's translation
/// page back: call [`MapCache::writeback_batch`] with the evicted pair to
/// collect every dirty sibling of the same translation page into one
/// batched read-modify-write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Logical page number of the evicted entry.
    pub lpn: u64,
    /// Cached physical page number of the evicted entry.
    pub ppn: u64,
    /// Whether the entry was dirty (newer than its on-flash translation
    /// page).
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    lpn: u64,
    ppn: u64,
    dirty: bool,
    referenced: bool,
    /// Recency list: `prev` points towards the MRU head, `next` towards
    /// the LRU tail.
    prev: u32,
    next: u32,
    /// Position in its translation page's dirty-slot vector while dirty.
    dirty_pos: u32,
}

/// The SRAM-budgeted map cache.  See the crate docs for the model.
#[derive(Clone, Debug)]
pub struct MapCache {
    config: MapCacheConfig,
    entries_per_tp: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// lpn → slot.  Only ever probed by key (never iterated), so the
    /// hash map cannot leak nondeterminism into the simulation.
    index: HashMap<u64, u32>,
    /// MRU end of the recency list.
    head: u32,
    /// LRU end of the recency list.
    tail: u32,
    /// CLOCK hand: the next slot the sweep examines (NIL restarts at the
    /// tail).
    hand: u32,
    /// tpn → dirty slots of that translation page (batched writeback).
    /// Only ever probed by key; batch order is sorted by lpn on drain.
    dirty_by_tpn: HashMap<u64, Vec<u32>>,
    hits: u64,
    misses: u64,
    evictions_clean: u64,
    evictions_dirty: u64,
    writebacks: u64,
    entries_written_back: u64,
}

impl MapCache {
    /// Builds a cache; `entries_per_tp` is the number of map entries one
    /// translation page packs (`page_bytes / 8`, at least 1).
    pub fn new(config: MapCacheConfig, entries_per_tp: u64) -> Self {
        MapCache {
            config,
            entries_per_tp: entries_per_tp.max(1),
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            hand: NIL,
            dirty_by_tpn: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions_clean: 0,
            evictions_dirty: 0,
            writebacks: 0,
            entries_written_back: 0,
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &MapCacheConfig {
        &self.config
    }

    /// Map entries per translation page.
    pub fn entries_per_tp(&self) -> u64 {
        self.entries_per_tp
    }

    /// The translation page holding `lpn`'s entry.
    pub fn tpn_of(&self, lpn: u64) -> u64 {
        lpn / self.entries_per_tp
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Dirty entries awaiting writeback.
    pub fn dirty_len(&self) -> usize {
        self.dirty_by_tpn.values().map(Vec::len).sum()
    }

    /// Looks `lpn` up, counting a hit or miss and touching the entry for
    /// the eviction policy.  On a miss the caller fetches the entry (a
    /// map-read flash op if the translation page is materialized) and
    /// calls [`MapCache::insert`].
    pub fn lookup(&mut self, lpn: u64) -> Option<u64> {
        match self.index.get(&lpn).copied() {
            Some(slot) => {
                self.hits += 1;
                self.touch(slot);
                Some(self.slots[slot as usize].ppn)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The cached ppn of `lpn` without counting or touching (tests and
    /// assertions).
    pub fn peek(&self, lpn: u64) -> Option<u64> {
        self.index
            .get(&lpn)
            .map(|&slot| self.slots[slot as usize].ppn)
    }

    /// Whether `lpn`'s entry is currently dirty.
    pub fn is_dirty(&self, lpn: u64) -> bool {
        self.index
            .get(&lpn)
            .is_some_and(|&slot| self.slots[slot as usize].dirty)
    }

    /// Inserts (or updates) `lpn → ppn`, evicting one entry first when the
    /// budget is full.  A returned dirty [`Eviction`] obliges the caller
    /// to write back its translation page (see
    /// [`MapCache::writeback_batch`]).
    pub fn insert(&mut self, lpn: u64, ppn: u64, dirty: bool) -> Option<Eviction> {
        if let Some(&slot) = self.index.get(&lpn) {
            self.slots[slot as usize].ppn = ppn;
            if dirty {
                self.mark_dirty(slot);
            }
            self.touch(slot);
            return None;
        }
        let evicted = match self.config.entry_budget {
            Some(budget) if self.index.len() as u64 >= budget => Some(self.evict_one()),
            _ => None,
        };
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    lpn: 0,
                    ppn: 0,
                    dirty: false,
                    referenced: false,
                    prev: NIL,
                    next: NIL,
                    dirty_pos: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Slot {
            lpn,
            ppn,
            dirty: false,
            referenced: true,
            prev: NIL,
            next: NIL,
            dirty_pos: NIL,
        };
        self.index.insert(lpn, slot);
        self.push_front(slot);
        if dirty {
            self.mark_dirty(slot);
        }
        evicted
    }

    /// Updates `lpn`'s entry in place if cached — the FTL calls this when
    /// relocation (GC, wear-leveling) or a TRIM changes a mapping outside
    /// the host lookup path.  Does not touch the entry or count an access.
    /// Returns whether the entry was present; when it was not, the caller
    /// owns updating the on-flash translation page.
    pub fn update(&mut self, lpn: u64, ppn: u64, mark_dirty: bool) -> bool {
        let Some(&slot) = self.index.get(&lpn) else {
            return false;
        };
        self.slots[slot as usize].ppn = ppn;
        if mark_dirty {
            self.mark_dirty(slot);
        }
        true
    }

    /// Collects the batched writeback for translation page `tpn`: every
    /// dirty cached entry of that page (marked clean, but kept cached)
    /// plus the just-evicted pair, sorted by lpn.  Counts one writeback.
    pub fn writeback_batch(&mut self, tpn: u64, evicted: Option<(u64, u64)>) -> Vec<(u64, u64)> {
        let mut batch: Vec<(u64, u64)> = Vec::new();
        if let Some(slots) = self.dirty_by_tpn.remove(&tpn) {
            for slot in slots {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.dirty);
                s.dirty = false;
                s.dirty_pos = NIL;
                batch.push((s.lpn, s.ppn));
            }
        }
        if let Some(pair) = evicted {
            batch.push(pair);
        }
        batch.sort_unstable();
        self.writebacks += 1;
        self.entries_written_back += batch.len() as u64;
        batch
    }

    /// Drains every dirty entry as `(tpn, batch)` groups in ascending tpn
    /// order (flush/shutdown).  All drained entries stay cached, clean.
    pub fn drain_dirty(&mut self) -> Vec<(u64, Vec<(u64, u64)>)> {
        let mut tpns: Vec<u64> = self.dirty_by_tpn.keys().copied().collect();
        tpns.sort_unstable();
        tpns.into_iter()
            .map(|tpn| (tpn, self.writeback_batch(tpn, None)))
            .collect()
    }

    /// Adds the cache's counters and resident footprint to `stats`.
    pub fn stats_into(&self, stats: &mut MapStats) {
        stats.bytes_resident += self.index.len() as u64 * ENTRY_BYTES;
        stats.hits = self.hits;
        stats.misses = self.misses;
        stats.evictions_clean = self.evictions_clean;
        stats.evictions_dirty = self.evictions_dirty;
        stats.writebacks = self.writebacks;
        stats.entries_written_back = self.entries_written_back;
    }

    fn touch(&mut self, slot: u32) {
        match self.config.policy {
            EvictionPolicy::Clock => self.slots[slot as usize].referenced = true,
            EvictionPolicy::Lru => {
                if self.head != slot {
                    self.detach(slot);
                    self.push_front(slot);
                }
            }
        }
    }

    fn mark_dirty(&mut self, slot: u32) {
        let (lpn, already) = {
            let s = &self.slots[slot as usize];
            (s.lpn, s.dirty)
        };
        if already {
            return;
        }
        let tpn = self.tpn_of(lpn);
        let list = self.dirty_by_tpn.entry(tpn).or_default();
        self.slots[slot as usize].dirty = true;
        self.slots[slot as usize].dirty_pos = list.len() as u32;
        list.push(slot);
    }

    fn set_clean(&mut self, slot: u32) {
        let (lpn, dirty, pos) = {
            let s = &self.slots[slot as usize];
            (s.lpn, s.dirty, s.dirty_pos)
        };
        if !dirty {
            return;
        }
        let tpn = self.tpn_of(lpn);
        let list = self
            .dirty_by_tpn
            .get_mut(&tpn)
            .expect("dirty slot has a tpn list");
        list.swap_remove(pos as usize);
        if let Some(&moved) = list.get(pos as usize) {
            self.slots[moved as usize].dirty_pos = pos;
        }
        if list.is_empty() {
            self.dirty_by_tpn.remove(&tpn);
        }
        let s = &mut self.slots[slot as usize];
        s.dirty = false;
        s.dirty_pos = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn detach(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        if self.hand == slot {
            // The hand sweeps towards the MRU head; resume past the
            // removed slot.
            self.hand = prev;
        }
    }

    /// Evicts one entry per policy.  Only called with a non-empty cache at
    /// a finite budget.
    fn evict_one(&mut self) -> Eviction {
        let victim = match self.config.policy {
            EvictionPolicy::Lru => self.tail,
            EvictionPolicy::Clock => {
                // Sweep LRU-tail → MRU-head, wrapping, clearing reference
                // bits; the first unreferenced slot is the victim.
                // Terminates within two laps (the first lap clears every
                // bit it passes).
                let mut cursor = if self.hand != NIL {
                    self.hand
                } else {
                    self.tail
                };
                loop {
                    if !self.slots[cursor as usize].referenced {
                        break cursor;
                    }
                    self.slots[cursor as usize].referenced = false;
                    let prev = self.slots[cursor as usize].prev;
                    cursor = if prev != NIL { prev } else { self.tail };
                }
            }
        };
        debug_assert_ne!(victim, NIL, "evict_one on an empty cache");
        let Slot {
            lpn, ppn, dirty, ..
        } = self.slots[victim as usize];
        if dirty {
            self.evictions_dirty += 1;
        } else {
            self.evictions_clean += 1;
        }
        self.set_clean(victim);
        self.detach(victim);
        self.index.remove(&lpn);
        self.free.push(victim);
        Eviction { lpn, ppn, dirty }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(budget: u64, policy: EvictionPolicy) -> MapCache {
        MapCache::new(
            MapCacheConfig::default()
                .with_budget(budget)
                .with_policy(policy),
            4,
        )
    }

    #[test]
    fn config_validation() {
        assert!(MapCacheConfig::infinite().validate().is_ok());
        assert!(MapCacheConfig::default().with_budget(1).validate().is_ok());
        assert!(MapCacheConfig::default().with_budget(0).validate().is_err());
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = cache(4, EvictionPolicy::Lru);
        assert_eq!(c.lookup(7), None);
        assert!(c.insert(7, 70, false).is_none());
        assert_eq!(c.lookup(7), Some(70));
        let mut stats = MapStats::default();
        c.stats_into(&mut stats);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.bytes_resident, ENTRY_BYTES);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infinite_budget_never_evicts() {
        let mut c = MapCache::new(MapCacheConfig::infinite(), 4);
        for lpn in 0..10_000u64 {
            assert!(c.insert(lpn, lpn * 10, true).is_none());
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c = cache(3, EvictionPolicy::Lru);
        for lpn in 0..3 {
            assert!(c.insert(lpn, lpn, false).is_none());
        }
        // Touch 0 so 1 becomes the LRU.
        assert_eq!(c.lookup(0), Some(0));
        let ev = c.insert(3, 3, false).expect("budget full");
        assert_eq!(
            ev,
            Eviction {
                lpn: 1,
                ppn: 1,
                dirty: false
            }
        );
        assert!(c.peek(1).is_none());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let mut c = cache(3, EvictionPolicy::Clock);
        for lpn in 0..3 {
            c.insert(lpn, lpn, false);
        }
        // All three carry the reference bit from insertion; the sweep
        // clears 0 (tail), 1, 2, wraps, and evicts 0.
        let ev = c.insert(3, 3, false).expect("budget full");
        assert_eq!(ev.lpn, 0);
        // 1 and 2 are now unreferenced; a lookup re-references 1, so the
        // next eviction (hand resumes past 0's old position) takes 2.
        assert_eq!(c.lookup(1), Some(1));
        let ev = c.insert(4, 4, false).expect("budget full");
        assert_eq!(ev.lpn, 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn upsert_updates_in_place_without_eviction() {
        let mut c = cache(2, EvictionPolicy::Lru);
        c.insert(1, 10, false);
        c.insert(2, 20, false);
        assert!(c.insert(1, 11, true).is_none());
        assert_eq!(c.peek(1), Some(11));
        assert!(c.is_dirty(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn writeback_batches_every_dirty_sibling_of_the_translation_page() {
        // entries_per_tp = 4: lpns 0..4 share tpn 0, 4..8 share tpn 1.
        let mut c = cache(8, EvictionPolicy::Lru);
        c.insert(0, 100, true);
        c.insert(2, 102, true);
        c.insert(3, 103, false);
        c.insert(5, 105, true);
        assert_eq!(c.tpn_of(5), 1);
        let batch = c.writeback_batch(0, Some((1, 101)));
        assert_eq!(batch, vec![(0, 100), (1, 101), (2, 102)]);
        // The batch is clean but stays cached; tpn 1 is untouched.
        assert!(!c.is_dirty(0) && !c.is_dirty(2));
        assert!(c.is_dirty(5));
        assert_eq!(c.peek(0), Some(100));
        let mut stats = MapStats::default();
        c.stats_into(&mut stats);
        assert_eq!(stats.writebacks, 1);
        assert_eq!(stats.entries_written_back, 3);
    }

    #[test]
    fn drain_dirty_flushes_in_ascending_tpn_order() {
        let mut c = cache(16, EvictionPolicy::Clock);
        for lpn in [9u64, 1, 6, 14] {
            c.insert(lpn, lpn * 10, true);
        }
        c.insert(2, 20, false);
        let drained = c.drain_dirty();
        assert_eq!(
            drained,
            vec![
                (0, vec![(1, 10)]),
                (1, vec![(6, 60)]),
                (2, vec![(9, 90)]),
                (3, vec![(14, 140)]),
            ]
        );
        assert_eq!(c.dirty_len(), 0);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn update_marks_dirty_only_when_present() {
        let mut c = cache(4, EvictionPolicy::Lru);
        c.insert(1, 10, false);
        assert!(c.update(1, 11, true));
        assert!(c.is_dirty(1));
        assert_eq!(c.peek(1), Some(11));
        assert!(!c.update(9, 90, true));
        assert_eq!(c.dirty_len(), 1);
        // Updates neither touch nor count accesses.
        let mut stats = MapStats::default();
        c.stats_into(&mut stats);
        assert_eq!(stats.accesses(), 0);
    }

    #[test]
    fn dirty_eviction_counters_split_clean_and_dirty() {
        let mut c = cache(1, EvictionPolicy::Lru);
        c.insert(1, 10, true);
        let ev = c.insert(2, 20, false).expect("evicts 1");
        assert!(ev.dirty);
        let ev = c.insert(3, 30, false).expect("evicts 2");
        assert!(!ev.dirty);
        let mut stats = MapStats::default();
        c.stats_into(&mut stats);
        assert_eq!(stats.evictions_dirty, 1);
        assert_eq!(stats.evictions_clean, 1);
    }

    #[test]
    fn eviction_of_dirty_entry_leaves_dirty_bookkeeping_consistent() {
        let mut c = cache(2, EvictionPolicy::Lru);
        c.insert(0, 1, true);
        c.insert(1, 2, true); // same tpn (entries_per_tp = 4)
        let ev = c.insert(4, 3, false).expect("evicts 0");
        assert_eq!((ev.lpn, ev.dirty), (0, true));
        // Slot 1 must still be tracked dirty under tpn 0 after slot 0's
        // swap_remove from the same list.
        let batch = c.writeback_batch(0, Some((ev.lpn, ev.ppn)));
        assert_eq!(batch, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn hit_rate_of_untouched_cache_is_one() {
        assert!((MapStats::default().hit_rate() - 1.0).abs() < 1e-12);
    }
}
