//! Seeded eviction-correctness property suite: under randomized churn the
//! cache + translation-page store must round-trip every entry — no dirty
//! update may ever be lost, under either eviction policy.
//!
//! The test drives the cache exactly the way the demand-paged FTL does:
//! lookups before every access, inserts on misses (loading from the
//! simulated on-flash translation-page store), in-place dirty updates for
//! relocations, and batched translation-page writebacks whenever a dirty
//! entry is evicted.  A reference map tracks the authoritative value of
//! every lpn; at every hit, at every writeback, and after a final drain
//! the cache/store contents are checked against it.

use std::collections::HashMap;

use ossd_mapcache::{EvictionPolicy, MapCache, MapCacheConfig, MapStats};
use ossd_sim::SimRng;

const UNMAPPED: u64 = u64::MAX;
const ENTRIES_PER_TP: u64 = 8;
const LPN_SPACE: u64 = 256;
const OPS: usize = 20_000;

/// The simulated on-flash map area: tpn → (lpn → ppn).
type TpStore = HashMap<u64, HashMap<u64, u64>>;

fn store_get(store: &TpStore, tpn: u64, lpn: u64) -> u64 {
    store
        .get(&tpn)
        .and_then(|tp| tp.get(&lpn))
        .copied()
        .unwrap_or(UNMAPPED)
}

fn apply_batch(store: &mut TpStore, tpn: u64, batch: &[(u64, u64)], reference: &HashMap<u64, u64>) {
    let tp = store.entry(tpn).or_default();
    for &(lpn, ppn) in batch {
        assert_eq!(
            ppn,
            reference.get(&lpn).copied().unwrap_or(UNMAPPED),
            "writeback of lpn {lpn} carries a stale value"
        );
        tp.insert(lpn, ppn);
    }
}

fn handle_eviction(
    cache: &mut MapCache,
    store: &mut TpStore,
    reference: &HashMap<u64, u64>,
    eviction: ossd_mapcache::Eviction,
) {
    if !eviction.dirty {
        return;
    }
    let tpn = cache.tpn_of(eviction.lpn);
    let batch = cache.writeback_batch(tpn, Some((eviction.lpn, eviction.ppn)));
    assert!(batch.iter().any(|&(lpn, _)| lpn == eviction.lpn));
    apply_batch(store, tpn, &batch, reference);
}

fn churn(policy: EvictionPolicy, budget: u64, seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut cache = MapCache::new(
        MapCacheConfig::default()
            .with_budget(budget)
            .with_policy(policy),
        ENTRIES_PER_TP,
    );
    let mut store: TpStore = HashMap::new();
    let mut reference: HashMap<u64, u64> = HashMap::new();
    let mut next_ppn = 0u64;

    for _ in 0..OPS {
        let lpn = rng.zipf_usize(LPN_SPACE as usize, 0.9) as u64;
        let tpn = cache.tpn_of(lpn);
        let reference_value = reference.get(&lpn).copied().unwrap_or(UNMAPPED);
        match rng.next_u64_below(10) {
            // Host write: the mapping changes and the cached entry is the
            // only holder of the new value until written back.
            0..=4 => {
                let ppn = next_ppn;
                next_ppn += 1;
                reference.insert(lpn, ppn);
                if cache.lookup(lpn).is_none() {
                    if let Some(ev) = cache.insert(lpn, ppn, true) {
                        handle_eviction(&mut cache, &mut store, &reference, ev);
                    }
                } else {
                    assert!(cache.update(lpn, ppn, true));
                }
            }
            // Host read: a hit must return the authoritative value; a miss
            // reloads from the translation-page store (which must also be
            // authoritative for clean entries).
            5..=7 => match cache.lookup(lpn) {
                Some(ppn) => assert_eq!(ppn, reference_value, "hit returned a stale entry"),
                None => {
                    let loaded = store_get(&store, tpn, lpn);
                    assert_eq!(
                        loaded, reference_value,
                        "reload of lpn {lpn} lost an update"
                    );
                    if let Some(ev) = cache.insert(lpn, loaded, false) {
                        handle_eviction(&mut cache, &mut store, &reference, ev);
                    }
                }
            },
            // Relocation (GC/wear-level): the value changes outside the
            // lookup path; uncached entries update the store directly (the
            // FTL's immediate read-modify-write).
            _ => {
                if reference_value == UNMAPPED {
                    continue;
                }
                let ppn = next_ppn;
                next_ppn += 1;
                reference.insert(lpn, ppn);
                if !cache.update(lpn, ppn, true) {
                    store.entry(tpn).or_default().insert(lpn, ppn);
                }
            }
        }
    }

    // Flush: every surviving dirty entry lands in its translation page.
    for (tpn, batch) in cache.drain_dirty() {
        apply_batch(&mut store, tpn, &batch, &reference);
    }
    assert_eq!(cache.dirty_len(), 0);

    // Round-trip: the store alone (no cache) now reproduces every mapping.
    for (&lpn, &ppn) in &reference {
        let tpn = lpn / ENTRIES_PER_TP;
        assert_eq!(
            store_get(&store, tpn, lpn),
            ppn,
            "lpn {lpn} lost its last dirty update (policy {policy:?}, budget {budget}, seed {seed})"
        );
    }

    // Sanity: the budget was honored and the churn actually evicted.
    assert!(cache.len() as u64 <= budget);
    let mut stats = MapStats::default();
    cache.stats_into(&mut stats);
    assert!(
        stats.evictions_clean + stats.evictions_dirty > 0,
        "churn never filled the cache; the test exercised nothing"
    );
    assert!(stats.writebacks > 0);
    assert!(stats.entries_written_back >= stats.evictions_dirty);
}

#[test]
fn randomized_churn_round_trips_every_entry_clock() {
    for seed in [1u64, 7, 42] {
        churn(EvictionPolicy::Clock, 32, seed);
    }
}

#[test]
fn randomized_churn_round_trips_every_entry_lru() {
    for seed in [1u64, 7, 42] {
        churn(EvictionPolicy::Lru, 32, seed);
    }
}

#[test]
fn tiny_budget_survives_heavy_churn_under_both_policies() {
    for policy in [EvictionPolicy::Clock, EvictionPolicy::Lru] {
        churn(policy, 2, 9);
    }
}
