//! Fault-model and ECC configuration.

/// Probabilities and scaling of the media fault model.
///
/// All failure probabilities grow with *wear* — the block's erase count
/// divided by the part's rated endurance — following the exponential
/// acceleration real NAND exhibits near end-of-life: a probability `p`
/// at wear `w` is `base · e^(growth · w)`, clamped to 1.  A block at its
/// rated endurance (`w = 1`) with `growth = 6` is therefore ~400× more
/// likely to fail an operation than a pristine one, and the probability
/// keeps compounding past the rating, which is what drives grown-bad-block
/// retirement in the lifetime experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault stream; the same configuration and operation
    /// sequence reproduce the same failures bit-for-bit.
    pub seed: u64,
    /// Probability that a block is factory-marked bad at build time.
    pub factory_bad_prob: f64,
    /// Base probability that a page program fails on a pristine block.
    pub program_fail_base: f64,
    /// Base probability that a block erase fails on a pristine block.
    pub erase_fail_base: f64,
    /// Exponential growth rate of the program/erase failure probabilities
    /// with wear (erase count / endurance).
    pub fail_wear_growth: f64,
    /// Mean raw bit errors per page read on a pristine block.
    pub raw_ber_base: f64,
    /// Exponential growth rate of the raw bit-error mean with wear.
    pub ber_wear_growth: f64,
    /// Additional mean raw bit errors per read of the block since its last
    /// erase — the retention/read-disturb term: pages that sit (and are
    /// re-read) for a long time between erases accumulate charge loss.
    pub read_disturb_per_read: f64,
}

impl FaultConfig {
    /// The fault-free configuration: every probability zero.  This is the
    /// default everywhere; devices built with it install no fault model and
    /// make no random draws, so they behave bit-for-bit like the
    /// pre-reliability simulator.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            factory_bad_prob: 0.0,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            fail_wear_growth: 0.0,
            raw_ber_base: 0.0,
            ber_wear_growth: 0.0,
            read_disturb_per_read: 0.0,
        }
    }

    /// Whether this configuration can ever produce a fault.
    pub fn is_none(&self) -> bool {
        self.factory_bad_prob == 0.0
            && self.program_fail_base == 0.0
            && self.erase_fail_base == 0.0
            && self.raw_ber_base == 0.0
            && self.read_disturb_per_read == 0.0
    }

    /// A stressed preset with visible wear-out behaviour: realistic in
    /// *shape* (failures accelerate sharply near the endurance rating,
    /// raw bit errors grow with wear and disturb) with rates exaggerated
    /// enough that a low-endurance test device reaches end-of-life within
    /// a simulated burn-in.  Used by the `lifetime` experiments.
    pub fn wearout(seed: u64) -> Self {
        FaultConfig {
            seed,
            factory_bad_prob: 0.002,
            // A sharp knee at the rated endurance: failures are negligible
            // through most of the life and reach percent-level only as
            // wear crosses 1.0 (e^14 ≈ 1.2M×), which is what makes
            // "device lifetime" a property of wear-out rather than of
            // infant mortality.
            program_fail_base: 1e-8,
            erase_fail_base: 1e-7,
            fail_wear_growth: 14.0,
            raw_ber_base: 0.01,
            ber_wear_growth: 8.0,
            read_disturb_per_read: 1e-4,
        }
    }

    /// Validates probabilities and scaling factors.
    pub fn validate(&self) -> Result<(), String> {
        for (what, p) in [
            ("factory_bad_prob", self.factory_bad_prob),
            ("program_fail_base", self.program_fail_base),
            ("erase_fail_base", self.erase_fail_base),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what} {p} must be a probability in [0, 1]"));
            }
        }
        for (what, v) in [
            ("fail_wear_growth", self.fail_wear_growth),
            ("raw_ber_base", self.raw_ber_base),
            ("ber_wear_growth", self.ber_wear_growth),
            ("read_disturb_per_read", self.read_disturb_per_read),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{what} {v} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Error-correction and read-retry parameters of the controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EccConfig {
    /// Raw bit errors the code corrects per page codeword; a read whose
    /// raw error count stays at or below this is served transparently.
    pub correctable_bits: u32,
    /// Read-retry attempts (shifted-threshold re-reads) before a read is
    /// declared uncorrectable.  Each retry re-samples the raw error count
    /// with the mean scaled by [`EccConfig::retry_error_factor`] and costs
    /// one extra array read of latency.
    pub max_read_retries: u32,
    /// Factor (in `(0, 1]`) applied to the raw bit-error mean on each
    /// retry; shifted read thresholds recover most marginal pages.
    pub retry_error_factor: f64,
}

impl Default for EccConfig {
    fn default() -> Self {
        EccConfig {
            correctable_bits: 8,
            max_read_retries: 4,
            retry_error_factor: 0.5,
        }
    }
}

impl EccConfig {
    /// Validates the retry parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.retry_error_factor > 0.0 && self.retry_error_factor <= 1.0) {
            return Err(format!(
                "retry_error_factor {} must be in (0, 1]",
                self.retry_error_factor
            ));
        }
        Ok(())
    }
}

/// The complete reliability configuration of a device: the fault model plus
/// the ECC/read-retry recovery parameters.  Threaded through
/// `SsdConfig` → the FTL constructors → `FlashArray`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilityConfig {
    /// The media fault model.
    pub faults: FaultConfig,
    /// Controller-side error correction and read retry.
    pub ecc: EccConfig,
}

impl ReliabilityConfig {
    /// The fault-free default: no model is installed, no draws are made.
    pub fn none() -> Self {
        ReliabilityConfig {
            faults: FaultConfig::none(),
            ecc: EccConfig::default(),
        }
    }

    /// The stressed wear-out preset (see [`FaultConfig::wearout`]).
    pub fn wearout(seed: u64) -> Self {
        ReliabilityConfig {
            faults: FaultConfig::wearout(seed),
            ecc: EccConfig::default(),
        }
    }

    /// Whether the configuration can ever produce a fault.
    pub fn is_none(&self) -> bool {
        self.faults.is_none()
    }

    /// Validates both halves.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate()?;
        self.ecc.validate()
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_the_default_and_produces_no_faults() {
        assert_eq!(FaultConfig::default(), FaultConfig::none());
        assert!(FaultConfig::none().is_none());
        assert!(ReliabilityConfig::default().is_none());
        ReliabilityConfig::none().validate().unwrap();
    }

    #[test]
    fn wearout_preset_is_valid_and_faulty() {
        let c = ReliabilityConfig::wearout(42);
        assert!(!c.is_none());
        c.validate().unwrap();
        assert_eq!(c.faults.seed, 42);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = FaultConfig::none();
        c.program_fail_base = 1.5;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::none();
        c.raw_ber_base = -1.0;
        assert!(c.validate().is_err());
        let e = EccConfig {
            retry_error_factor: 0.0,
            ..EccConfig::default()
        };
        assert!(e.validate().is_err());
        let e = EccConfig {
            retry_error_factor: 1.5,
            ..EccConfig::default()
        };
        assert!(e.validate().is_err());
    }
}
